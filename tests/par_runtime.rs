//! The engines on the in-tree parallel runtime (`ipregel-par`,
//! `std-pool` feature): panic containment through a real run, pool
//! survival across a failed run, and parallel-vs-sequential equivalence
//! on the golden fixtures.
//!
//! These complement `crates/par/tests/pool_contract.rs` (which tests
//! the facade in isolation) by exercising the one consumer whose
//! guarantees the ISSUE names: `try_run*`'s chunk-granular
//! `catch_unwind` must see a vertex panic as a chunk failure and return
//! [`RunError::VertexPanic`] — not a poisoned or wedged thread pool.
//! Cross-runtime equivalence against *real* rayon is the CI
//! `rayon-equivalence` job (network-gated); in-tree, every engine is
//! held bit-identical to the sequential oracle instead, which the
//! golden suite ties to `tools/golden_gen.rs`'s independent
//! expectations.

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use ipregel::{
    run, run_sequential, try_run, CombinerKind, Context, RunConfig, RunError, Version,
    VertexProgram,
};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::loaders::load_edge_list;
use ipregel_graph::{Graph, NeighborMode, VertexId};

fn fixture(name: &str) -> Graph {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let file = File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    load_edge_list(BufReader::new(file), NeighborMode::Both).expect("fixture parses")
}

/// Hashmin that panics when a chosen vertex first computes — a stand-in
/// for a buggy user `compute`.
struct PoisonedHashmin {
    poison: VertexId,
}

impl VertexProgram for PoisonedHashmin {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, id: VertexId) -> u32 {
        id
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        assert!(
            !(ctx.is_first_superstep() && ctx.id() == self.poison),
            "injected panic at vertex {}",
            self.poison
        );
        let mut best = *value;
        while let Some(m) = ctx.next_message() {
            best = best.min(m);
        }
        if best < *value || ctx.is_first_superstep() {
            *value = best.min(*value);
            ctx.broadcast(*value);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        *old = (*old).min(new);
    }
}

#[test]
fn vertex_panic_becomes_run_error_and_pool_survives() {
    let g = fixture("fixture_a.txt");
    let cfg = RunConfig { threads: Some(2), ..RunConfig::default() };

    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let version = Version { combiner, selection_bypass: false };
        let err = try_run(&g, &PoisonedHashmin { poison: 3 }, version, &cfg)
            .err()
            .unwrap_or_else(|| panic!("{combiner:?}: the poisoned run must fail"));
        match err {
            RunError::VertexPanic { superstep, message, vertex_range, .. } => {
                assert_eq!(superstep, 0, "{combiner:?}: the poison fires in superstep 0");
                assert!(
                    message.contains("injected panic at vertex 3"),
                    "{combiner:?}: payload string survives: {message}"
                );
                let poisoned_index = g.index_of(3);
                assert!(
                    (vertex_range.0..=vertex_range.1).contains(&poisoned_index),
                    "{combiner:?}: blamed chunk {vertex_range:?} must contain vertex 3"
                );
            }
            other => panic!("{combiner:?}: expected VertexPanic, got {other}"),
        }

        // The global pool must come out of the failed run unharmed: the
        // same process, same pool, immediately runs a healthy program
        // and matches the sequential oracle exactly.
        let par = run(&g, &Hashmin, version, &cfg);
        let seq = run_sequential(&g, &Hashmin, &RunConfig::default());
        assert_eq!(par.values, seq.values, "{combiner:?}: pool survived but computes wrong values");
    }
}

#[test]
fn parallel_results_match_sequential_oracle_bit_for_bit() {
    let a = fixture("fixture_a.txt");
    let b = fixture("fixture_b.txt");
    let cfg = RunConfig { threads: Some(3), ..RunConfig::default() };
    let seq_cfg = RunConfig::default();

    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        for bypass in [false, true] {
            let v = Version { combiner, selection_bypass: bypass };

            // PageRank: parallel engines re-associate f64 message sums,
            // so versus the *sequential* oracle only tolerance equality
            // holds (same 1e-9 bound as tests/golden.rs). Re-run
            // reproducibility splits by combiner family:
            //
            // * The pull engine (`Broadcast`) gathers each inbox in CSR
            //   in-neighbour order — one fixed association per vertex —
            //   so identical configs reproduce identical bits even
            //   though the work-stealing pool moves chunks between
            //   workers freely.
            // * The lock-based push combiners apply the user `combine`
            //   in message *arrival* order. Which worker delivers first
            //   is a lock race, so cross-chunk f64 sums re-associate
            //   between runs; reruns agree to association-level
            //   tolerance, not bitwise. (The chunk-order *reduction*
            //   contract — facade `sum()` bit-stable under forced
            //   stealing — is pinned in crates/par/tests/pool_contract.)
            let pr = PageRank { rounds: 20, damping: 0.85 };
            let par = run(&a, &pr, v, &cfg);
            let seq = run_sequential(&a, &pr, &seq_cfg);
            for (p, s) in par.values.iter().zip(&seq.values) {
                assert!(
                    (p - s).abs() <= 1e-9 * s.abs().max(p.abs()),
                    "{v:?}: PageRank drifted past tolerance: {p} vs {s}"
                );
            }
            let par2 = run(&a, &pr, v, &cfg);
            if combiner == CombinerKind::Broadcast {
                let bits: Vec<u64> = par.values.iter().map(|x| x.to_bits()).collect();
                let bits2: Vec<u64> = par2.values.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits, bits2, "{v:?}: pull gather order is fixed; bits must match");
            } else {
                for (p, q) in par.values.iter().zip(&par2.values) {
                    assert!(
                        (p - q).abs() <= 1e-12 * q.abs().max(p.abs()),
                        "{v:?}: rerun drifted past re-association tolerance: {p} vs {q}"
                    );
                }
            }

            let par = run(&b, &Sssp { source: 2 }, v, &cfg);
            let seq = run_sequential(&b, &Sssp { source: 2 }, &seq_cfg);
            assert_eq!(par.values, seq.values, "{v:?}: SSSP distances must match");
        }
    }
}
