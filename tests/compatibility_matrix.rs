//! The application × version compatibility matrix, executed.
//!
//! Each application declares two compatibility facts (the knowledge an
//! iPregel user encodes in compile flags, §3.1.1): whether its vertices
//! halt every superstep (selection bypass soundness, §4) and whether it
//! communicates only by broadcast (pull-combiner compatibility, §6.2).
//! This suite runs every declared-compatible combination against the
//! references and asserts the declared-incompatible ones are rejected
//! loudly rather than silently wrong.

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::{reference, Bfs, Hashmin, MaxValue, PageRank, Sssp, WeightedSssp, WidestPath};
use ipregel_graph::generators::analogs::WIKIPEDIA;
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};

fn analog() -> Graph {
    WIKIPEDIA.analog_graph(6000, 17, NeighborMode::Both)
}

fn weighted_graph() -> Graph {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for (u, v, w) in [(0u32, 1u32, 4u32), (1, 2, 2), (0, 2, 9), (2, 3, 1), (3, 0, 3)] {
        b.add_weighted_edge(u, v, w);
        b.add_weighted_edge(v, u, w);
    }
    b.build().unwrap()
}

/// Versions compatible with an app given its two declared facts.
fn compatible_versions(bypass_ok: bool, broadcast_only: bool) -> Vec<Version> {
    Version::paper_versions()
        .into_iter()
        .filter(|v| {
            (bypass_ok || !v.selection_bypass)
                && (broadcast_only || v.combiner != CombinerKind::Broadcast)
        })
        .collect()
}

#[test]
fn declared_compatibility_counts_match_the_paper() {
    // §7.2: Hashmin and SSSP run in all six versions, PageRank in the
    // three non-bypass ones.
    assert_eq!(compatible_versions(Sssp::BYPASS_COMPATIBLE, Sssp::BROADCAST_ONLY).len(), 6);
    assert_eq!(compatible_versions(Hashmin::BYPASS_COMPATIBLE, Hashmin::BROADCAST_ONLY).len(), 6);
    assert_eq!(
        compatible_versions(PageRank::BYPASS_COMPATIBLE, PageRank::BROADCAST_ONLY).len(),
        3
    );
    // The weighted point-to-point apps lose the two broadcast versions.
    assert_eq!(
        compatible_versions(WeightedSssp::BYPASS_COMPATIBLE, WeightedSssp::BROADCAST_ONLY).len(),
        4
    );
}

#[test]
fn every_compatible_combination_matches_its_reference() {
    let g = analog();
    let source = g.address_map().base();

    let sssp_expected = reference::bfs_levels(&g, source);
    for v in compatible_versions(Sssp::BYPASS_COMPATIBLE, Sssp::BROADCAST_ONLY) {
        let out = run(&g, &Sssp { source }, v, &RunConfig::default());
        assert_eq!(out.values, sssp_expected, "SSSP {}", v.label());
    }

    let hm_expected = reference::minlabel_fixpoint(&g);
    for v in compatible_versions(Hashmin::BYPASS_COMPATIBLE, Hashmin::BROADCAST_ONLY) {
        let out = run(&g, &Hashmin, v, &RunConfig::default());
        assert_eq!(out.values, hm_expected, "Hashmin {}", v.label());
    }

    for v in compatible_versions(Bfs::BYPASS_COMPATIBLE, Bfs::BROADCAST_ONLY) {
        let out = run(&g, &Bfs { source }, v, &RunConfig::default());
        assert_eq!(out.values, sssp_expected, "BFS {}", v.label());
    }

    let mv_expected = ipregel_apps::maxvalue::maxvalue_fixpoint(&g);
    for v in compatible_versions(MaxValue::BYPASS_COMPATIBLE, MaxValue::BROADCAST_ONLY) {
        let out = run(&g, &MaxValue, v, &RunConfig::default());
        assert_eq!(out.values, mv_expected, "MaxValue {}", v.label());
    }

    let pr_expected = reference::pagerank_power(&g, 8, 0.85);
    for v in compatible_versions(PageRank::BYPASS_COMPATIBLE, PageRank::BROADCAST_ONLY) {
        let out = run(&g, &PageRank { rounds: 8, damping: 0.85 }, v, &RunConfig::default());
        let diff = reference::max_rel_diff(&g, &out.values, &pr_expected);
        assert!(diff < 1e-9, "PageRank {} diverged {diff}", v.label());
    }
}

#[test]
fn weighted_apps_match_their_oracles_on_push_versions() {
    let g = weighted_graph();
    let dj = reference::dijkstra(&g, 0);
    let wp = ipregel_apps::widest_path::widest_path_oracle(&g, 0);
    for v in compatible_versions(WeightedSssp::BYPASS_COMPATIBLE, WeightedSssp::BROADCAST_ONLY) {
        let out = run(&g, &WeightedSssp { source: 0 }, v, &RunConfig::default());
        assert_eq!(out.values, dj, "WeightedSssp {}", v.label());
        let out = run(&g, &WidestPath { source: 0 }, v, &RunConfig::default());
        assert_eq!(out.values, wp, "WidestPath {}", v.label());
    }
}

#[test]
fn incompatible_broadcast_combinations_fail_loudly() {
    let g = weighted_graph();
    for program_name in ["weighted_sssp", "widest"] {
        let result = std::panic::catch_unwind(|| {
            let v = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
            let cfg = RunConfig { threads: Some(1), ..RunConfig::default() };
            match program_name {
                "weighted_sssp" => {
                    run(&g, &WeightedSssp { source: 0 }, v, &cfg);
                }
                _ => {
                    run(&g, &WidestPath { source: 0 }, v, &cfg);
                }
            }
        });
        assert!(result.is_err(), "{program_name} must panic on the pull engine, not mis-run");
    }
}

#[test]
fn pull_engine_without_in_edges_fails_loudly() {
    let mut b = GraphBuilder::new(NeighborMode::OutOnly);
    b.add_edge(0, 1);
    let g = b.build().unwrap();
    let result = std::panic::catch_unwind(|| {
        run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig { threads: Some(1), ..RunConfig::default() },
        )
    });
    assert!(result.is_err(), "pull on an out-only graph must be rejected at entry");
}
