//! Integration tests for the runtime lock-order detector (the
//! `lock-order` cargo feature — see docs/INTERNALS.md, "Static
//! analysis: concurrency invariants").
//!
//! Armed, every lock in the workspace records itself on a per-thread
//! acquisition stack and panics — naming both locks and dumping the
//! held stack — the moment any thread acquires against the declared
//! hierarchy. Disarmed (the default) the hooks compile to no-ops and
//! every lock keeps its production layout.
//!
//! Run with: `cargo test --features lock-order --test lock_order`

#![cfg(feature = "lock-order")]

use ipregel::sync::lockorder::{classes, held_count, OrderedMutex};
use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};

fn graph(edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().unwrap()
}

/// The detector's raison d'être: an injected inversion — acquiring a
/// low-ranked lock while holding a high-ranked one — must panic
/// deterministically, and the message must name *both* locks so the
/// report is actionable without a debugger.
#[test]
fn injected_inversion_panics_naming_both_locks() {
    let high = OrderedMutex::new(&classes::MAILBOX_SPIN, 0u32);
    let low = OrderedMutex::new(&classes::POOL_STATE, 0u32);
    let caught = std::panic::catch_unwind(|| {
        // lock-order(mailbox.spin)
        let _g = high.lock().unwrap();
        // Deliberate inversion: pool.state (rank 10) under mailbox.spin
        // (rank 80). The detector must refuse.
        // lock-order(pool.state)
        let _h = low.lock().unwrap();
    });
    let payload = caught.expect_err("the inversion must panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string");
    assert!(message.contains("lock-order inversion"), "{message}");
    assert!(message.contains("pool.state"), "must name the acquired lock: {message}");
    assert!(message.contains("mailbox.spin"), "must name the held lock: {message}");
    // The unwind released everything: this thread's stack is clean.
    assert_eq!(held_count(), 0, "acquisition stack must unwind with the panic");
}

/// Same-rank nesting is an inversion too (two locks of one class can
/// deadlock against each other), and the unwind must leave the thread's
/// stack usable for subsequent acquisitions.
#[test]
fn same_class_nesting_panics_and_stack_recovers() {
    let a = OrderedMutex::new(&classes::WORKLIST_FALLBACK, ());
    let b = OrderedMutex::new(&classes::WORKLIST_FALLBACK, ());
    let caught = std::panic::catch_unwind(|| {
        // lock-order(worklist.fallback)
        let _g = a.lock().unwrap();
        // lock-order(worklist.fallback)
        let _h = b.lock().unwrap();
    });
    assert!(caught.is_err(), "same-rank nesting must be rejected");
    assert_eq!(held_count(), 0);
    // The detector recovered: a fresh, well-ordered acquisition works.
    // lock-order(worklist.fallback)
    drop(a.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
}

/// The work-stealing pool's queue classes sit inside the hierarchy:
/// `pool.state` (10) → `pool.deque` (12) → `pool.overflow` (14) is the
/// declared order (a worker re-scans deques and the injector while
/// holding the state lock on its way to sleep), so those nestings run
/// clean, while taking a deque lock *under* the overflow lock is an
/// inversion the detector must reject by name. The production pool is
/// stricter still — an overflow spill drops the deque lock before
/// touching the injector — so any detector report here means real code
/// started nesting queue locks it never used to.
#[test]
fn deque_and_overflow_classes_keep_their_ranks() {
    // The legitimate nesting runs clean end to end.
    let state = OrderedMutex::new(&classes::POOL_STATE, ());
    let deque = OrderedMutex::new(&classes::POOL_DEQUE, ());
    let overflow = OrderedMutex::new(&classes::POOL_OVERFLOW, ());
    {
        // lock-order(pool.state)
        let _s = state.lock().unwrap();
        // lock-order(pool.deque)
        let _d = deque.lock().unwrap();
    }
    {
        // lock-order(pool.deque)
        let _d = deque.lock().unwrap();
        // lock-order(pool.overflow)
        let _o = overflow.lock().unwrap();
    }
    assert_eq!(held_count(), 0, "clean nesting must unwind fully");

    // The inversion — deque under overflow — panics naming both.
    let caught = std::panic::catch_unwind(|| {
        // lock-order(pool.overflow)
        let _o = overflow.lock().unwrap();
        // lock-order(pool.deque)
        let _d = deque.lock().unwrap();
    });
    let payload = caught.expect_err("deque under overflow must panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string");
    assert!(message.contains("pool.deque"), "must name the acquired lock: {message}");
    assert!(message.contains("pool.overflow"), "must name the held lock: {message}");
    assert_eq!(held_count(), 0);
    // The poisoned mutexes are still usable in the right order.
    // lock-order(pool.deque)
    drop(deque.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
}

/// Every engine (each combiner × selection strategy) runs a real
/// multi-threaded workload to completion with the detector armed: the
/// production lock usage respects the declared hierarchy.
#[test]
fn engines_run_clean_with_detector_armed() {
    let g = graph(&[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 0), (2, 0)]);
    let config = RunConfig { threads: Some(4), ..RunConfig::default() };
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        for selection_bypass in [false, true] {
            let out = run(&g, &Sssp { source: 0 }, Version { combiner, selection_bypass }, &config);
            assert_eq!(*out.value_of(4), 2, "{combiner:?}/bypass={selection_bypass}");
            let pr = run(
                &g,
                &PageRank { rounds: 5, damping: 0.85 },
                Version { combiner, selection_bypass },
                &config,
            );
            assert_eq!(pr.stats.num_supersteps(), 6);
        }
    }
    assert_eq!(held_count(), 0, "no lock leaked past the runs");
}

/// The naive baseline engine (per-vertex inbox mutexes, ranked above
/// everything engine-internal) is hierarchy-clean too.
#[test]
fn naive_engine_runs_clean_with_detector_armed() {
    let g = graph(&[(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]);
    let config = RunConfig { threads: Some(4), ..RunConfig::default() };
    let out = femtograph_sim::run_naive(&g, &Hashmin, &config);
    assert_eq!(*out.value_of(4), 1);
    assert_eq!(held_count(), 0);
}
