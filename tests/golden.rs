//! Golden-result tests: committed fixture graphs with committed expected
//! outputs for the paper's three figure applications — PageRank
//! (Figure 6), Hashmin connected components (Figure 4 family) and SSSP
//! (Figure 5).
//!
//! The expectations under `tests/fixtures/*.expected` are produced by
//! `tools/golden_gen.rs`, a std-only program that computes them from
//! first principles (power iteration, min-label fixpoint, BFS) without
//! linking any workspace crate — so these tests cross-check the engines
//! against an independent oracle, not against their own past output.
//!
//! Every paper version runs under every `Schedule` policy: results must
//! be identical no matter how supersteps are chunked.
//!
//! Regenerate after editing a fixture graph:
//!
//! ```text
//! rustc --edition 2021 -O tools/golden_gen.rs -o /tmp/golden_gen && /tmp/golden_gen
//! ```

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use ipregel::{
    run, run_packed, run_sequential, CombinerKind, RunConfig, RunOutput, Schedule, Version,
};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::loaders::load_edge_list;
use ipregel_graph::{Graph, NeighborMode};

/// PageRank parameters mirrored in `tools/golden_gen.rs`.
const ROUNDS: usize = 20;
const DAMPING: f64 = 0.85;
/// SSSP source in fixture B, mirrored in `tools/golden_gen.rs`.
const SSSP_SOURCE: u32 = 2;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn fixture(name: &str) -> Graph {
    let path = fixture_path(name);
    let file = File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    load_edge_list(BufReader::new(file), NeighborMode::Both).expect("fixture parses")
}

fn expected<T>(name: &str) -> BTreeMap<u32, T>
where
    T: FromStr,
    T::Err: Debug,
{
    let path = fixture_path(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            let mut it = line.split_whitespace();
            let id: u32 = it.next().expect("id column").parse().expect("id parses");
            let value: T = it.next().expect("value column").parse().expect("value parses");
            (id, value)
        })
        .collect()
}

/// Every `RunConfig` the golden results must be invariant under: all
/// three scheduling policies, at a thread count that forces real
/// chunking.
fn configs() -> impl Iterator<Item = RunConfig> {
    Schedule::all()
        .into_iter()
        .map(|schedule| RunConfig { threads: Some(4), schedule, ..RunConfig::default() })
}

fn assert_exact<V>(out: &RunOutput<V>, expected: &BTreeMap<u32, V>, label: &str)
where
    V: PartialEq + Debug + Clone,
{
    for (id, value) in out.iter() {
        let want = expected.get(&id).unwrap_or_else(|| panic!("{label}: unexpected vertex {id}"));
        assert_eq!(value, want, "{label}: vertex {id}");
    }
    assert_eq!(out.num_vertices(), expected.len(), "{label}: vertex count");
}

#[test]
fn hashmin_matches_golden_on_every_version_and_schedule() {
    let g = fixture("fixture_a.txt");
    let want: BTreeMap<u32, u32> = expected("fixture_a.hashmin.expected");
    for cfg in configs() {
        for v in Version::paper_versions() {
            let out = run(&g, &Hashmin, v, &cfg);
            assert_exact(&out, &want, &format!("{} / {}", v.label(), cfg.schedule));
        }
        let lockfree = Version { combiner: CombinerKind::LockFree, selection_bypass: true };
        let out = run_packed(&g, &Hashmin, lockfree, &cfg);
        assert_exact(&out, &want, &format!("lock-free / {}", cfg.schedule));
    }
    let seq = run_sequential(&g, &Hashmin, &RunConfig::default());
    assert_exact(&seq, &want, "sequential");
}

#[test]
fn sssp_matches_golden_on_every_version_and_schedule() {
    let g = fixture("fixture_b.txt");
    let want: BTreeMap<u32, u32> = expected("fixture_b.sssp.expected");
    let program = Sssp { source: SSSP_SOURCE };
    for cfg in configs() {
        for v in Version::paper_versions() {
            let out = run(&g, &program, v, &cfg);
            assert_exact(&out, &want, &format!("{} / {}", v.label(), cfg.schedule));
        }
        let lockfree = Version { combiner: CombinerKind::LockFree, selection_bypass: true };
        let out = run_packed(&g, &program, lockfree, &cfg);
        assert_exact(&out, &want, &format!("lock-free / {}", cfg.schedule));
    }
    let seq = run_sequential(&g, &program, &RunConfig::default());
    assert_exact(&seq, &want, "sequential");
}

#[test]
fn pagerank_matches_golden_within_tolerance() {
    let g = fixture("fixture_a.txt");
    let want: BTreeMap<u32, f64> = expected("fixture_a.pagerank.expected");
    let program = PageRank { rounds: ROUNDS, damping: DAMPING };
    // Bypass is unsound for PageRank (vertices must run even without
    // messages), so only the three scan-selection combiners apply.
    let combiners = [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast];
    let mut checked = 0usize;
    for cfg in configs() {
        for combiner in combiners {
            let v = Version { combiner, selection_bypass: false };
            let out = run(&g, &program, v, &cfg);
            for (id, &value) in out.iter() {
                let want = want[&id];
                // Combination order differs per engine/schedule, so f64
                // sums drift at ~1e-15 relative per round; 1e-9 is a
                // comfortable ceiling that still catches semantic bugs.
                let tolerance = 1e-9 * want.abs().max(value.abs());
                assert!(
                    (value - want).abs() <= tolerance,
                    "{} / {}: vertex {id}: got {value:e}, want {want:e}",
                    v.label(),
                    cfg.schedule,
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 24 * combiners.len() * Schedule::all().len());

    let seq = run_sequential(&g, &program, &RunConfig::default());
    for (id, &value) in seq.iter() {
        let want = want[&id];
        assert!((value - want).abs() <= 1e-9 * want.abs(), "sequential: vertex {id}");
    }
}

#[test]
fn tracing_does_not_perturb_golden_results() {
    // Observability must be read-only: arming a tracer through
    // `RunConfig::trace` cannot change a single bit of the computed
    // values, whether the `trace` feature compiles the hooks to real
    // recording or to no-ops. The sequential oracle makes the PageRank
    // comparison exact (same f64 bits, not same-within-tolerance).
    let g = fixture("fixture_a.txt");
    let program = PageRank { rounds: ROUNDS, damping: DAMPING };
    let plain = run_sequential(&g, &program, &RunConfig::default());
    let tracer = std::sync::Arc::new(ipregel::trace::Tracer::new());
    let traced_cfg = RunConfig { trace: Some(tracer.clone()), ..RunConfig::default() };
    let traced = run_sequential(&g, &program, &traced_cfg);
    for ((id_a, a), (id_b, b)) in plain.iter().zip(traced.iter()) {
        assert_eq!(id_a, id_b);
        assert_eq!(a.to_bits(), b.to_bits(), "vertex {id_a}: tracing changed a PageRank bit");
    }

    // Same for a parallel engine on exact integer values.
    let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };
    let cfg = RunConfig { threads: Some(4), ..RunConfig::default() };
    let plain = run(&g, &Hashmin, v, &cfg);
    let traced = run(
        &g,
        &Hashmin,
        v,
        &RunConfig { trace: Some(tracer.clone()), ..cfg },
    );
    assert_eq!(plain.values, traced.values, "tracing changed Hashmin labels");

    // And the no-op guarantee itself: without the feature the armed
    // tracer must have recorded nothing at all.
    let events = tracer.take_events();
    if cfg!(feature = "trace") {
        assert!(!events.is_empty(), "trace feature is on but the runs recorded nothing");
    } else {
        assert!(events.is_empty(), "trace-off hooks must be no-ops, got {events:?}");
        assert_eq!(tracer.dropped_events(), 0);
    }
}

#[test]
fn golden_runs_record_load_stats() {
    // The golden fixtures double as a smoke test for the scheduling
    // metrics: every parallel superstep must report a load plan whose
    // chunk edge counts and durations have matching lengths.
    let g = fixture("fixture_a.txt");
    for schedule in Schedule::all() {
        let cfg = RunConfig { threads: Some(4), schedule, ..RunConfig::default() };
        let out = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &cfg,
        );
        assert!(out.stats.num_supersteps() > 0);
        for step in &out.stats.supersteps {
            let load = step.load.as_ref().expect("parallel supersteps record load stats");
            assert_eq!(load.chunk_edges.len(), load.chunk_durations.len());
            assert!(load.num_chunks() > 0, "superstep ran at least one chunk");
            assert!(load.edge_imbalance() >= 1.0);
            assert!(load.duration_imbalance() >= 1.0);
        }
    }
}
