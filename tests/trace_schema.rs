//! Schema tests for the JSONL trace codec (docs/INTERNALS.md,
//! "Observability").
//!
//! Three guarantees, independent of whether the `trace` feature is on
//! (the codec is always compiled):
//!
//! * **Round-trip**: every event type survives encode → decode exactly,
//!   for arbitrary field values — property-tested across the full `u64`
//!   range, so the 20-digit extremes exercise the hand-rolled integer
//!   parser.
//! * **Stability**: the byte-level encoding of the current schema
//!   version (2) is pinned against
//!   `tests/fixtures/trace_schema.v2.jsonl`. A failure here means the
//!   wire format changed: bump `ipregel::trace::SCHEMA_VERSION` and
//!   regenerate the fixture deliberately instead of silently breaking
//!   stored traces.
//! * **Back-compat**: schema-1 files (no `worker` field on `chunk`, no
//!   `pool` events) still decode — `tests/fixtures/trace_schema.v1.jsonl`
//!   is kept committed and is read with `worker` defaulting to 0.

use std::path::Path;

use ipregel::trace::{
    decode_line, decode_trace, encode_event, encode_meta, encode_trace, EngineKind, TraceEvent,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
use proptest::prelude::*;

fn fixture_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The event list whose encoding the committed v2 fixture pins: one of
/// every variant, every engine-independent field exercised.
fn fixture_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::RunBegin { engine: EngineKind::Push, slots: 24, threads: 4 },
        TraceEvent::SuperstepBegin { superstep: 0 },
        TraceEvent::Chunk {
            superstep: 0,
            chunk: 0,
            planned_edges: 100,
            duration_ns: 2500,
            lock_acquisitions: 7,
            cas_retries: 2,
            spin_iterations: 31,
            worker: 3,
        },
        TraceEvent::Rss { superstep: 0, bytes: 1_048_576 },
        TraceEvent::Pool { superstep: 0, steals: 5, overflow: 2 },
        TraceEvent::SuperstepEnd {
            superstep: 0,
            active: 24,
            messages: 48,
            duration_ns: 9000,
            selection_ns: 150,
            chunks: 1,
        },
        TraceEvent::WorklistDrain { superstep: 1, queued: 12, drained: 9 },
        TraceEvent::CheckpointSave { superstep: 1, duration_ns: 4000 },
        TraceEvent::CheckpointRestore { superstep: 1, duration_ns: 3000 },
        TraceEvent::Io { superstep: 1, bytes_read: 4096, seeks: 3, retries: 1 },
        TraceEvent::RunEnd { supersteps: 2, messages: 96, duration_ns: 20000 },
    ]
}

/// What the schema-1 fixture must decode to today: the same run, minus
/// the `pool` event (didn't exist) and with `worker` defaulted to 0.
fn v1_fixture_events() -> Vec<TraceEvent> {
    fixture_events()
        .into_iter()
        .filter(|e| !matches!(e, TraceEvent::Pool { .. }))
        .map(|e| match e {
            TraceEvent::Chunk {
                superstep,
                chunk,
                planned_edges,
                duration_ns,
                lock_acquisitions,
                cas_retries,
                spin_iterations,
                worker: _,
            } => TraceEvent::Chunk {
                superstep,
                chunk,
                planned_edges,
                duration_ns,
                lock_acquisitions,
                cas_retries,
                spin_iterations,
                worker: 0,
            },
            other => other,
        })
        .collect()
}

#[test]
fn schema_version_2_encoding_is_pinned_byte_for_byte() {
    assert_eq!(SCHEMA_VERSION, 2, "fixture pins version 2; regenerate it for a new schema");
    let encoded = encode_trace(&fixture_events());
    let fixture = fixture_text("trace_schema.v2.jsonl");
    // Compare line by line first for a readable failure, then exactly.
    for (i, (got, want)) in encoded.lines().zip(fixture.lines()).enumerate() {
        assert_eq!(got, want, "line {i} of the trace encoding drifted from the fixture");
    }
    assert_eq!(encoded, fixture, "trace encoding drifted from tests/fixtures/trace_schema.v2.jsonl");
}

#[test]
fn the_committed_fixture_decodes_to_the_pinned_events() {
    assert_eq!(decode_trace(&fixture_text("trace_schema.v2.jsonl")).unwrap(), fixture_events());
}

#[test]
fn schema_1_fixture_still_decodes_with_defaulted_worker() {
    assert_eq!(MIN_SCHEMA_VERSION, 1, "dropping schema-1 support needs a deliberate decision");
    assert_eq!(decode_trace(&fixture_text("trace_schema.v1.jsonl")).unwrap(), v1_fixture_events());
}

#[test]
fn meta_header_is_pinned() {
    assert_eq!(encode_meta(), "{\"type\":\"meta\",\"schema\":2}");
    assert_eq!(decode_line("{\"type\":\"meta\",\"schema\":2}").unwrap(), None);
    // The previous schema's header is still accepted on read.
    assert_eq!(decode_line("{\"type\":\"meta\",\"schema\":1}").unwrap(), None);
}

#[test]
fn unsupported_schema_versions_are_rejected() {
    let newer = "{\"type\":\"meta\",\"schema\":999}\n";
    assert!(decode_trace(newer).unwrap_err().contains("999"));
    let ancient = "{\"type\":\"meta\",\"schema\":0}\n";
    assert!(decode_trace(ancient).is_err(), "schema 0 predates MIN_SCHEMA_VERSION");
}

#[test]
fn malformed_lines_are_rejected_with_context() {
    for bad in [
        "not json",
        "{\"type\":\"chunk\"}",                       // missing fields
        "{\"type\":\"wibble\",\"superstep\":0}",      // unknown event
        "{\"type\":\"rss\",\"superstep\":0,\"bytes\":\"big\"}", // string where number expected
        "{\"type\":\"run_begin\",\"engine\":\"gpu\",\"slots\":1,\"threads\":1}", // unknown engine
        "{\"type\":\"pool\",\"superstep\":0}",        // pool missing counters
    ] {
        assert!(decode_line(bad).is_err(), "{bad:?} should not parse");
    }
    assert!(
        decode_trace("{\"type\":\"superstep_begin\",\"superstep\":0}\n").is_err(),
        "an event before the meta header must be rejected"
    );
}

/// Strategy over every event variant with arbitrary field values.
fn any_event() -> impl Strategy<Value = TraceEvent> {
    let engine = prop_oneof![
        Just(EngineKind::Push),
        Just(EngineKind::Pull),
        Just(EngineKind::Seq),
        Just(EngineKind::Ooc),
    ];
    prop_oneof![
        (engine, any::<u64>(), any::<u64>())
            .prop_map(|(engine, slots, threads)| TraceEvent::RunBegin { engine, slots, threads }),
        any::<u64>().prop_map(|superstep| TraceEvent::SuperstepBegin { superstep }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |(
                    (superstep, chunk, planned_edges, duration_ns),
                    (lock_acquisitions, cas_retries, spin_iterations, worker),
                )| {
                    TraceEvent::Chunk {
                        superstep,
                        chunk,
                        planned_edges,
                        duration_ns,
                        lock_acquisitions,
                        cas_retries,
                        spin_iterations,
                        worker,
                    }
                },
            ),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(superstep, steals, overflow)| TraceEvent::Pool { superstep, steals, overflow }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(superstep, active, messages, duration_ns, selection_ns, chunks)| {
                TraceEvent::SuperstepEnd { superstep, active, messages, duration_ns, selection_ns, chunks }
            }),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(superstep, queued, drained)| TraceEvent::WorklistDrain { superstep, queued, drained }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(superstep, duration_ns)| TraceEvent::CheckpointSave { superstep, duration_ns }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(superstep, duration_ns)| TraceEvent::CheckpointRestore { superstep, duration_ns }),
        (any::<u64>(), any::<u64>()).prop_map(|(superstep, bytes)| TraceEvent::Rss { superstep, bytes }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(superstep, bytes_read, seeks, retries)| TraceEvent::Io { superstep, bytes_read, seeks, retries }),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(supersteps, messages, duration_ns)| TraceEvent::RunEnd { supersteps, messages, duration_ns }),
    ]
}

proptest! {
    #[test]
    fn every_event_round_trips_through_the_codec(e in any_event()) {
        let line = encode_event(&e);
        prop_assert_eq!(decode_line(&line).unwrap(), Some(e));
    }

    #[test]
    fn whole_traces_round_trip(events in proptest::collection::vec(any_event(), 0..64)) {
        let text = encode_trace(&events);
        prop_assert_eq!(decode_trace(&text).unwrap(), events);
    }
}

#[test]
fn u64_extremes_round_trip() {
    let e = TraceEvent::Rss { superstep: u64::MAX, bytes: u64::MAX };
    assert_eq!(decode_line(&encode_event(&e)).unwrap(), Some(e));
}
