//! Property tests: every engine version — and the Pregel+ simulator —
//! computes the same results as the sequential references, on randomised
//! graphs.
//!
//! This is the backbone correctness argument of the reproduction: the
//! paper's six versions differ only in *how* they select, address and
//! combine; their observable semantics must be identical.

use ipregel::{run, run_packed, CombinerKind, RunConfig, Schedule, Version};
use ipregel_apps::reference;
use ipregel_apps::{Bfs, Hashmin, PageRank, Sssp, WeightedSssp};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};
use pregelplus_sim::{simulate, ClusterSpec, CostModel, MemoryModel};
use proptest::prelude::*;

/// Random directed graph on up to 60 vertices with 1-based ids half the
/// time, so desolate memory is exercised too.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..60, 1usize..250, any::<u64>(), any::<bool>()).prop_map(|(n, m, seed, one_based)| {
        let base = u32::from(one_based);
        let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(base, n);
        let mut x = seed | 1;
        for _ in 0..m {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = base + ((x >> 33) as u32) % n;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = base + ((x >> 33) as u32) % n;
            b.add_edge(u, v);
        }
        b.build().expect("arb graph builds")
    })
}

fn all_versions() -> Vec<Version> {
    Version::paper_versions().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sssp_matches_bfs_reference_on_all_versions(g in arb_graph()) {
        let base = g.address_map().base();
        let source = base; // always a live vertex
        let expected = reference::bfs_levels(&g, source);
        for v in all_versions() {
            let out = run(&g, &Sssp { source }, v, &RunConfig::default());
            for slot in g.address_map().live_slots() {
                prop_assert_eq!(
                    out.values[slot as usize], expected[slot as usize],
                    "version {} slot {}", v.label(), slot
                );
            }
        }
    }

    #[test]
    fn hashmin_matches_minlabel_fixpoint(g in arb_graph()) {
        let expected = reference::minlabel_fixpoint(&g);
        for v in all_versions() {
            let out = run(&g, &Hashmin, v, &RunConfig::default());
            for slot in g.address_map().live_slots() {
                prop_assert_eq!(
                    out.values[slot as usize], expected[slot as usize],
                    "version {} slot {}", v.label(), slot
                );
            }
        }
    }

    #[test]
    fn bfs_matches_reference(g in arb_graph()) {
        let source = g.address_map().base();
        let expected = reference::bfs_levels(&g, source);
        for v in all_versions() {
            let out = run(&g, &Bfs { source }, v, &RunConfig::default());
            for slot in g.address_map().live_slots() {
                prop_assert_eq!(out.values[slot as usize], expected[slot as usize]);
            }
        }
    }

    #[test]
    fn pagerank_matches_power_iteration(g in arb_graph()) {
        let rounds = 12;
        let expected = reference::pagerank_power(&g, rounds, 0.85);
        for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
            let out = run(
                &g,
                &PageRank { rounds, damping: 0.85 },
                Version { combiner, selection_bypass: false },
                &RunConfig::default(),
            );
            let diff = reference::max_rel_diff(&g, &out.values, &expected);
            prop_assert!(diff < 1e-9, "combiner {combiner:?} diverged by {diff}");
        }
    }

    #[test]
    fn lock_free_mailbox_agrees_with_spinlock(g in arb_graph()) {
        let source = g.address_map().base();
        let spin = run(
            &g,
            &Sssp { source },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        let lockfree = run_packed(
            &g,
            &Sssp { source },
            Version { combiner: CombinerKind::LockFree, selection_bypass: true },
            &RunConfig::default(),
        );
        prop_assert_eq!(spin.values, lockfree.values);
    }

    #[test]
    fn pregelplus_sim_agrees_with_ipregel(g in arb_graph(), nodes in 1usize..6) {
        let source = g.address_map().base();
        let ipregel_out = run(
            &g,
            &Sssp { source },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        let sim = simulate(
            &g,
            &Sssp { source },
            &ClusterSpec::m4_large(nodes),
            &CostModel::default(),
            &MemoryModel::pregel_plus(4),
            Some(1000),
        );
        prop_assert_eq!(ipregel_out.values, sim.values);

        let hm_ipregel = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        let hm_sim = simulate(
            &g,
            &Hashmin,
            &ClusterSpec::m4_large(nodes),
            &CostModel::default(),
            &MemoryModel::pregel_plus(4),
            Some(1000),
        );
        prop_assert_eq!(hm_ipregel.values, hm_sim.values);
    }

    #[test]
    fn schedules_are_observationally_equivalent(
        g in arb_graph(),
        grain in prop::option::of(1usize..64),
    ) {
        // The scheduling policy decides where supersteps are *cut*, never
        // what they compute: for every engine version, vertex-balanced,
        // edge-balanced and adaptive chunking must produce bit-identical
        // values, the same superstep count and the same message totals.
        // (Min-combining programs are order-insensitive, so even the
        // per-superstep message counts are deterministic.)
        let source = g.address_map().base();
        for v in all_versions() {
            let cfg = |schedule| RunConfig {
                threads: Some(4),
                schedule,
                grain,
                ..RunConfig::default()
            };
            let base_sssp = run(&g, &Sssp { source }, v, &cfg(Schedule::VertexBalanced));
            let base_hm = run(&g, &Hashmin, v, &cfg(Schedule::VertexBalanced));
            for schedule in [Schedule::EdgeBalanced, Schedule::Adaptive] {
                let sssp = run(&g, &Sssp { source }, v, &cfg(schedule));
                prop_assert_eq!(
                    &base_sssp.values, &sssp.values,
                    "sssp values: {} under {}", v.label(), schedule
                );
                prop_assert_eq!(
                    base_sssp.stats.num_supersteps(), sssp.stats.num_supersteps(),
                    "sssp supersteps: {} under {}", v.label(), schedule
                );
                prop_assert_eq!(
                    base_sssp.stats.total_messages(), sssp.stats.total_messages(),
                    "sssp messages: {} under {}", v.label(), schedule
                );
                let hm = run(&g, &Hashmin, v, &cfg(schedule));
                prop_assert_eq!(
                    &base_hm.values, &hm.values,
                    "hashmin values: {} under {}", v.label(), schedule
                );
                prop_assert_eq!(
                    base_hm.stats.total_messages(), hm.stats.total_messages(),
                    "hashmin messages: {} under {}", v.label(), schedule
                );
            }
        }
    }

    #[test]
    fn weighted_sssp_matches_dijkstra(
        n in 2u32..40,
        edges in prop::collection::vec((0u32..40, 0u32..40, 1u32..100), 1..150)
    ) {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, n);
        let mut any = false;
        for (u, v, w) in edges {
            if u < n && v < n {
                b.add_weighted_edge(u, v, w);
                any = true;
            }
        }
        prop_assume!(any);
        let g = b.build().expect("weighted graph builds");
        let expected = reference::dijkstra(&g, 0);
        for bypass in [false, true] {
            let out = run(
                &g,
                &WeightedSssp { source: 0 },
                Version { combiner: CombinerKind::Spinlock, selection_bypass: bypass },
                &RunConfig::default(),
            );
            prop_assert_eq!(&out.values, &expected, "bypass={}", bypass);
        }
    }
}
