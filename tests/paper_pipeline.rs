//! End-to-end tests of the paper's experimental pipeline at miniature
//! scale: analog graphs → engines → the qualitative claims of Section 7.

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::generators::analogs::{TWITTER_MPI, USA_ROADS, WIKIPEDIA};
use ipregel_graph::{GraphStats, NeighborMode};
use ipregel_mem::{breaking_point_percent, RssModel, GB};
use pregelplus_sim::{extrapolate_series, lead_change, simulate, ClusterSpec, CostModel, MemoryModel, NodesPoint};

const DIV: u64 = 3000; // miniature scale for CI

#[test]
fn analogs_preserve_the_density_contrast() {
    // The §7.2 analysis hinges on wiki being dense and the road graph
    // sparse with a huge diameter; the analogs must keep that contrast.
    let wiki = WIKIPEDIA.analog_graph(DIV, 1, NeighborMode::Both);
    let usa = USA_ROADS.analog_graph(DIV, 2, NeighborMode::Both);
    let sw = GraphStats::compute(&wiki);
    let su = GraphStats::compute(&usa);
    assert!(sw.avg_out_degree > 3.0 * su.avg_out_degree);
    assert!(sw.max_out_degree > 20 * su.max_out_degree);
}

#[test]
fn road_sssp_needs_far_more_supersteps_than_wiki() {
    let wiki = WIKIPEDIA.analog_graph(DIV, 1, NeighborMode::Both);
    let usa = USA_ROADS.analog_graph(DIV, 2, NeighborMode::Both);
    let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let sw = run(&wiki, &Sssp { source: 2 }, v, &RunConfig::default());
    let su = run(&usa, &Sssp { source: 2 }, v, &RunConfig::default());
    // "A lower density means ... a high number of supersteps" (§7.2).
    assert!(
        su.stats.num_supersteps() > 4 * sw.stats.num_supersteps(),
        "usa {} vs wiki {}",
        su.stats.num_supersteps(),
        sw.stats.num_supersteps()
    );
}

#[test]
fn pagerank_runs_exactly_rounds_plus_one_supersteps() {
    let wiki = WIKIPEDIA.analog_graph(DIV, 1, NeighborMode::Both);
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(
            &wiki,
            &PageRank { rounds: 8, damping: 0.85 },
            Version { combiner, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(out.stats.num_supersteps(), 9, "{combiner:?}");
        // All vertices active at every update superstep (§7.1.4).
        for s in &out.stats.supersteps {
            assert_eq!(s.active, wiki.num_vertices() as u64);
        }
    }
}

#[test]
fn hashmin_active_profile_decreases_to_none() {
    let usa = USA_ROADS.analog_graph(DIV, 2, NeighborMode::Both);
    let out = run(
        &usa,
        &Hashmin,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    let profile: Vec<u64> = out.stats.supersteps.iter().map(|s| s.active).collect();
    assert_eq!(profile[0], usa.num_vertices() as u64, "starts with all active");
    assert!(*profile.last().unwrap() < profile[0] / 10, "ends with almost none");
}

#[test]
fn sssp_active_profile_is_bell_shaped() {
    let usa = USA_ROADS.analog_graph(DIV, 2, NeighborMode::Both);
    let out = run(
        &usa,
        &Sssp { source: 2 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    // §7.1.4: "it starts with one active vertex typically followed by a
    // bell evolution". Superstep 0 runs all (initial activation); the
    // frontier then grows to a peak and shrinks.
    let frontier: Vec<u64> = out.stats.supersteps.iter().skip(1).map(|s| s.active).collect();
    let peak_at = frontier.iter().enumerate().max_by_key(|(_, &a)| a).map(|(i, _)| i).unwrap();
    assert!(peak_at > 0, "frontier grows");
    assert!(peak_at < frontier.len() - 1, "frontier shrinks after the peak");
    assert!(*frontier.last().unwrap() <= frontier[peak_at] / 4);
}

#[test]
fn all_six_versions_agree_on_the_analogs() {
    let wiki = WIKIPEDIA.analog_graph(DIV, 1, NeighborMode::Both);
    let reference = run(
        &wiki,
        &Hashmin,
        Version::paper_versions()[0],
        &RunConfig::default(),
    );
    for v in &Version::paper_versions()[1..] {
        let out = run(&wiki, &Hashmin, *v, &RunConfig::default());
        assert_eq!(out.values, reference.values, "{}", v.label());
    }
}

#[test]
fn fig8_pipeline_produces_a_lead_change_shape() {
    // Miniature figure-8: Pregel+ simulated over node counts, with the
    // footnote-8 extrapolation machinery on top.
    let wiki = WIKIPEDIA.analog_graph(DIV, 1, NeighborMode::Both);
    let cost = CostModel::default();
    let mem = MemoryModel::pregel_plus(4).with_scaled_runtime(DIV);
    let mut series = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16] {
        let out = simulate(
            &wiki,
            &Hashmin,
            &ClusterSpec::m4_large_scaled(nodes, DIV),
            &cost,
            &mem,
            Some(10_000),
        );
        series.push(if out.memory_ok {
            NodesPoint::measured(nodes, out.simulated_seconds)
        } else {
            NodesPoint::failed(nodes)
        });
    }
    let extended = extrapolate_series(&series, 1024);
    // Some very small reference always gets caught eventually...
    let tiny_ref = 1e-7;
    let lc = lead_change(&extended, tiny_ref);
    // ...and a huge reference is beaten immediately.
    assert_eq!(lead_change(&extended, f64::MAX), Some(1));
    // The series must be monotone enough for the machinery to work.
    assert!(extended.iter().filter(|p| p.seconds.is_some()).count() >= 5);
    let _ = lc; // may or may not cross within 1024 — both are valid shapes
}

#[test]
fn memory_models_reproduce_the_headline_numbers() {
    let rss = RssModel::default();
    let full = rss.rss_bytes(TWITTER_MPI.vertices, TWITTER_MPI.edges) / GB;
    assert!((full - 11.0).abs() < 0.4);
    let bp = breaking_point_percent(&rss, TWITTER_MPI.vertices, TWITTER_MPI.edges, 8.0 * GB);
    assert_eq!(bp, Some(71)); // paper: 70%
}

#[test]
fn measured_engine_footprint_scales_linearly_in_graph_size() {
    // Miniature Figure 9 on the actual engine accounting.
    let mut points = Vec::new();
    for pct in [25u32, 50, 75, 100] {
        let g = TWITTER_MPI.percent_analog(pct, 20_000, 9, NeighborMode::InOnly);
        let out = run(
            &g,
            &PageRank { rounds: 2, damping: 0.85 },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        points.push((f64::from(pct), out.footprint.total_bytes() as f64));
    }
    let dev = ipregel_mem::rss::validate_linear(&points);
    assert!(dev < 0.08, "measured footprint deviates {dev} from linear");
}
