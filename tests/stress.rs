//! Heavier randomized stress: larger graphs, every version, adversarial
//! shapes (hubs, long chains, dense cliques, disconnected debris).

use ipregel::{run, CombinerKind, RunConfig, Schedule, Version};
use ipregel_apps::reference;
use ipregel_apps::{Hashmin, KCore, MultiSourceReachability, Sssp};
use ipregel_graph::generators::barabasi::barabasi_albert_edges;
use ipregel_graph::generators::watts_strogatz::watts_strogatz_edges;
use ipregel_graph::transform::symmetrize;
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};

fn build_sym(mut edges: Vec<(u32, u32)>) -> Graph {
    symmetrize(&mut edges);
    let mut b = GraphBuilder::with_capacity(NeighborMode::Both, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().unwrap()
}

#[test]
fn hub_heavy_graph_all_versions_agree_with_reference() {
    // Preferential attachment → extreme hubs → maximal mailbox contention.
    let g = build_sym(barabasi_albert_edges(3000, 3, 42));
    let expected = reference::minlabel_fixpoint(&g);
    for v in Version::paper_versions() {
        let out = run(&g, &Hashmin, v, &RunConfig::default());
        assert_eq!(out.values, expected, "{}", v.label());
    }
}

#[test]
fn small_world_sssp_under_contention() {
    let g = build_sym(watts_strogatz_edges(4000, 6, 0.1, 7));
    let expected = reference::bfs_levels(&g, 0);
    for v in Version::paper_versions() {
        let out = run(
            &g,
            &Sssp { source: 0 },
            v,
            &RunConfig { threads: Some(8), ..RunConfig::default() },
        );
        assert_eq!(out.values, expected, "{}", v.label());
    }
}

#[test]
fn pathological_chain_with_shortcuts() {
    // A 5000-vertex chain plus shortcuts: worst case for superstep counts
    // with late frontier corrections.
    let mut edges: Vec<(u32, u32)> = (0..4999u32).map(|i| (i, i + 1)).collect();
    for i in (0..4999).step_by(97) {
        edges.push((i, (i + 450) % 5000));
    }
    let g = build_sym(edges);
    let expected = reference::bfs_levels(&g, 2500);
    let bypass = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let scan = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };
    let a = run(&g, &Sssp { source: 2500 }, bypass, &RunConfig::default());
    let b = run(&g, &Sssp { source: 2500 }, scan, &RunConfig::default());
    assert_eq!(a.values, expected);
    assert_eq!(b.values, expected);
}

#[test]
fn disconnected_debris_and_clique_cores() {
    // Dense cliques joined by bridges plus isolated vertices: exercises
    // k-core cascades and component labelling together.
    let mut edges = Vec::new();
    for c in 0..5u32 {
        let base = c * 20;
        for i in 0..10 {
            for j in (i + 1)..10 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((5, 25)); // one bridge between two cliques
    let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, 120);
    let mut sym = edges;
    symmetrize(&mut sym);
    for (u, v) in sym {
        b.add_edge(u, v);
    }
    let g = b.build().unwrap();

    // Components.
    let expected = reference::minlabel_fixpoint(&g);
    let comp = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Broadcast, selection_bypass: true },
        &RunConfig::default(),
    );
    assert_eq!(comp.values, expected);

    // 9-core keeps exactly the clique members (bridge endpoints have
    // degree 10 but their neighbours cap out at 9-cliques).
    let core = run(
        &g,
        &KCore { k: 9 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    let alive = core.iter().filter(|(_, s)| s.alive).count();
    assert_eq!(alive, 50, "all clique members survive the 9-core");
    let expected_core = ipregel_apps::kcore::kcore_peeling(&g, 9);
    for slot in g.address_map().live_slots() {
        assert_eq!(core.values[slot as usize].alive, expected_core[slot as usize]);
    }
}

#[test]
fn hub_skew_edge_balanced_bounds_chunk_imbalance() {
    // One 12_000-spoke hub on a 20_000-vertex ring: the worst case for
    // vertex-count chunking, which lands the hub plus ~1_249 ring
    // vertices in one chunk. With 4 threads the engines cut 16 chunks;
    // the planned-weight imbalance is then bounded by
    //   1 + max_vertex_weight * chunks / total_weight  ≈ 3.3
    // for the edge-balanced schedule, against ~3.9 for vertex-balanced.
    const N: u32 = 20_000;
    const SPOKES: u32 = 12_000;
    let mut edges: Vec<(u32, u32)> = (1..=SPOKES).map(|i| (0, i)).collect();
    edges.extend((0..N).map(|i| (i, (i + 1) % N)));
    let g = build_sym(edges);
    assert_eq!(g.out_degree(0), SPOKES + 2, "hub degree");

    // Cap the run: the ring needs ~N/4 supersteps to converge, but all
    // the load-imbalance signal is in the early full-frontier supersteps.
    let run_with = |schedule| {
        let cfg = RunConfig {
            threads: Some(4),
            schedule,
            max_supersteps: Some(40),
            ..RunConfig::default()
        };
        run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &cfg,
        )
    };
    let vertex = run_with(Schedule::VertexBalanced);
    let edge = run_with(Schedule::EdgeBalanced);
    let adaptive = run_with(Schedule::Adaptive);

    // Identical computation regardless of chunking.
    assert_eq!(vertex.values, edge.values);
    assert_eq!(vertex.values, adaptive.values);
    assert_eq!(vertex.stats.num_supersteps(), edge.stats.num_supersteps());

    // Every parallel superstep must have recorded its chunk plan.
    for out in [&vertex, &edge] {
        for step in &out.stats.supersteps {
            assert!(step.load.is_some(), "superstep {} lost its load stats", step.superstep);
        }
    }

    let vb = vertex.stats.worst_edge_imbalance();
    let eb = edge.stats.worst_edge_imbalance();
    assert!(
        eb <= 3.5,
        "edge-balanced planned imbalance must stay near the theoretical \
         bound (~3.3 for this graph), got {eb}"
    );
    assert!(
        eb + 0.3 < vb,
        "edge-balanced must beat vertex-balanced on a hub graph: eb={eb} vb={vb}"
    );
    // The hub's weight exceeds twice the ideal chunk weight, so the
    // adaptive probe must have picked the edge-balanced cut: identical
    // planned chunk weights, superstep for superstep.
    let ab = adaptive.stats.worst_edge_imbalance();
    assert_eq!(ab, eb, "adaptive resolved to edge-balanced: ab={ab} eb={eb}");
}

#[test]
fn sixty_four_source_reachability() {
    let g = build_sym(watts_strogatz_edges(1000, 4, 0.05, 3));
    let sources: Vec<u32> = (0..64).map(|i| i * 15).collect();
    let q = MultiSourceReachability::new(sources.clone());
    let expected = ipregel_apps::reachability::reachability_oracle(&g, &sources);
    // Skip the lock-free engine here: a 64-bit full mask could collide
    // with its sentinel; every other version must agree.
    for v in Version::paper_versions() {
        let out = run(&g, &q, v, &RunConfig::default());
        assert_eq!(out.values, expected, "{}", v.label());
    }
}
