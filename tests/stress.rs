//! Heavier randomized stress: larger graphs, every version, adversarial
//! shapes (hubs, long chains, dense cliques, disconnected debris).

use ipregel::{run, CombinerKind, RunConfig, Schedule, Version};
use ipregel_apps::reference;
use ipregel_apps::{Hashmin, KCore, MultiSourceReachability, Sssp};
use ipregel_graph::generators::barabasi::barabasi_albert_edges;
use ipregel_graph::generators::watts_strogatz::watts_strogatz_edges;
use ipregel_graph::transform::symmetrize;
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};

fn build_sym(mut edges: Vec<(u32, u32)>) -> Graph {
    symmetrize(&mut edges);
    let mut b = GraphBuilder::with_capacity(NeighborMode::Both, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().unwrap()
}

#[test]
fn hub_heavy_graph_all_versions_agree_with_reference() {
    // Preferential attachment → extreme hubs → maximal mailbox contention.
    let g = build_sym(barabasi_albert_edges(3000, 3, 42));
    let expected = reference::minlabel_fixpoint(&g);
    for v in Version::paper_versions() {
        let out = run(&g, &Hashmin, v, &RunConfig::default());
        assert_eq!(out.values, expected, "{}", v.label());
    }
}

#[test]
fn small_world_sssp_under_contention() {
    let g = build_sym(watts_strogatz_edges(4000, 6, 0.1, 7));
    let expected = reference::bfs_levels(&g, 0);
    for v in Version::paper_versions() {
        let out = run(
            &g,
            &Sssp { source: 0 },
            v,
            &RunConfig { threads: Some(8), ..RunConfig::default() },
        );
        assert_eq!(out.values, expected, "{}", v.label());
    }
}

#[test]
fn pathological_chain_with_shortcuts() {
    // A 5000-vertex chain plus shortcuts: worst case for superstep counts
    // with late frontier corrections.
    let mut edges: Vec<(u32, u32)> = (0..4999u32).map(|i| (i, i + 1)).collect();
    for i in (0..4999).step_by(97) {
        edges.push((i, (i + 450) % 5000));
    }
    let g = build_sym(edges);
    let expected = reference::bfs_levels(&g, 2500);
    let bypass = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let scan = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };
    let a = run(&g, &Sssp { source: 2500 }, bypass, &RunConfig::default());
    let b = run(&g, &Sssp { source: 2500 }, scan, &RunConfig::default());
    assert_eq!(a.values, expected);
    assert_eq!(b.values, expected);
}

#[test]
fn disconnected_debris_and_clique_cores() {
    // Dense cliques joined by bridges plus isolated vertices: exercises
    // k-core cascades and component labelling together.
    let mut edges = Vec::new();
    for c in 0..5u32 {
        let base = c * 20;
        for i in 0..10 {
            for j in (i + 1)..10 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((5, 25)); // one bridge between two cliques
    let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, 120);
    let mut sym = edges;
    symmetrize(&mut sym);
    for (u, v) in sym {
        b.add_edge(u, v);
    }
    let g = b.build().unwrap();

    // Components.
    let expected = reference::minlabel_fixpoint(&g);
    let comp = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Broadcast, selection_bypass: true },
        &RunConfig::default(),
    );
    assert_eq!(comp.values, expected);

    // 9-core keeps exactly the clique members (bridge endpoints have
    // degree 10 but their neighbours cap out at 9-cliques).
    let core = run(
        &g,
        &KCore { k: 9 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    let alive = core.iter().filter(|(_, s)| s.alive).count();
    assert_eq!(alive, 50, "all clique members survive the 9-core");
    let expected_core = ipregel_apps::kcore::kcore_peeling(&g, 9);
    for slot in g.address_map().live_slots() {
        assert_eq!(core.values[slot as usize].alive, expected_core[slot as usize]);
    }
}

#[test]
fn hub_skew_edge_balanced_bounds_chunk_imbalance() {
    // One 60_000-spoke hub on a 100_000-vertex ring: the worst case for
    // vertex-count chunking, which lands the hub plus thousands of ring
    // vertices in one chunk. Every expectation below is derived from
    // the graph itself (vertex counts and degrees), never from RNG
    // streams or measured timings, so the assertions are stable across
    // pool scheduling changes. Which worker executes which chunk *is*
    // timing-dependent (that is the point of stealing — and on a
    // CPU-starved CI box it is pure preemption noise), so the achieved-
    // balance assertions below only use bounds that hold for every
    // possible chunk→worker assignment or aggregate over the whole run.
    const N: u32 = 100_000;
    const SPOKES: u32 = 60_000;
    const THREADS: usize = 4;
    let mut edges: Vec<(u32, u32)> = (1..=SPOKES).map(|i| (0, i)).collect();
    edges.extend((0..N).map(|i| (i, (i + 1) % N)));
    let g = build_sym(edges);
    assert_eq!(g.out_degree(0), SPOKES + 2, "hub degree");
    // Planner weight model: degree + 1 per vertex.
    let hub_weight = f64::from(SPOKES + 2 + 1);
    let total_weight = (0..N).map(|v| f64::from(g.out_degree(v) + 1)).sum::<f64>();

    // Cap the run: the ring needs ~N/4 supersteps to converge, but all
    // the load-imbalance signal is in the early full-frontier supersteps.
    let run_with = |schedule| {
        let cfg = RunConfig {
            threads: Some(THREADS),
            schedule,
            max_supersteps: Some(40),
            ..RunConfig::default()
        };
        run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &cfg,
        )
    };
    let vertex = run_with(Schedule::VertexBalanced);
    let edge = run_with(Schedule::EdgeBalanced);
    let adaptive = run_with(Schedule::Adaptive);

    // Identical computation regardless of chunking.
    assert_eq!(vertex.values, edge.values);
    assert_eq!(vertex.values, adaptive.values);
    assert_eq!(vertex.stats.num_supersteps(), edge.stats.num_supersteps());

    // Every parallel superstep must have recorded its chunk plan.
    for out in [&vertex, &edge, &adaptive] {
        for step in &out.stats.supersteps {
            assert!(step.load.is_some(), "superstep {} lost its load stats", step.superstep);
        }
    }

    // Plan-level imbalance. The unsplittable hub bounds any cut: its
    // chunk weighs at least hub_weight, so with C chunks the max/mean
    // ratio is at least hub_weight·C/total on a full frontier — and
    // edge-balancing must achieve essentially exactly that floor
    // (60_003·16/420_000 ≈ 2.29 here; the pre-stealing suite allowed
    // 3.5 because it recorded raw edges against a degree+1 cut).
    let vb = vertex.stats.worst_edge_imbalance();
    let eb = edge.stats.worst_edge_imbalance();
    assert!(
        eb <= 2.5,
        "edge-balanced planned imbalance must stay near the hub floor \
         (~2.29 for this graph), got {eb}"
    );
    assert!(
        eb + 0.3 < vb,
        "edge-balanced must beat vertex-balanced on a hub graph: eb={eb} vb={vb}"
    );

    // The hub's weight exceeds twice the ideal chunk weight, so the
    // adaptive probe must have picked the edge-balanced cut — and, with
    // a work-stealing pool underneath, over-partitioned it so thieves
    // have finer chunks to rebalance with. Find the heaviest superstep
    // of each run (same frontier, by construction of the comparison).
    let heaviest = |stats: &ipregel::RunStats| {
        stats
            .supersteps
            .iter()
            .filter_map(|s| s.load.as_ref())
            .max_by_key(|l| l.chunk_edges.iter().sum::<u64>())
            .expect("parallel run records load")
            .clone()
    };
    let eb_load = heaviest(&edge.stats);
    let ab_load = heaviest(&adaptive.stats);
    assert!(
        ab_load.num_chunks() > eb_load.num_chunks(),
        "adaptive must over-partition beyond the plain edge cut: {} vs {} chunks",
        ab_load.num_chunks(),
        eb_load.num_chunks()
    );
    // Graph-derived ceiling on the finer plan: every chunk weighs less
    // than ideal + heaviest vertex, so the ratio stays below
    // 1 + hub_weight·C/total (≈ 5.6 at 32 chunks).
    let ab = adaptive.stats.worst_edge_imbalance();
    let ab_chunks = ab_load.num_chunks() as f64;
    assert!(
        ab <= 1.0 + hub_weight * ab_chunks / total_weight + 1e-9,
        "over-partitioned plan exceeded the greedy-cut bound: {ab}"
    );

    // What stealing *achieved*: group each chunk's planned weight by
    // the worker that actually executed it. A static one-chunk-per-
    // worker handoff can never do better than its worst single chunk
    // (the hub chunk, ratio ≈ 4.57 on the over-partitioned plan), while
    // *any* dynamic chunk→worker assignment is capped at num_workers
    // (= 4.0, one worker runs everything). Work-stealing therefore
    // beats the static baseline on every possible schedule — that gap
    // is exactly what over-partitioning buys, and it holds even when
    // the OS serializes the workers.
    let achieved = ab_load.worker_edge_imbalance(THREADS);
    let planned = ab_load.edge_imbalance();
    assert!(
        achieved < planned,
        "work-stealing must beat the plan's single-chunk imbalance: \
         achieved={achieved} planned={planned}"
    );
    // Aggregate balance over the whole run: per-superstep assignments
    // swing with scheduler timing (a thief that wakes late misses a
    // short superstep entirely), but summed across all 40 supersteps
    // the stolen schedule should spread the weight. Unlike the bounds
    // above, this one is *schedule-dependent* — it needs the OS to
    // actually run thief workers. On a CPU-starved runner (one core
    // timeslicing all four workers) a single worker can legitimately
    // execute nearly every chunk, driving max/mean toward the
    // any-schedule ceiling of THREADS (= 4.0) — so assert only when
    // the host can run at least two workers concurrently, and against
    // a bound that tolerates the weight landing on two of them
    // (max/mean = 2.0) with slack, rather than demanding a perfect
    // four-way flatten.
    let mut per_worker = vec![0u64; THREADS];
    let mut aggregate_total = 0u64;
    for l in adaptive.stats.supersteps.iter().filter_map(|s| s.load.as_ref()) {
        for (w, e) in l.chunk_workers.iter().zip(&l.chunk_edges) {
            per_worker[(*w as usize).min(THREADS - 1)] += e;
            aggregate_total += e;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let aggregate = per_worker.iter().copied().max().unwrap_or(0) as f64
        / (aggregate_total as f64 / THREADS as f64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        assert!(
            aggregate <= 3.0,
            "aggregate per-worker weight must flatten across the run: \
             max/mean = {aggregate}, per-worker = {per_worker:?}"
        );
    }
    // And the pool must actually have been stealing: over the 40
    // supersteps at least one chunk moved between workers.
    let stolen: u64 =
        adaptive.stats.supersteps.iter().filter_map(|s| s.load.as_ref()).map(|l| l.steals).sum();
    assert!(stolen > 0, "over-partitioned run never exercised the steal path");
}

#[test]
fn sixty_four_source_reachability() {
    let g = build_sym(watts_strogatz_edges(1000, 4, 0.05, 3));
    let sources: Vec<u32> = (0..64).map(|i| i * 15).collect();
    let q = MultiSourceReachability::new(sources.clone());
    let expected = ipregel_apps::reachability::reachability_oracle(&g, &sources);
    // Skip the lock-free engine here: a 64-bit full mask could collide
    // with its sentinel; every other version must agree.
    for v in Version::paper_versions() {
        let out = run(&g, &q, v, &RunConfig::default());
        assert_eq!(out.values, expected, "{}", v.label());
    }
}
