//! Validates the engines' byte accounting against the kernel's view —
//! the check DESIGN.md promises for substituting exact accounting where
//! the paper used `time -v` max RSS.
//!
//! Lives alone in its own test binary so other tests' allocations cannot
//! pollute this process's high-water mark.

#![cfg(target_os = "linux")]

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::Hashmin;
use ipregel_graph::generators::erdos_renyi::erdos_renyi_edges;
use ipregel_graph::{GraphBuilder, NeighborMode};

/// Current VmHWM (peak resident set) in bytes, from /proc/self/status.
fn vm_hwm_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().expect("VmHWM number");
            return kb * 1024;
        }
    }
    panic!("VmHWM not found in /proc/self/status");
}

#[test]
fn accounting_tracks_real_peak_rss() {
    let before = vm_hwm_bytes();

    // A graph big enough (~hundreds of MB of state) that everything
    // allocated before this test is noise.
    let n = 2_000_000u32;
    let m = 8_000_000u64;
    let mut b = GraphBuilder::with_capacity(NeighborMode::Both, m as usize).declare_id_range(0, n);
    for (u, v) in erdos_renyi_edges(n, m, 99) {
        b.add_edge(u, v);
    }
    let g = b.build().unwrap();

    let out = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig { max_supersteps: Some(5), ..RunConfig::default() },
    );
    let accounted = out.footprint.total_bytes() as u64;
    let after = vm_hwm_bytes();
    let grown = after.saturating_sub(before);

    // The accounting covers graph + engine state. Real RSS additionally
    // carries the edge-list staging buffers the builder used (peak!),
    // allocator slack and page rounding — so RSS growth must be at least
    // the accounted engine state, and within a small multiple of it.
    assert!(
        grown >= accounted / 2,
        "RSS grew only {grown} bytes but accounting claims {accounted}"
    );
    assert!(
        grown <= accounted * 6,
        "RSS grew {grown} bytes, wildly above the accounted {accounted}"
    );
    // Sanity on magnitudes: this graph really is big.
    assert!(accounted > 100 << 20, "accounted {accounted} bytes; test graph too small");
}
