//! The paper's *qualitative* performance claims as executable assertions.
//!
//! These compare orderings with generous margins (≥2–3× where the real
//! effects are 4–100×), so they hold in debug builds and under test-runner
//! noise. A static mutex serialises them against each other; they are
//! still not immune to a heavily oversubscribed machine, which is why
//! the margins are wide and the workloads structural (superstep-count
//! dominated), not microsecond-scale.
//!
//! The whole suite is compiled out under `--features check-disjoint`:
//! the borrow tags add an atomic RMW to every vertex access, a flat
//! per-access tax that compresses exactly the ratios asserted here
//! (measured: scan/bypass falls from ~4× to ~1.9× with tags armed).
//! Instrumented builds check *correctness* claims; timing claims only
//! hold on uninstrumented code.

#![cfg(not(feature = "check-disjoint"))]

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use femtograph_sim::run_naive;
use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::{PageRank, Sssp};
use ipregel_graph::generators::analogs::{USA_ROADS, WIKIPEDIA};
use ipregel_graph::NeighborMode;

static SERIAL: Mutex<()> = Mutex::new(());

fn timed(f: impl FnOnce() -> u64) -> (Duration, u64) {
    let t0 = std::time::Instant::now();
    let check = f();
    (t0.elapsed(), check)
}

#[test]
fn bypass_beats_scan_on_road_sssp_by_a_wide_margin() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    // High diameter + tiny frontier: the §4 best case (paper: ×1400 at
    // full scale, ×46 at harness scale; demand ≥3× here).
    let g = USA_ROADS.analog_graph(500, 5, NeighborMode::Both);
    let cfg = RunConfig { threads: Some(2), ..RunConfig::default() };
    let (scan, a) = timed(|| {
        let out = run(
            &g,
            &Sssp { source: 2 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &cfg,
        );
        out.values.iter().map(|&v| u64::from(v != u32::MAX)).sum()
    });
    let (bypass, b) = timed(|| {
        let out = run(
            &g,
            &Sssp { source: 2 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &cfg,
        );
        out.values.iter().map(|&v| u64::from(v != u32::MAX)).sum()
    });
    assert_eq!(a, b, "both runs must reach the same vertices");
    assert!(
        scan > bypass * 3,
        "scan {scan:?} should be ≥3× bypass {bypass:?} on the road graph"
    );
}

#[test]
fn pull_combiner_wins_pagerank() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    // Paper Figure 7: broadcast halves the spinlock time; ours is 2–4×.
    // Demand only that pull is faster at all (margin 1.2×).
    let g = WIKIPEDIA.analog_graph(400, 5, NeighborMode::Both);
    let pr = PageRank { rounds: 10, damping: 0.85 };
    let cfg = RunConfig { threads: Some(2), ..RunConfig::default() };
    let (push, _) = timed(|| {
        run(&g, &pr, Version { combiner: CombinerKind::Mutex, selection_bypass: false }, &cfg)
            .stats
            .num_supersteps() as u64
    });
    let (pull, _) = timed(|| {
        run(&g, &pr, Version { combiner: CombinerKind::Broadcast, selection_bypass: false }, &cfg)
            .stats
            .num_supersteps() as u64
    });
    assert!(
        push.as_secs_f64() > pull.as_secs_f64() * 1.2,
        "mutex push {push:?} should trail pull {pull:?} on PageRank"
    );
}

#[test]
fn optimised_framework_beats_the_naive_baseline() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    // The FemtoGraph-shaped baseline pays queues + hashmap + scans
    // (harness: 4–15×; demand 2×).
    let g = WIKIPEDIA.analog_graph(400, 5, NeighborMode::Both);
    let pr = PageRank { rounds: 8, damping: 0.85 };
    let cfg = RunConfig { threads: Some(2), ..RunConfig::default() };
    let (fast, _) = timed(|| {
        run(&g, &pr, Version { combiner: CombinerKind::Broadcast, selection_bypass: false }, &cfg)
            .stats
            .num_supersteps() as u64
    });
    let (naive, _) = timed(|| run_naive(&g, &pr, &cfg).stats.num_supersteps() as u64);
    assert!(
        naive.as_secs_f64() > fast.as_secs_f64() * 2.0,
        "naive {naive:?} should trail the optimised engine {fast:?} by ≥2×"
    );
}
