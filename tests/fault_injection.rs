//! Fault-tolerance tests: panic isolation, cooperative deadlines,
//! checkpoint/resume equivalence, loader robustness under corruption,
//! and (behind `--features chaos`) deterministic injected failures.
//!
//! The load-bearing invariant throughout is the one golden.rs enforces
//! for schedules, extended to crashes: a run that is killed at a
//! superstep barrier and resumed from its checkpoint must be
//! *indistinguishable* from a run that was never interrupted — same
//! values, same superstep count, same per-superstep active/message
//! history — on every engine version and schedule.
//!
//! The chaos plan and the Rust panic hook are process-global, so every
//! test that runs an engine (or arms a plan) serialises on [`LOCK`].
//! The proptest loader-fuzz suites touch neither and run freely.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs::{self, File};
use std::io::{BufReader, Cursor};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use ipregel::engine::seq::try_run_sequential_recoverable;
use ipregel::recover::{run_packed_with_checkpoints, run_with_checkpoints, DiskCheckpointer};
use ipregel::{
    try_run, try_run_packed, try_run_sequential, CheckpointConfig, CombinerKind, Context,
    PackMessage, Persist, RunConfig, RunError, RunOutput, Schedule, Version, VertexProgram,
};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::loaders::{
    load_dimacs_gr, load_edge_list, load_konect, load_matrix_market, read_binary, write_binary,
};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode, VertexId};
use proptest::prelude::*;

/// PageRank parameters mirrored from `tests/golden.rs`.
const ROUNDS: usize = 20;
const DAMPING: f64 = 0.85;
/// SSSP source in fixture B, mirrored from `tests/golden.rs`.
const SSSP_SOURCE: u32 = 2;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A failed test poisons the mutex; the guarded state (chaos plan,
    // panic hook) is reset by guards below, so poison is shrugged off.
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn fixture(name: &str) -> Graph {
    let path = fixture_path(name);
    let file = File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    load_edge_list(BufReader::new(file), NeighborMode::Both).expect("fixture parses")
}

fn expected<T>(name: &str) -> BTreeMap<u32, T>
where
    T: FromStr,
    T::Err: Debug,
{
    let path = fixture_path(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            let mut it = line.split_whitespace();
            let id: u32 = it.next().expect("id column").parse().expect("id parses");
            let value: T = it.next().expect("value column").parse().expect("value parses");
            (id, value)
        })
        .collect()
}

/// A fresh, empty scratch directory under the system temp dir.
fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipregel-fault-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A symmetric cycle on `0..n`: every vertex has in- and out-neighbours,
/// so it stays active under both scan selection and the bypass, and
/// Hashmin needs about `n / 2` supersteps to converge on it.
fn cycle(n: u32) -> Graph {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
        b.add_edge((i + 1) % n, i);
    }
    b.build().expect("cycle builds")
}

/// The six paper versions plus the lock-free extension in both
/// selection modes: every parallel engine path there is.
fn all_versions() -> Vec<Version> {
    let mut vs = Version::paper_versions().to_vec();
    vs.push(Version { combiner: CombinerKind::LockFree, selection_bypass: true });
    vs.push(Version { combiner: CombinerKind::LockFree, selection_bypass: false });
    vs
}

/// Fallible dispatch that also covers the lock-free (packed) versions.
fn run_any<P>(
    g: &Graph,
    program: &P,
    v: Version,
    cfg: &RunConfig,
) -> Result<RunOutput<P::Value>, RunError>
where
    P: VertexProgram,
    P::Message: PackMessage,
{
    if matches!(v.combiner, CombinerKind::LockFree) {
        try_run_packed(g, program, v, cfg)
    } else {
        try_run(g, program, v, cfg)
    }
}

/// Checkpointing dispatch that also covers the lock-free versions.
fn ckpt_run_any<P>(
    g: &Graph,
    program: &P,
    v: Version,
    cfg: &RunConfig,
    ckpt: &CheckpointConfig,
) -> Result<RunOutput<P::Value>, RunError>
where
    P: VertexProgram,
    P::Value: Persist,
    P::Message: Persist + PackMessage,
{
    if matches!(v.combiner, CombinerKind::LockFree) {
        run_packed_with_checkpoints(g, program, v, cfg, ckpt)
    } else {
        run_with_checkpoints(g, program, v, cfg, ckpt)
    }
}

/// The resume-invariant projection of a run: per-superstep active and
/// message counts (durations are wall-clock facts, not results).
fn history<V>(out: &RunOutput<V>) -> Vec<(u64, u64)> {
    out.stats.supersteps.iter().map(|s| (s.active, s.messages_sent)).collect()
}

/// Run `f` with the default panic hook silenced, so intentionally
/// panicking vertex programs do not spray backtraces over test output.
fn silencing_panics<T>(f: impl FnOnce() -> T) -> T {
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct Restore(Option<PanicHook>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                std::panic::set_hook(prev);
            }
        }
    }
    let guard = Restore(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    drop(guard);
    out
}

/// Broadcasts for a fixed number of supersteps (keeping every vertex
/// active on every engine), and panics inside `compute` on one chosen
/// vertex at one chosen superstep. Halts every superstep, so it is
/// bypass-compatible; broadcast-only, so it is pull-compatible.
struct PanicAt {
    victim: u32,
    at: usize,
}

impl VertexProgram for PanicAt {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        0
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        if ctx.superstep() == self.at && ctx.id() == self.victim {
            panic!("injected test panic at superstep {}", self.at);
        }
        while ctx.next_message().is_some() {}
        *value += 1;
        if ctx.superstep() < 6 {
            ctx.broadcast(1);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        *old += new;
    }
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

#[test]
fn vertex_panic_is_isolated_on_every_version() {
    let _held = lock();
    let g = cycle(8);
    let program = PanicAt { victim: 3, at: 2 };
    silencing_panics(|| {
        for schedule in Schedule::all() {
            let cfg = RunConfig { threads: Some(4), schedule, ..RunConfig::default() };
            for v in all_versions() {
                let label = format!("{} / {schedule}", v.label());
                match run_any(&g, &program, v, &cfg) {
                    Err(RunError::VertexPanic { superstep, message, stats, .. }) => {
                        assert_eq!(superstep, 2, "{label}");
                        assert!(message.contains("injected test panic"), "{label}: {message}");
                        // Supersteps 0 and 1 completed before the crash.
                        assert_eq!(stats.num_supersteps(), 2, "{label}");
                    }
                    other => panic!("{label}: expected VertexPanic, got {other:?}"),
                }
                // The pool survived: the same config immediately runs a
                // healthy program to completion.
                run_any(&g, &Hashmin, v, &cfg).unwrap_or_else(|e| {
                    panic!("{label}: pool did not survive the panic: {e}")
                });
            }
        }
        match try_run_sequential(&g, &program, &RunConfig::default()) {
            Err(RunError::VertexPanic { superstep, message, stats, .. }) => {
                assert_eq!(superstep, 2, "sequential");
                assert!(message.contains("injected test panic"), "sequential: {message}");
                assert_eq!(stats.num_supersteps(), 2, "sequential");
            }
            other => panic!("sequential: expected VertexPanic, got {other:?}"),
        }
    });
}

// ---------------------------------------------------------------------
// Cooperative deadlines
// ---------------------------------------------------------------------

#[test]
fn zero_deadline_exceeds_before_any_superstep() {
    let _held = lock();
    let g = cycle(8);
    let cfg =
        RunConfig { threads: Some(2), deadline: Some(Duration::ZERO), ..RunConfig::default() };
    for v in all_versions() {
        match run_any(&g, &Hashmin, v, &cfg) {
            Err(RunError::DeadlineExceeded { superstep, stats, .. }) => {
                assert_eq!(superstep, 0, "{}", v.label());
                assert_eq!(stats.num_supersteps(), 0, "{}", v.label());
            }
            other => panic!("{}: expected DeadlineExceeded, got {other:?}", v.label()),
        }
    }
    match try_run_sequential(&g, &Hashmin, &cfg) {
        Err(RunError::DeadlineExceeded { superstep, stats, .. }) => {
            assert_eq!(superstep, 0, "sequential");
            assert_eq!(stats.num_supersteps(), 0, "sequential");
        }
        other => panic!("sequential: expected DeadlineExceeded, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Checkpoint / resume equivalence (the PR-2 invariant)
// ---------------------------------------------------------------------

/// Kill-at-k + resume == uninterrupted, on every version × schedule:
/// run a baseline, re-run with a superstep cap and per-superstep
/// checkpoints, resume without the cap, and demand identical values,
/// superstep counts and per-superstep history.
fn assert_resume_matches<P>(g: &Graph, program: &P, tag: &str)
where
    P: VertexProgram,
    P::Value: Persist + PartialEq + Debug,
    P::Message: Persist + PackMessage,
{
    for (si, schedule) in Schedule::all().into_iter().enumerate() {
        for (vi, v) in all_versions().into_iter().enumerate() {
            let cfg = RunConfig { threads: Some(4), schedule, ..RunConfig::default() };
            let label = format!("{tag} / {} / {schedule}", v.label());
            let baseline =
                run_any(g, program, v, &cfg).unwrap_or_else(|e| panic!("{label}: baseline: {e}"));
            let n = baseline.stats.num_supersteps();
            assert!(n >= 2, "{label}: fixture converges too fast to test a cut");
            // Cut somewhere in the middle; at least 2 so a checkpoint
            // exists (the first one is written at superstep 1).
            let cut = (n / 2).max(2);
            let dir = tempdir(&format!("{tag}-{si}-{vi}"));
            let cut_cfg = RunConfig { max_supersteps: Some(cut), ..cfg.clone() };
            ckpt_run_any(g, program, v, &cut_cfg, &CheckpointConfig::new(&dir, 1))
                .unwrap_or_else(|e| panic!("{label}: interrupted run: {e}"));
            let resumed = ckpt_run_any(g, program, v, &cfg, &CheckpointConfig::new(&dir, 1).resuming())
                .unwrap_or_else(|e| panic!("{label}: resume: {e}"));
            assert_eq!(resumed.values, baseline.values, "{label}: values");
            assert_eq!(history(&resumed), history(&baseline), "{label}: history");
            assert_eq!(
                resumed.stats.total_messages(),
                baseline.stats.total_messages(),
                "{label}: message totals"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn hashmin_resume_matches_uninterrupted_on_every_version() {
    let _held = lock();
    let g = fixture("fixture_a.txt");
    let want: BTreeMap<u32, u32> = expected("fixture_a.hashmin.expected");
    assert_resume_matches(&g, &Hashmin, "hashmin");
    // And the golden oracle agrees with a resumed run end-to-end.
    let dir = tempdir("hashmin-golden");
    let v = Version { combiner: CombinerKind::Mutex, selection_bypass: false };
    let cut_cfg = RunConfig { max_supersteps: Some(2), ..RunConfig::default() };
    ckpt_run_any(&g, &Hashmin, v, &cut_cfg, &CheckpointConfig::new(&dir, 1)).expect("cut");
    let out = ckpt_run_any(
        &g,
        &Hashmin,
        v,
        &RunConfig::default(),
        &CheckpointConfig::new(&dir, 1).resuming(),
    )
    .expect("resume");
    for (id, value) in out.iter() {
        assert_eq!(value, &want[&id], "golden check after resume: vertex {id}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sssp_resume_matches_uninterrupted_on_every_version() {
    let _held = lock();
    let g = fixture("fixture_b.txt");
    assert_resume_matches(&g, &Sssp { source: SSSP_SOURCE }, "sssp");
}

#[test]
fn pagerank_resume_is_bit_identical_on_the_pull_engine() {
    let _held = lock();
    // The pull engine gathers each vertex's inbox in CSR in-neighbour
    // order, so its f64 ranks are deterministic bit patterns — and the
    // checkpoint snapshot is taken by the same gather. A resumed run
    // must reproduce the uninterrupted run exactly, not within an
    // epsilon.
    let g = fixture("fixture_a.txt");
    let program = PageRank { rounds: ROUNDS, damping: DAMPING };
    let v = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
    for (si, schedule) in Schedule::all().into_iter().enumerate() {
        let cfg = RunConfig { threads: Some(4), schedule, ..RunConfig::default() };
        let baseline = try_run(&g, &program, v, &cfg).expect("baseline");
        let dir = tempdir(&format!("pagerank-{si}"));
        let cut_cfg = RunConfig { max_supersteps: Some(ROUNDS / 2), ..cfg.clone() };
        run_with_checkpoints(&g, &program, v, &cut_cfg, &CheckpointConfig::new(&dir, 3))
            .expect("interrupted run");
        let resumed =
            run_with_checkpoints(&g, &program, v, &cfg, &CheckpointConfig::new(&dir, 3).resuming())
                .expect("resume");
        for (slot, (a, b)) in resumed.values.iter().zip(&baseline.values).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{schedule}: slot {slot}: resumed {a:e} != baseline {b:e}"
            );
        }
        assert_eq!(history(&resumed), history(&baseline), "{schedule}: history");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn sequential_resume_matches_uninterrupted() {
    let _held = lock();
    let g = fixture("fixture_a.txt");
    let cfg = RunConfig::default();
    let baseline = try_run_sequential(&g, &Hashmin, &cfg).expect("baseline");
    let n = baseline.stats.num_supersteps();
    assert!(n >= 2);
    let cut = (n / 2).max(2);
    let dir = tempdir("seq-resume");
    let cut_cfg = RunConfig { max_supersteps: Some(cut), ..cfg.clone() };
    let mut hooks =
        DiskCheckpointer::<u32, u32>::open(&CheckpointConfig::new(&dir, 1)).expect("open");
    try_run_sequential_recoverable(&g, &Hashmin, &cut_cfg, Some(&mut hooks))
        .expect("interrupted run");
    let mut hooks = DiskCheckpointer::<u32, u32>::open(&CheckpointConfig::new(&dir, 1).resuming())
        .expect("reopen");
    let resumed =
        try_run_sequential_recoverable(&g, &Hashmin, &cfg, Some(&mut hooks)).expect("resume");
    assert_eq!(resumed.values, baseline.values);
    assert_eq!(history(&resumed), history(&baseline));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_restore_into_any_engine_version() {
    let _held = lock();
    // The IPCK snapshot is engine-neutral: values, flags and the
    // *combined* inbox. A checkpoint written by one version must
    // restore into any other — push into pull, locked into lock-free —
    // because each engine rebuilds its own active set from the inbox.
    let g = fixture("fixture_a.txt");
    let scan = |c| Version { combiner: c, selection_bypass: false };
    let bypass = |c| Version { combiner: c, selection_bypass: true };
    let pairs = [
        (scan(CombinerKind::Mutex), bypass(CombinerKind::Broadcast)),
        (scan(CombinerKind::Broadcast), bypass(CombinerKind::Spinlock)),
        (bypass(CombinerKind::Spinlock), bypass(CombinerKind::LockFree)),
        (bypass(CombinerKind::LockFree), scan(CombinerKind::Mutex)),
    ];
    for (i, (writer, reader)) in pairs.into_iter().enumerate() {
        let cfg = RunConfig { threads: Some(4), ..RunConfig::default() };
        let label = format!("ckpt by {} resumed by {}", writer.label(), reader.label());
        let baseline = run_any(&g, &Hashmin, reader, &cfg)
            .unwrap_or_else(|e| panic!("{label}: baseline: {e}"));
        let dir = tempdir(&format!("cross-{i}"));
        let cut_cfg = RunConfig { max_supersteps: Some(2), ..cfg.clone() };
        ckpt_run_any(&g, &Hashmin, writer, &cut_cfg, &CheckpointConfig::new(&dir, 1))
            .unwrap_or_else(|e| panic!("{label}: interrupted run: {e}"));
        let resumed =
            ckpt_run_any(&g, &Hashmin, reader, &cfg, &CheckpointConfig::new(&dir, 1).resuming())
                .unwrap_or_else(|e| panic!("{label}: resume: {e}"));
        assert_eq!(resumed.values, baseline.values, "{label}: values");
        assert_eq!(
            resumed.stats.num_supersteps(),
            baseline.stats.num_supersteps(),
            "{label}: superstep count"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_without_a_checkpoint_is_a_clean_error() {
    let _held = lock();
    let g = cycle(8);
    let v = Version { combiner: CombinerKind::Mutex, selection_bypass: false };
    let dir = tempdir("resume-empty");
    let r = run_with_checkpoints(
        &g,
        &Hashmin,
        v,
        &RunConfig::default(),
        &CheckpointConfig::new(&dir, 1).resuming(),
    );
    match r {
        Err(RunError::Resume(m)) => assert!(m.contains("no valid checkpoint"), "{m}"),
        other => panic!("expected Resume error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_into_the_wrong_graph_is_a_clean_error() {
    let _held = lock();
    let small = cycle(8);
    let v = Version { combiner: CombinerKind::Mutex, selection_bypass: false };
    let dir = tempdir("resume-mismatch");
    let cut_cfg = RunConfig { max_supersteps: Some(2), ..RunConfig::default() };
    run_with_checkpoints(&small, &Hashmin, v, &cut_cfg, &CheckpointConfig::new(&dir, 1))
        .expect("checkpointed run on the small graph");
    // fixture_a has a different slot count; the snapshot must be
    // rejected, not silently misapplied.
    let other = fixture("fixture_a.txt");
    let r = run_with_checkpoints(
        &other,
        &Hashmin,
        v,
        &RunConfig::default(),
        &CheckpointConfig::new(&dir, 1).resuming(),
    );
    match r {
        Err(RunError::Resume(m)) => assert!(m.contains("slots"), "{m}"),
        other => panic!("expected Resume error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_an_older_one() {
    let _held = lock();
    let g = fixture("fixture_a.txt");
    let v = Version { combiner: CombinerKind::Mutex, selection_bypass: false };
    let cfg = RunConfig { threads: Some(4), ..RunConfig::default() };
    let baseline = try_run(&g, &Hashmin, v, &cfg).expect("baseline");
    assert!(baseline.stats.num_supersteps() > 3, "fixture too small for a depth-3 cut");
    let dir = tempdir("corrupt-newest");
    let cut_cfg = RunConfig { max_supersteps: Some(3), ..cfg.clone() };
    run_with_checkpoints(&g, &Hashmin, v, &cut_cfg, &CheckpointConfig::new(&dir, 1))
        .expect("interrupted run");
    // Checkpoints exist for supersteps 1 and 2; flip a byte in the
    // middle of the newest one.
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ipck"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "expected at least two checkpoints, found {files:?}");
    let newest = files.last().expect("non-empty");
    let mut bytes = fs::read(newest).expect("read newest checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(newest, &bytes).expect("write corrupted checkpoint");
    let resumed =
        run_with_checkpoints(&g, &Hashmin, v, &cfg, &CheckpointConfig::new(&dir, 1).resuming())
            .expect("resume past the corrupt file");
    assert_eq!(resumed.values, baseline.values);
    assert_eq!(history(&resumed), history(&baseline));
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Loader robustness: malformed input errors, never panics
// ---------------------------------------------------------------------

/// A valid binary-format image of a small graph derived from the inputs.
fn valid_image(n: u32, raw_edges: &[(u32, u32)], weighted: bool) -> Vec<u8> {
    let edges: Vec<(u32, u32)> = raw_edges.iter().map(|&(u, v)| (u % n, v % n)).collect();
    let weights: Option<Vec<u32>> =
        weighted.then(|| edges.iter().map(|&(u, v)| u.wrapping_add(v) % 100 + 1).collect());
    let mut out = Vec::new();
    write_binary(&mut out, 0, n, &edges, weights.as_deref()).expect("writer accepts valid edges");
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn truncated_binary_graphs_error_cleanly(
        n in 2u32..16,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..30),
        weighted in any::<bool>(),
        frac in 0.0f64..1.0,
    ) {
        let image = valid_image(n, &edges, weighted);
        // f64 rounding at frac ≈ 1.0 could land exactly on len; clamp so
        // the slice below is always a strict prefix.
        let cut = (((image.len() as f64) * frac) as usize).min(image.len() - 1);
        prop_assert!(cut < image.len());
        prop_assert!(read_binary(&image[..cut], NeighborMode::OutOnly).is_err());
    }

    #[test]
    fn bitflipped_binary_graphs_error_cleanly(
        n in 2u32..16,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..30),
        weighted in any::<bool>(),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let mut image = valid_image(n, &edges, weighted);
        // Same rounding clamp as above: keep the flipped byte in range.
        let pos = (((image.len() as f64) * pos_frac) as usize).min(image.len() - 1);
        image[pos] ^= mask;
        prop_assert!(read_binary(&image[..], NeighborMode::OutOnly).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_any_loader(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        // Results may be Ok or Err; the property is the absence of a
        // panic anywhere in the parse paths.
        let _ = read_binary(Cursor::new(&bytes), NeighborMode::OutOnly);
        let _ = load_edge_list(Cursor::new(&bytes), NeighborMode::Both);
        let _ = load_konect(Cursor::new(&bytes), NeighborMode::Both);
        let _ = load_dimacs_gr(Cursor::new(&bytes), NeighborMode::OutOnly);
        let _ = load_matrix_market(Cursor::new(&bytes), NeighborMode::OutOnly);

        // And again past the header checks, so the record parsers see
        // the garbage too.
        let mut gr = b"p sp 9 9\n".to_vec();
        gr.extend_from_slice(&bytes);
        let _ = load_dimacs_gr(Cursor::new(&gr), NeighborMode::OutOnly);
        let mut mtx = b"%%MatrixMarket matrix coordinate pattern general\n9 9 9\n".to_vec();
        mtx.extend_from_slice(&bytes);
        let _ = load_matrix_market(Cursor::new(&mtx), NeighborMode::OutOnly);
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection (`--features chaos`)
// ---------------------------------------------------------------------

#[cfg(feature = "chaos")]
mod chaos_suite {
    use super::*;
    use ipregel::chaos::{self, ChaosPlan, Trigger, CHECKPOINT_TRUNCATE, CHUNK_PANIC, GRAPHD_READ};

    /// Arm a plan; disarm on drop, even when the test fails.
    struct PlanGuard;

    fn arm(triggers: Vec<Trigger>) -> PlanGuard {
        chaos::set_plan(ChaosPlan { seed: 0xDECAF, triggers });
        PlanGuard
    }

    impl Drop for PlanGuard {
        fn drop(&mut self) {
            chaos::clear_plan();
        }
    }

    #[test]
    fn injected_chunk_panic_surfaces_as_vertex_panic() {
        let _held = lock();
        let g = cycle(8);
        let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };
        let cfg = RunConfig { threads: Some(2), ..RunConfig::default() };
        let baseline = try_run(&g, &Hashmin, v, &cfg).expect("baseline before arming");
        silencing_panics(|| {
            let guard = arm(vec![Trigger::at(CHUNK_PANIC, 2)]);
            match try_run(&g, &Hashmin, v, &cfg) {
                Err(RunError::VertexPanic { superstep, message, .. }) => {
                    assert_eq!(superstep, 2);
                    assert!(message.contains("chaos"), "{message}");
                }
                other => panic!("expected injected VertexPanic, got {other:?}"),
            }
            drop(guard);
        });
        // Disarmed, the same run succeeds and matches the baseline.
        let after = try_run(&g, &Hashmin, v, &cfg).expect("healthy after disarm");
        assert_eq!(after.values, baseline.values);
    }

    #[test]
    fn injected_panic_then_resume_completes_the_run() {
        let _held = lock();
        let g = fixture("fixture_a.txt");
        let v = Version { combiner: CombinerKind::Mutex, selection_bypass: false };
        let cfg = RunConfig { threads: Some(4), ..RunConfig::default() };
        let baseline = try_run(&g, &Hashmin, v, &cfg).expect("baseline");
        let dir = tempdir("chaos-panic-resume");
        silencing_panics(|| {
            let _guard = arm(vec![Trigger::at(CHUNK_PANIC, 2)]);
            // The checkpoint for superstep 2 is written at the barrier
            // *before* the superstep's chunks run, so the crash loses
            // no checkpointed state.
            match run_with_checkpoints(&g, &Hashmin, v, &cfg, &CheckpointConfig::new(&dir, 1)) {
                Err(RunError::VertexPanic { superstep, .. }) => assert_eq!(superstep, 2),
                other => panic!("expected injected VertexPanic, got {other:?}"),
            }
        });
        let resumed =
            run_with_checkpoints(&g, &Hashmin, v, &cfg, &CheckpointConfig::new(&dir, 1).resuming())
                .expect("resume after crash");
        assert_eq!(resumed.values, baseline.values);
        assert_eq!(history(&resumed), history(&baseline));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_write_falls_back_to_the_previous_one() {
        let _held = lock();
        let g = fixture("fixture_a.txt");
        let v = Version { combiner: CombinerKind::Mutex, selection_bypass: false };
        let cfg = RunConfig { threads: Some(4), ..RunConfig::default() };
        let baseline = try_run(&g, &Hashmin, v, &cfg).expect("baseline");
        let dir = tempdir("chaos-torn");
        {
            let _guard = arm(vec![Trigger::at(CHECKPOINT_TRUNCATE, 2)]);
            // Checkpoints at supersteps 1 (intact) and 2 (half its bytes
            // under the final name — a torn write with no rename barrier).
            let cut_cfg = RunConfig { max_supersteps: Some(3), ..cfg.clone() };
            run_with_checkpoints(&g, &Hashmin, v, &cut_cfg, &CheckpointConfig::new(&dir, 1))
                .expect("interrupted run (the torn write itself is not an error)");
        }
        let resumed =
            run_with_checkpoints(&g, &Hashmin, v, &cfg, &CheckpointConfig::new(&dir, 1).resuming())
                .expect("resume past the torn file");
        assert_eq!(resumed.values, baseline.values);
        assert_eq!(history(&resumed), history(&baseline));
        // Restored history has zeroed durations; re-executed supersteps
        // measure real time. Superstep 1 re-ran, so the fallback landed
        // on the superstep-1 checkpoint, not the torn superstep-2 one.
        assert!(resumed.stats.supersteps[0].duration.is_zero());
        assert!(!resumed.stats.supersteps[1].duration.is_zero());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_graphd_reads_retry_and_are_priced() {
        let _held = lock();
        let g = cycle(6);
        let expected = try_run_sequential(&g, &Hashmin, &RunConfig::default()).expect("oracle");
        let path = std::env::temp_dir()
            .join(format!("ipregel-fault-{}-ooc-retry.edges", std::process::id()));
        let ooc = graphd_sim::OocGraph::from_graph(&g, &path).expect("spill");
        let out = {
            let _guard = arm(vec![Trigger::times(GRAPHD_READ, 2)]);
            graphd_sim::run_ooc(&ooc, &Hashmin, &RunConfig::default(), &graphd_sim::DiskModel::default())
                .expect("run succeeds within the retry budget")
        };
        // Both injected failures hit the first read, which then
        // succeeded on its third attempt; the disk model saw the extra
        // seeks.
        assert_eq!(out.io[0].retries, 2);
        assert_eq!(out.io.iter().map(|t| t.retries).sum::<u64>(), 2);
        assert_eq!(out.output.values, expected.values);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn exhausted_graphd_retries_surface_the_error() {
        let _held = lock();
        let g = cycle(6);
        let path = std::env::temp_dir()
            .join(format!("ipregel-fault-{}-ooc-fail.edges", std::process::id()));
        let ooc = graphd_sim::OocGraph::from_graph(&g, &path).expect("spill");
        let _guard = arm(vec![Trigger::times(GRAPHD_READ, 64)]);
        let r = graphd_sim::run_ooc(
            &ooc,
            &Hashmin,
            &RunConfig::default(),
            &graphd_sim::DiskModel::default(),
        );
        match r {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::Interrupted),
            Ok(_) => panic!("expected the read to fail after exhausting retries"),
        }
        let _ = fs::remove_file(&path);
    }
}
