//! Determinism guarantees across runs, thread counts, and engines.
//!
//! For programs with idempotent/commutative combiners and deterministic
//! compute (everything in `ipregel-apps`), results must be bit-identical
//! regardless of scheduling. PageRank's floating-point sums are the one
//! nuance: within one configuration runs are identical (the combine tree
//! per mailbox is the only reorder point and it is value-stable for
//! min/max/or; for f64 sums the pull engine gathers in fixed CSR order),
//! and across configurations they agree to tight tolerance.

use ipregel::{run, run_sequential, CombinerKind, RunConfig, Version};
use ipregel_apps::reference;
use ipregel_apps::{Hashmin, MaxValue, PageRank, Sssp};
use ipregel_graph::generators::analogs::WIKIPEDIA;
use ipregel_graph::{GraphBuilder, NeighborMode};

fn test_graph() -> ipregel_graph::Graph {
    WIKIPEDIA.analog_graph(5000, 99, NeighborMode::Both)
}

#[test]
fn repeated_runs_are_bit_identical() {
    let g = test_graph();
    for v in Version::paper_versions() {
        let a = run(&g, &Sssp { source: 2 }, v, &RunConfig::default());
        let b = run(&g, &Sssp { source: 2 }, v, &RunConfig::default());
        assert_eq!(a.values, b.values, "{}", v.label());
        assert_eq!(
            a.stats.supersteps.iter().map(|s| (s.active, s.messages_sent)).collect::<Vec<_>>(),
            b.stats.supersteps.iter().map(|s| (s.active, s.messages_sent)).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn thread_count_is_invisible_in_results() {
    let g = test_graph();
    let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let one = run(&g, &Hashmin, v, &RunConfig { threads: Some(1), ..RunConfig::default() });
    for t in [2, 3, 8] {
        let out = run(&g, &Hashmin, v, &RunConfig { threads: Some(t), ..RunConfig::default() });
        assert_eq!(out.values, one.values, "threads {t}");
    }
}

#[test]
fn grain_setting_is_invisible_in_results() {
    let g = test_graph();
    let v = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
    let base = run(&g, &MaxValue, v, &RunConfig::default());
    for grain in [1usize, 128, 100_000] {
        let out = run(&g, &MaxValue, v, &RunConfig { grain: Some(grain), ..RunConfig::default() });
        assert_eq!(out.values, base.values, "grain {grain}");
    }
}

#[test]
fn sequential_oracle_agrees_with_every_parallel_version() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 0..300u32 {
        b.add_edge(i, (i * 17 + 5) % 300);
        b.add_edge(i, (i * 31 + 11) % 300);
    }
    let g = b.build().unwrap();
    let seq = run_sequential(&g, &Sssp { source: 0 }, &RunConfig::default());
    for v in Version::paper_versions() {
        let par = run(&g, &Sssp { source: 0 }, v, &RunConfig::default());
        assert_eq!(par.values, seq.values, "{}", v.label());
        assert_eq!(par.stats.total_messages(), seq.stats.total_messages());
    }
}

#[test]
fn pagerank_is_run_to_run_identical_and_cross_engine_tight() {
    let g = test_graph();
    let pr = PageRank { rounds: 10, damping: 0.85 };
    let pull = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
    let a = run(&g, &pr, pull, &RunConfig { threads: Some(4), ..RunConfig::default() });
    let b = run(&g, &pr, pull, &RunConfig { threads: Some(2), ..RunConfig::default() });
    // The pull engine gathers in CSR order: bit-identical regardless of
    // threads.
    assert_eq!(a.values, b.values);
    // Push engines combine in arrival order; agreement is to tolerance.
    let push = run(
        &g,
        &pr,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    let diff = reference::max_rel_diff(&g, &a.values, &push.values);
    assert!(diff < 1e-12, "pull vs push diverged by {diff}");
}
