//! Trace/stats reconciliation (docs/INTERNALS.md, "Observability"):
//! with tracing armed, the JSONL event stream must agree *exactly* with
//! the `RunStats` the engine returns — same supersteps, same active
//! counts, same message counts, same chunk counts — for the paper's
//! three figure applications, on every version × schedule. The trace is
//! not a second opinion computed differently; it is the same facts
//! observed through a second channel, so any disagreement is a bug in
//! one of them.
//!
//! Requires `--features trace` (the whole file is compiled out
//! otherwise — recording is a no-op without the feature, so there would
//! be nothing to reconcile).
#![cfg(feature = "trace")]

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ipregel::trace::{decode_trace, encode_trace, TraceEvent, Tracer};
use ipregel::{
    run, run_packed, run_sequential, CombinerKind, RunConfig, RunStats, Schedule, Version,
    VertexProgram,
};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::loaders::load_edge_list;
use ipregel_graph::{Graph, NeighborMode};

/// Mirrors `tests/golden.rs`.
const ROUNDS: usize = 20;
const DAMPING: f64 = 0.85;
const SSSP_SOURCE: u32 = 2;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn fixture(name: &str) -> Graph {
    let path = fixture_path(name);
    let file = File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    load_edge_list(BufReader::new(file), NeighborMode::Both).expect("fixture parses")
}

fn traced_cfg(schedule: Schedule) -> (RunConfig, Arc<Tracer>) {
    let tracer = Arc::new(Tracer::new());
    let cfg = RunConfig {
        threads: Some(4),
        schedule,
        trace: Some(tracer.clone()),
        ..RunConfig::default()
    };
    (cfg, tracer)
}

/// Structural invariants every trace must satisfy, plus the exact
/// reconciliation against `RunStats`.
fn check(stats: &RunStats, events: &[TraceEvent], label: &str) {
    assert!(
        matches!(events.first(), Some(TraceEvent::RunBegin { .. })),
        "{label}: trace must open with run_begin, got {:?}",
        events.first()
    );
    match events.last() {
        Some(&TraceEvent::RunEnd { supersteps, messages, .. }) => {
            assert_eq!(supersteps, stats.num_supersteps() as u64, "{label}: run_end supersteps");
            assert_eq!(messages, stats.total_messages(), "{label}: run_end messages");
        }
        other => panic!("{label}: trace must close with run_end, got {other:?}"),
    }
    stats.reconcile_trace(events).unwrap_or_else(|e| panic!("{label}: {e}"));

    // Per superstep: `superstep_begin, chunk* (ascending), …,
    // superstep_end`, with the chunk events mirroring the load plan.
    let mut current: Option<u64> = None;
    let mut chunk_indices: Vec<u64> = Vec::new();
    let mut planned: Vec<u64> = Vec::new();
    for e in events {
        match *e {
            TraceEvent::SuperstepBegin { superstep } => {
                assert_eq!(current, None, "{label}: nested superstep {superstep}");
                current = Some(superstep);
                chunk_indices.clear();
                planned.clear();
            }
            TraceEvent::Chunk { superstep, chunk, planned_edges, .. } => {
                assert_eq!(Some(superstep), current, "{label}: chunk outside its superstep span");
                chunk_indices.push(chunk);
                planned.push(planned_edges);
            }
            TraceEvent::SuperstepEnd { superstep, chunks, .. } => {
                assert_eq!(Some(superstep), current, "{label}: unmatched superstep_end");
                assert_eq!(
                    chunk_indices.len() as u64, chunks,
                    "{label}: superstep {superstep}: chunk events vs chunks field"
                );
                assert!(
                    chunk_indices.windows(2).all(|w| w[0] < w[1]),
                    "{label}: superstep {superstep}: chunk events not in ascending order: {chunk_indices:?}"
                );
                let entry = stats
                    .supersteps
                    .iter()
                    .find(|s| s.superstep as u64 == superstep)
                    .unwrap_or_else(|| panic!("{label}: trace superstep {superstep} not in stats"));
                if let Some(load) = &entry.load {
                    if !chunk_indices.is_empty() {
                        let expect: Vec<u64> = load.chunk_edges.clone();
                        assert_eq!(
                            planned, expect,
                            "{label}: superstep {superstep}: planned chunk weights"
                        );
                    }
                }
                current = None;
            }
            _ => {}
        }
    }
    assert_eq!(current, None, "{label}: trace ends inside a superstep span");
}

fn reconcile_parallel<P: VertexProgram>(g: &Graph, p: &P, versions: &[Version], app: &str) {
    for schedule in Schedule::all() {
        for &v in versions {
            let (cfg, tracer) = traced_cfg(schedule);
            let out = run(g, p, v, &cfg);
            let events = tracer.take_events();
            assert_eq!(tracer.dropped_events(), 0, "fixture runs fit the shard bound");
            check(&out.stats, &events, &format!("{app} / {} / {schedule}", v.label()));
        }
    }
}

#[test]
fn hashmin_trace_reconciles_on_every_version_and_schedule() {
    let g = fixture("fixture_a.txt");
    reconcile_parallel(&g, &Hashmin, &Version::paper_versions(), "hashmin");
}

#[test]
fn sssp_trace_reconciles_on_every_version_and_schedule() {
    let g = fixture("fixture_b.txt");
    reconcile_parallel(&g, &Sssp { source: SSSP_SOURCE }, &Version::paper_versions(), "sssp");
}

#[test]
fn pagerank_trace_reconciles_on_scan_versions() {
    // Bypass is unsound for PageRank; the three scan-selection
    // combiners are the valid matrix (as in tests/golden.rs).
    let g = fixture("fixture_a.txt");
    let versions: Vec<Version> = [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast]
        .into_iter()
        .map(|combiner| Version { combiner, selection_bypass: false })
        .collect();
    reconcile_parallel(&g, &PageRank { rounds: ROUNDS, damping: DAMPING }, &versions, "pagerank");
}

#[test]
fn lockfree_packed_trace_reconciles() {
    let g = fixture("fixture_b.txt");
    let v = Version { combiner: CombinerKind::LockFree, selection_bypass: true };
    for schedule in Schedule::all() {
        let (cfg, tracer) = traced_cfg(schedule);
        let out = run_packed(&g, &Sssp { source: SSSP_SOURCE }, v, &cfg);
        let events = tracer.take_events();
        check(&out.stats, &events, &format!("lock-free / {schedule}"));
    }
}

#[test]
fn sequential_trace_reconciles() {
    let g = fixture("fixture_a.txt");
    let tracer = Arc::new(Tracer::new());
    let cfg = RunConfig { trace: Some(tracer.clone()), ..RunConfig::default() };
    let out = run_sequential(&g, &Hashmin, &cfg);
    let events = tracer.take_events();
    check(&out.stats, &events, "seq/hashmin");
    // The oracle runs one implicit chunk per superstep.
    for e in &events {
        if let TraceEvent::SuperstepEnd { chunks, .. } = e {
            assert_eq!(*chunks, 1);
        }
    }
}

/// The selection-bypass drain is the one sparse path where activity is
/// decided by a concurrent worklist rather than a scan; the trace pins
/// its accounting. `queued` counts raw (duplicate-including) pushes,
/// `drained` the deduplicated active list — so queued ≥ drained always,
/// and `drained` must equal the active count the next superstep
/// reports, because the drained list *is* what runs.
#[test]
fn worklist_drains_match_superstep_activity() {
    let g = fixture("fixture_b.txt");
    let program = Sssp { source: SSSP_SOURCE };
    for schedule in Schedule::all() {
        for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
            let v = Version { combiner, selection_bypass: true };
            let label = format!("{} / {schedule}", v.label());
            let (cfg, tracer) = traced_cfg(schedule);
            let out = run(&g, &program, v, &cfg);
            let events = tracer.take_events();
            check(&out.stats, &events, &label);
            let drains: Vec<(u64, u64, u64)> = events
                .iter()
                .filter_map(|e| match *e {
                    TraceEvent::WorklistDrain { superstep, queued, drained } => {
                        Some((superstep, queued, drained))
                    }
                    _ => None,
                })
                .collect();
            assert!(!drains.is_empty(), "{label}: bypass runs must drain worklists");
            let mut matched = 0usize;
            for (superstep, queued, drained) in drains {
                assert!(
                    queued >= drained,
                    "{label}: superstep {superstep}: drained {drained} exceeds queued {queued}"
                );
                let end_active = events.iter().find_map(|e| match *e {
                    TraceEvent::SuperstepEnd { superstep: s, active, .. } if s == superstep => {
                        Some(active)
                    }
                    _ => None,
                });
                match end_active {
                    Some(active) => {
                        assert_eq!(
                            drained, active,
                            "{label}: superstep {superstep}: drained list vs active count"
                        );
                        matched += 1;
                    }
                    // A drain that comes up empty ends the run: no
                    // further superstep exists to match it against.
                    None => assert_eq!(
                        drained, 0,
                        "{label}: superstep {superstep} drained work but never ran"
                    ),
                }
            }
            assert!(matched > 0, "{label}: no drain matched a superstep");
        }
    }
}

/// A traced run's file round-trips: encode → decode reproduces the
/// event list, end to end through the real engine output (the codec
/// unit tests cover arbitrary values; this covers the integration).
#[test]
fn engine_traces_round_trip_through_the_codec() {
    let g = fixture("fixture_a.txt");
    let (cfg, tracer) = traced_cfg(Schedule::default());
    let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };
    let _ = run(&g, &Hashmin, v, &cfg);
    let events = tracer.take_events();
    assert!(!events.is_empty());
    assert_eq!(decode_trace(&encode_trace(&events)).unwrap(), events);
}
