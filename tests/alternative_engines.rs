//! Cross-architecture integration: the naive shared-memory baseline and
//! the out-of-core engine agree with the optimised engines and the
//! sequential references on the paper's analog graphs, and the
//! memory-fit machinery recovers sensible coefficients from real runs.

use femtograph_sim::run_naive;
use graphd_sim::{run_ooc, DiskModel, OocGraph};
use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::reference;
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_graph::generators::analogs::{TWITTER_MPI, USA_ROADS, WIKIPEDIA};
use ipregel_graph::NeighborMode;
use ipregel_mem::{fit_affine, MeasuredPoint};

const DIV: u64 = 4000;

fn spill_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ipregel-alt-{}-{tag}.edges", std::process::id()))
}

#[test]
fn all_four_architectures_agree_on_sssp() {
    let g = USA_ROADS.analog_graph(DIV, 3, NeighborMode::Both);
    let expected = reference::bfs_levels(&g, 2);
    let shared = run(
        &g,
        &Sssp { source: 2 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    assert_eq!(shared.values, expected);

    let naive = run_naive(&g, &Sssp { source: 2 }, &RunConfig::default());
    assert_eq!(naive.values, expected);

    let ooc = OocGraph::from_graph(&g, spill_path("sssp")).unwrap();
    let ooc_out = run_ooc(&ooc, &Sssp { source: 2 }, &RunConfig::default(), &DiskModel::default())
        .unwrap();
    assert_eq!(ooc_out.output.values, expected);

    let sim = pregelplus_sim::simulate(
        &g,
        &Sssp { source: 2 },
        &pregelplus_sim::ClusterSpec::m4_large(3),
        &pregelplus_sim::CostModel::default(),
        &pregelplus_sim::MemoryModel::pregel_plus(4),
        Some(100_000),
    );
    assert_eq!(sim.values, expected);
}

#[test]
fn hashmin_matches_across_naive_and_ooc_on_wiki_analog() {
    let g = WIKIPEDIA.analog_graph(DIV, 4, NeighborMode::Both);
    let expected = reference::minlabel_fixpoint(&g);
    let naive = run_naive(&g, &Hashmin, &RunConfig::default());
    assert_eq!(naive.values, expected);
    let ooc = OocGraph::from_graph(&g, spill_path("hashmin")).unwrap();
    let out = run_ooc(&ooc, &Hashmin, &RunConfig::default(), &DiskModel::default()).unwrap();
    assert_eq!(out.output.values, expected);
}

#[test]
fn ooc_disk_traffic_scales_with_supersteps_not_ram() {
    // PageRank re-reads the whole edge file every superstep: the defining
    // out-of-core cost.
    let g = WIKIPEDIA.analog_graph(DIV, 4, NeighborMode::Both);
    let ooc = OocGraph::from_graph(&g, spill_path("traffic")).unwrap();
    let rounds = 4usize;
    let out = run_ooc(
        &ooc,
        &PageRank { rounds, damping: 0.85 },
        &RunConfig::default(),
        &DiskModel::default(),
    )
    .unwrap();
    // rounds+1 supersteps, each streaming the full file (all active).
    assert_eq!(out.total_bytes_read(), ooc.spilled_bytes() * (rounds as u64 + 1));
    assert!(ooc.resident_bytes() < ooc.spilled_bytes() as usize);
}

#[test]
fn measured_footprints_fit_affine_coefficients() {
    // Run the spinlock engine over a size sweep and fit bytes = aV+bE+c;
    // the per-edge coefficient must come out near the CSR's real cost
    // (4 B targets + 8 B offsets amortised ≈ edges dominate at 4–12 B).
    let mut points = Vec::new();
    for pct in [20u32, 40, 60, 80, 100] {
        let g = TWITTER_MPI.percent_analog(pct, 40_000, 7, NeighborMode::OutOnly);
        let out = run(
            &g,
            &Sssp { source: g.address_map().base() },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        points.push(MeasuredPoint {
            vertices: g.num_vertices() as u64,
            edges: g.num_edges(),
            footprint: out.footprint,
        });
    }
    let fit = fit_affine(&points);
    assert!(fit.max_rel_residual < 0.02, "not affine: {fit:?}");
    assert!(fit.per_edge > 2.0 && fit.per_edge < 16.0, "per-edge {:.1}", fit.per_edge);
    assert!(fit.per_vertex > 10.0, "per-vertex {:.1}", fit.per_vertex);
}
