//! Loader-to-engine integration: parse the paper's file formats, run
//! applications on the result, verify against references.

use std::io::Cursor;

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::reference;
use ipregel_apps::{Hashmin, WeightedSssp};
use ipregel_graph::loaders::{load_dimacs_gr, load_edge_list, load_konect, read_binary, write_binary};
use ipregel_graph::NeighborMode;

#[test]
fn dimacs_road_file_to_weighted_shortest_paths() {
    // A DIMACS .gr fixture shaped like the USA road collection: 1-based
    // ids, symmetric weighted arcs.
    let gr = "\
c tiny road network
p sp 6 14
a 1 2 3
a 2 1 3
a 2 3 4
a 3 2 4
a 3 4 5
a 4 3 5
a 4 5 6
a 5 4 6
a 5 6 7
a 6 5 7
a 1 6 40
a 6 1 40
a 2 5 9
a 5 2 9
";
    let g = load_dimacs_gr(Cursor::new(gr), NeighborMode::OutOnly).unwrap();
    assert_eq!(g.num_vertices(), 6);
    let expected = reference::dijkstra(&g, 1);
    let out = run(
        &g,
        &WeightedSssp { source: 1 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    assert_eq!(out.values, expected);
    // 1 → 6 shortest is 3+9+7 = 19 via 2 and 5, not the direct 40.
    assert_eq!(*out.value_of(6), 19);
}

#[test]
fn konect_file_to_components() {
    let tsv = "\
% sym unweighted
1 2
2 3
3 1
4 5
";
    // KONECT's undirected datasets list each edge once; symmetrise by
    // loading as Both and running on a program insensitive to direction
    // duplicates — here, make edges explicit both ways first.
    let g = load_konect(Cursor::new(tsv), NeighborMode::Both).unwrap();
    let out = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Broadcast, selection_bypass: true },
        &RunConfig::default(),
    );
    let expected = reference::minlabel_fixpoint(&g);
    assert_eq!(out.values[1..], expected[1..]); // slot 0 is desolate
}

#[test]
fn edge_list_to_engine_roundtrip() {
    let txt = "# snap-like\n0 1\n1 2\n2 0\n3 4\n";
    let g = load_edge_list(Cursor::new(txt), NeighborMode::Both).unwrap();
    let out = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Mutex, selection_bypass: false },
        &RunConfig::default(),
    );
    assert_eq!(*out.value_of(2), 0);
    assert_eq!(*out.value_of(4), 3);
}

#[test]
fn binary_cache_preserves_engine_results() {
    let edges: Vec<(u32, u32)> = (0..50).map(|i| (i, (i * 3 + 1) % 50)).collect();
    let mut file = Vec::new();
    write_binary(&mut file, 0, 50, &edges, None).unwrap();
    let g1 = read_binary(&file[..], NeighborMode::Both).unwrap();

    let mut b = ipregel_graph::GraphBuilder::new(NeighborMode::Both).declare_id_range(0, 50);
    for &(u, v) in &edges {
        b.add_edge(u, v);
    }
    let g2 = b.build().unwrap();

    let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let o1 = run(&g1, &Hashmin, v, &RunConfig::default());
    let o2 = run(&g2, &Hashmin, v, &RunConfig::default());
    assert_eq!(o1.values, o2.values);
}
