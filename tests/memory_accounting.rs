//! The engines' byte accounting against hand-computed expectations —
//! the precision that lets Figure 9 use accounting instead of RSS.

use ipregel::{run, CombinerKind, Mailbox, MutexMailbox, RunConfig, SpinMailbox, Version};
use ipregel_apps::{Hashmin, Sssp};
use ipregel_graph::{GraphBuilder, NeighborMode};

/// 10 vertices in a ring, ids 0..10, both directions retained.
fn ring10() -> ipregel_graph::Graph {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 0..10u32 {
        b.add_edge(i, (i + 1) % 10);
    }
    b.build().unwrap()
}

#[test]
fn graph_bytes_match_csr_arithmetic() {
    let g = ring10();
    // Two CSRs (out + in): each has 11 u64 offsets + 10 u32 targets.
    let expected = 2 * (11 * 8 + 10 * 4);
    assert_eq!(g.bytes(), expected);

    let out = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    assert_eq!(out.footprint.graph_bytes, expected);
}

#[test]
fn push_engine_bytes_decompose_exactly() {
    let g = ring10();
    let slots = 10;
    let out = run(
        &g,
        &Sssp { source: 0 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    // Values: u32 per slot.
    assert_eq!(out.footprint.values_bytes, slots * 4);
    // Flags: one bool per slot.
    assert_eq!(out.footprint.flags_bytes, slots);
    // Locks: two buffers × slots × spinlock size (1 byte).
    let lock = <SpinMailbox<u32> as Mailbox<u32>>::lock_bytes();
    assert_eq!(out.footprint.lock_bytes, 2 * slots * lock);
    // Mailboxes: two buffers × slots × (struct minus lock share).
    let mb = std::mem::size_of::<SpinMailbox<u32>>() - lock;
    assert_eq!(out.footprint.mailbox_bytes, 2 * slots * mb);
    // No worklists without the bypass.
    assert_eq!(out.footprint.worklist_bytes, 0);
}

#[test]
fn mutex_locks_dominate_spinlock_locks() {
    let g = ring10();
    let mutex = run(
        &g,
        &Sssp { source: 0 },
        Version { combiner: CombinerKind::Mutex, selection_bypass: false },
        &RunConfig::default(),
    );
    let spin = run(
        &g,
        &Sssp { source: 0 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    let mutex_lock = <MutexMailbox<u32> as Mailbox<u32>>::lock_bytes();
    let spin_lock = <SpinMailbox<u32> as Mailbox<u32>>::lock_bytes();
    assert_eq!(mutex.footprint.lock_bytes, 2 * 10 * mutex_lock);
    assert_eq!(spin.footprint.lock_bytes, 2 * 10 * spin_lock);
    // The §6.1 direction: blocking locks cost strictly more bytes.
    assert!(mutex.footprint.lock_bytes > spin.footprint.lock_bytes);
    // And everything else is identical between the two versions.
    assert_eq!(mutex.footprint.values_bytes, spin.footprint.values_bytes);
    assert_eq!(mutex.footprint.graph_bytes, spin.footprint.graph_bytes);
    assert_eq!(mutex.footprint.flags_bytes, spin.footprint.flags_bytes);
}

#[test]
fn pull_engine_has_zero_lock_bytes_and_outbox_buffers() {
    let g = ring10();
    let out = run(
        &g,
        &Hashmin,
        Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
        &RunConfig::default(),
    );
    assert_eq!(out.footprint.lock_bytes, 0, "§6.2: race-free design");
    // Outboxes: 2 × slots × Option<u32> (8 bytes), plus the writer lists.
    let per_slot = 2 * 10 * std::mem::size_of::<Option<u32>>();
    assert!(out.footprint.mailbox_bytes >= per_slot);
}

#[test]
fn desolate_memory_slots_are_counted() {
    // 1-based ring: one desolate slot inflates every per-slot array.
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 1..=10u32 {
        b.add_edge(i, i % 10 + 1);
    }
    let g = b.build().unwrap();
    assert_eq!(g.num_slots(), 11);
    let out = run(
        &g,
        &Sssp { source: 1 },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    assert_eq!(out.footprint.values_bytes, 11 * 4);
    assert_eq!(out.footprint.flags_bytes, 11);
}

#[test]
fn bypass_worklist_bytes_appear_and_scale_with_slots() {
    let small = ring10();
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 0..1000u32 {
        b.add_edge(i, (i + 1) % 1000);
    }
    let big = b.build().unwrap();
    let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let small_out = run(&small, &Sssp { source: 0 }, v, &RunConfig::default());
    let big_out = run(&big, &Sssp { source: 0 }, v, &RunConfig::default());
    assert!(small_out.footprint.worklist_bytes > 0);
    assert!(big_out.footprint.worklist_bytes > small_out.footprint.worklist_bytes);
}

#[test]
fn overhead_equals_sum_of_parts() {
    let g = ring10();
    for v in Version::paper_versions() {
        let out = run(&g, &Hashmin, v, &RunConfig::default());
        let f = &out.footprint;
        assert_eq!(
            f.overhead_bytes(),
            f.values_bytes + f.mailbox_bytes + f.lock_bytes + f.flags_bytes + f.worklist_bytes,
            "{}",
            v.label()
        );
        assert_eq!(f.total_bytes(), f.graph_bytes + f.overhead_bytes());
    }
}
