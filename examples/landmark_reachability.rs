//! Landmark reachability: answer "can A reach B?" queries fast by
//! precomputing reachability from 64 landmark vertices in ONE
//! vertex-centric run — the bitmask-message extension application.
//!
//! ```text
//! cargo run --example landmark_reachability --release
//! ```

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::MultiSourceReachability;
use ipregel_graph::generators::rmat::{rmat_edges, RmatParams};
use ipregel_graph::{GraphBuilder, NeighborMode};

fn main() {
    // A directed web-like graph.
    let n = 30_000u32;
    let mut b =
        GraphBuilder::with_capacity(NeighborMode::Both, 150_000).declare_id_range(0, n);
    for (u, v) in rmat_edges(n, 150_000, RmatParams::GRAPH500, 2024) {
        b.add_edge(u, v);
    }
    let graph = b.build().expect("generated graph builds");

    // Pick 64 landmarks spread across the id space.
    let landmarks: Vec<u32> = (0..64u32).map(|i| i * (n / 64)).collect();
    let query = MultiSourceReachability::new(landmarks.clone());

    let version = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let out = run(&graph, &query, version, &RunConfig::default());

    println!(
        "Reachability from {} landmarks over |V|={}, |E|={}: {} supersteps, {} messages",
        landmarks.len(),
        graph.num_vertices(),
        graph.num_edges(),
        out.stats.num_supersteps(),
        out.stats.total_messages()
    );

    // Coverage: how many vertices each landmark reaches.
    let mut coverage = vec![0u64; landmarks.len()];
    for (_, &mask) in out.iter() {
        for (i, c) in coverage.iter_mut().enumerate() {
            *c += mask >> i & 1;
        }
    }
    let best = coverage.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
    println!("  best landmark: vertex {} reaches {} vertices", landmarks[best.0], best.1);
    let reached_by_any = out.iter().filter(|(_, &m)| m != 0).count();
    println!("  vertices reached by ≥1 landmark: {reached_by_any}");

    // Answer a few instant queries from the precomputed masks.
    for target in [1u32, n / 2, n - 1] {
        let mask = *out.value_of(target);
        let hits = mask.count_ones();
        println!("  vertex {target}: reachable from {hits} of {} landmarks", landmarks.len());
    }
}
