//! Road navigation: weighted single-source shortest paths on a synthetic
//! road network — the paper's USA-roads scenario at example scale.
//!
//! Demonstrates the configuration Section 7.2 crowns for SSSP: the
//! busy-waiting spinlock combiner with the selection bypass, which on
//! sparse high-diameter graphs beats every other version by orders of
//! magnitude (Figure 7 reports ×1400 on the USA graph).
//!
//! ```text
//! cargo run --example road_navigation --release
//! ```

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::sssp::{WeightedSssp, INFINITY};
use ipregel_graph::generators::grid::grid_road_edges;
use ipregel_graph::{GraphBuilder, NeighborMode};

fn main() {
    // A 120×120 road grid with DIMACS-style integer distances.
    let (rows, cols) = (120u32, 120u32);
    let mut builder = GraphBuilder::new(NeighborMode::OutOnly);
    for (a, b, w) in grid_road_edges(rows, cols, 2.44, 1000, 42) {
        builder.add_weighted_edge(a, b, w);
    }
    let graph = builder.build().expect("grid always builds");

    let source = 0u32; // top-left corner
    let version = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let out = run(&graph, &WeightedSssp { source }, version, &RunConfig::default());

    println!(
        "Weighted SSSP over a {rows}x{cols} road grid (|V|={}, |E|={}):",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "  {} supersteps, {} relaxation messages, {:?} superstep time",
        out.stats.num_supersteps(),
        out.stats.total_messages(),
        out.stats.total_time
    );

    // Distances to a few landmarks across the map.
    for (name, r, c) in [
        ("next door", 0u32, 1u32),
        ("midtown", rows / 2, cols / 2),
        ("far corner", rows - 1, cols - 1),
    ] {
        let id = r * cols + c;
        let d = *out.value_of(id);
        if d == INFINITY {
            println!("  {name:>10} (vertex {id}): unreachable");
        } else {
            println!("  {name:>10} (vertex {id}): distance {d}");
        }
    }

    // The bell-shaped frontier the paper describes for SSSP
    // (Section 7.1.4): a few active vertices, growing then shrinking.
    let peak = out.stats.peak_active();
    let first = out.stats.supersteps.first().map_or(0, |s| s.active);
    let last = out.stats.supersteps.last().map_or(0, |s| s.active);
    println!("  active-vertices profile: starts {first}, peaks {peak}, ends {last}");
}
