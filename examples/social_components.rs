//! Social-network analysis: connected components of a scale-free graph
//! with Hashmin, plus a component-size histogram — the paper's
//! Wikipedia-style workload at example scale.
//!
//! ```text
//! cargo run --example social_components --release
//! ```

use std::collections::HashMap;

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::Hashmin;
use ipregel_graph::generators::rmat::{rmat_edges, RmatParams};
use ipregel_graph::{GraphBuilder, NeighborMode};

fn main() {
    // A scale-free friendship graph; friendships are mutual, so each
    // generated edge is added in both directions.
    let n = 50_000u32;
    let mut builder = GraphBuilder::with_capacity(NeighborMode::Both, 400_000);
    for (u, v) in rmat_edges(n, 200_000, RmatParams::GRAPH500, 7) {
        builder.add_edge(u, v);
        builder.add_edge(v, u);
    }
    let graph = builder.build().expect("generated graph always builds");

    // Hashmin halts every superstep → selection bypass applies; the
    // spinlock push combiner is the paper's Figure 7 winner for it.
    let version = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    let out = run(&graph, &Hashmin, version, &RunConfig::default());

    let mut component_sizes: HashMap<u32, u64> = HashMap::new();
    for (_, &label) in out.iter() {
        *component_sizes.entry(label).or_default() += 1;
    }
    let mut sizes: Vec<u64> = component_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));

    println!(
        "Hashmin over |V|={}, |E|={}: {} supersteps, {} messages",
        graph.num_vertices(),
        graph.num_edges(),
        out.stats.num_supersteps(),
        out.stats.total_messages()
    );
    println!("  components: {}", sizes.len());
    println!("  giant component: {} vertices ({:.1}%)",
        sizes[0],
        sizes[0] as f64 * 100.0 / graph.num_vertices() as f64);
    let singletons = sizes.iter().filter(|&&s| s == 1).count();
    println!("  singletons: {singletons}");

    // The decreasing active-vertex evolution of Section 7.1.4.
    let profile: Vec<u64> = out.stats.supersteps.iter().map(|s| s.active).collect();
    println!("  active vertices per superstep: {profile:?}");
}
