//! Community cores: peel a social network to its k-cores and report how
//! the graph shrinks as k grows — the reactivation-heavy extension
//! application (vertices halt every superstep and wake on notification).
//!
//! ```text
//! cargo run --example kcore_decomposition --release
//! ```

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::KCore;
use ipregel_graph::generators::erdos_renyi::erdos_renyi_edges;
use ipregel_graph::transform::symmetrize;
use ipregel_graph::{GraphBuilder, NeighborMode};

fn main() {
    // A random friendship graph (mutual edges, Poisson degrees): its
    // k-cores shrink gradually, unlike preferential-attachment graphs
    // whose degeneracy makes cores collapse all at once.
    let n = 20_000u32;
    let mut edges = erdos_renyi_edges(n, 80_000, 11);
    symmetrize(&mut edges);
    let mut b =
        GraphBuilder::with_capacity(NeighborMode::Both, edges.len()).declare_id_range(0, n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    let graph = b.build().expect("generated graph builds");

    println!(
        "k-core decomposition of |V|={}, |E|={} (avg degree {:.1}):",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_edges() as f64 / graph.num_vertices() as f64
    );
    println!("  {:>3} {:>10} {:>12} {:>10}", "k", "core size", "supersteps", "messages");

    let version = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
    for k in [2u32, 3, 4, 5, 6, 7, 8, 10] {
        let out = run(&graph, &KCore { k }, version, &RunConfig::default());
        let alive = out.iter().filter(|(_, s)| s.alive).count();
        println!(
            "  {:>3} {:>10} {:>12} {:>10}",
            k,
            alive,
            out.stats.num_supersteps(),
            out.stats.total_messages()
        );
        if alive == 0 {
            println!("  (graph fully peeled at k = {k})");
            break;
        }
    }
}
