//! Quickstart: build a small graph, run PageRank on the pull-combiner
//! engine, and print the most important pages.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::PageRank;
use ipregel_graph::{GraphBuilder, NeighborMode};

fn main() {
    // A toy citation web: page 0 is referenced by everyone, pages 1–3
    // form a clique, page 4 only links out.
    let mut builder = GraphBuilder::new(NeighborMode::Both);
    for (from, to) in [
        (1, 0),
        (2, 0),
        (3, 0),
        (4, 0),
        (1, 2),
        (2, 3),
        (3, 1),
        (4, 1),
        (0, 1),
    ] {
        builder.add_edge(from, to);
    }
    let graph = builder.build().expect("static toy graph always builds");

    // PageRank communicates only by neighbour broadcast, so the paper's
    // race-free pull combiner ("Broadcast" in Figure 7) is the best fit.
    let version = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
    let program = PageRank { rounds: 30, damping: 0.85 };
    let out = run(&graph, &program, version, &RunConfig::default());

    let mut ranked: Vec<(u32, f64)> = out.iter().map(|(id, &r)| (id, r)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("PageRank over {} vertices, {} supersteps, {} messages:",
        graph.num_vertices(),
        out.stats.num_supersteps(),
        out.stats.total_messages());
    for (id, rank) in ranked {
        println!("  page {id}: {rank:.4}");
    }
    println!(
        "framework memory: {} bytes total, {} bytes data-race protection (pull = 0)",
        out.footprint.total_bytes(),
        out.footprint.lock_bytes
    );
}
