//! Out-of-core processing: spill a graph's edges to disk once, reopen
//! the spill, and run PageRank streaming edges from the file — the §2
//! architecture for graphs whose edges do not fit in RAM.
//!
//! ```text
//! cargo run --example out_of_core --release
//! ```

use graphd_sim::{run_ooc, DiskModel, OocGraph};
use ipregel::RunConfig;
use ipregel_apps::PageRank;
use ipregel_graph::generators::rmat::{rmat_edges, RmatParams};
use ipregel_graph::{GraphBuilder, NeighborMode};

fn main() -> std::io::Result<()> {
    let spill = std::env::temp_dir().join("ipregel-example-spill.edges");

    // Phase 1: build once, spill, persist.
    {
        let n = 100_000u32;
        let mut b =
            GraphBuilder::with_capacity(NeighborMode::OutOnly, 1_000_000).declare_id_range(0, n);
        for (u, v) in rmat_edges(n, 1_000_000, RmatParams::GRAPH500, 7) {
            b.add_edge(u, v);
        }
        let graph = b.build().expect("generated graph builds");
        let mut ooc = OocGraph::from_graph(&graph, &spill)?;
        ooc.persist()?;
        println!(
            "spilled |V|={}, |E|={}: {} on disk, {} resident (offsets only)",
            ooc.num_vertices(),
            ooc.num_edges(),
            ooc.spilled_bytes(),
            ooc.resident_bytes()
        );
        // `graph` (with its in-RAM edges) drops here; only the file remains.
    }

    // Phase 2: reopen the spill — no in-memory CSR is ever rebuilt.
    let ooc = OocGraph::open(&spill)?;
    let out = run_ooc(
        &ooc,
        &PageRank { rounds: 10, damping: 0.85 },
        &RunConfig::default(),
        &DiskModel::default(),
    )?;

    println!(
        "PageRank x10: {} supersteps, streamed {} from disk ({} seeks), \
         modelled total {:.3}s ({:.3}s of it disk)",
        out.output.stats.num_supersteps(),
        out.total_bytes_read(),
        out.io.iter().map(|t| t.seeks).sum::<u64>(),
        out.modelled_total_seconds,
        out.disk_seconds
    );
    let mut top: Vec<(u32, f64)> = out.output.iter().map(|(id, &r)| (id, r)).collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top pages:");
    for (id, r) in top.into_iter().take(5) {
        println!("  {id}\t{r:.6}");
    }

    std::fs::remove_file(&spill).ok();
    std::fs::remove_file(spill.with_extension("meta")).ok();
    Ok(())
}
