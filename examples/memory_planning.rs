//! Capacity planning with the memory models: how big a graph fits in the
//! RAM you have, and what each design decision of Section 6 buys you.
//!
//! Reproduces the paper's headline memory arithmetic at full Twitter
//! scale, then answers the practical question Figure 9 poses: what is
//! *your* machine's breaking point?
//!
//! ```text
//! cargo run --example memory_planning --release
//! ```

use ipregel::{CombinerKind, Version};
use ipregel_graph::generators::analogs::{TWITTER_MPI, WIKIPEDIA};
use ipregel_mem::{
    breaking_point_percent, lock_protection_bytes, LayoutModel, LockKind, RssModel, GB,
};

fn main() {
    let model = RssModel::default();

    println!("== What fits? (pull-combiner PageRank, Twitter-shaped graphs) ==");
    for ram_gb in [4.0f64, 8.0, 16.0, 32.0] {
        match breaking_point_percent(&model, TWITTER_MPI.vertices, TWITTER_MPI.edges, ram_gb * GB)
        {
            Some(pct) => {
                let v = TWITTER_MPI.vertices as f64 * f64::from(pct) / 100.0;
                let e = TWITTER_MPI.edges as f64 * f64::from(pct) / 100.0;
                println!(
                    "  {ram_gb:>4} GB -> {pct:>3}% of Twitter ({:.0}M vertices, {:.2}B edges)",
                    v / 1e6,
                    e / 1e9
                );
            }
            None => println!("  {ram_gb:>4} GB -> not even 1%"),
        }
    }
    println!("  (the paper's Figure 9: 70% under 8 GB, 100% needs 11.01 GB)");

    println!("\n== What the spinlock buys (Section 6.1), Wikipedia scale ==");
    let v = WIKIPEDIA.vertices;
    println!(
        "  mutex locks    : {:.0} MB",
        lock_protection_bytes(LockKind::Mutex, v) as f64 / 1e6
    );
    println!(
        "  spinlock locks : {:.0} MB  (90% saved)",
        lock_protection_bytes(LockKind::Spinlock, v) as f64 / 1e6
    );

    println!("\n== What the pull combiner buys (Section 6.2), per version ==");
    let layout = LayoutModel::pagerank();
    for version in [
        Version { combiner: CombinerKind::Mutex, selection_bypass: false },
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
        Version { combiner: CombinerKind::Broadcast, selection_bypass: true },
    ] {
        let f = layout.footprint(version, WIKIPEDIA.vertices, WIKIPEDIA.edges);
        println!(
            "  {:<34} {:>6.2} GB (locks {:>4.0} MB, worklists {:>4.0} MB)",
            version.label(),
            f.total() as f64 / GB,
            f.lock_bytes as f64 / 1e6,
            f.worklist_bytes as f64 / 1e6
        );
    }
    println!("  (paper, measured: mutex 2 GB; spinlock & broadcast 1.5 GB; broadcast+bypass 2.5 GB)");
}
