//! Umbrella crate for the iPregel reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! the cross-crate integration tests in `tests/` have a single
//! dependency. Library users should depend on the individual crates:
//!
//! * [`ipregel`] — the framework (engines, mailboxes, selection);
//! * [`ipregel_graph`] — CSR graphs, addressing, loaders, generators;
//! * [`ipregel_apps`] — PageRank, Hashmin, SSSP, BFS + references;
//! * [`pregelplus_sim`] — the distributed-memory baseline simulator;
//! * [`femtograph_sim`] — the naive shared-memory baseline (the
//!   comparison the paper's Section 7.3 wanted but could not run);
//! * [`graphd_sim`] — a GraphD-like out-of-core engine (the third
//!   architecture of the paper's Section 2 map);
//! * [`ipregel_mem`] — memory-footprint models and projections.

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

pub use femtograph_sim;
pub use graphd_sim;
pub use ipregel;
pub use ipregel_apps;
pub use ipregel_graph;
pub use ipregel_mem;
pub use pregelplus_sim;
