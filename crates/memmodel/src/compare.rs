//! Fitting measured footprints against the analytic models.
//!
//! Figure 9's argument rests on memory being affine in graph size; this
//! module makes that check first-class. Given measured
//! [`FootprintReport`]s over a family of graphs, [`fit_affine`] recovers
//! per-vertex and per-edge byte coefficients by least squares, and
//! [`FitReport`] compares them with what a [`crate::LayoutModel`] predicts —
//! closing the loop between the engines' exact accounting and the
//! paper-scale projections.

use ipregel::FootprintReport;

/// One measured point: a graph size and the engine's byte accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of directed edges.
    pub edges: u64,
    /// The engine's report for a run on this graph.
    pub footprint: FootprintReport,
}

ipregel::impl_to_json!(MeasuredPoint { vertices, edges, footprint });

/// Affine fit `bytes ≈ per_vertex·V + per_edge·E + base`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Fitted bytes per vertex.
    pub per_vertex: f64,
    /// Fitted bytes per edge.
    pub per_edge: f64,
    /// Fitted constant term.
    pub base: f64,
    /// Maximum relative residual of any point under the fit.
    pub max_rel_residual: f64,
}

ipregel::impl_to_json!(FitReport { per_vertex, per_edge, base, max_rel_residual });

/// Least-squares fit of total bytes against (V, E, 1).
///
/// # Panics
/// With fewer than 3 points (the system is 3-parameter), or if the
/// points are degenerate (e.g. all the same size).
pub fn fit_affine(points: &[MeasuredPoint]) -> FitReport {
    assert!(points.len() >= 3, "affine fit needs at least 3 points");
    // Normal equations for X = [V E 1], y = bytes. 3×3 solve by Cramer.
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for p in points {
        let row = [p.vertices as f64, p.edges as f64, 1.0];
        let y = p.footprint.total_bytes() as f64;
        for i in 0..3 {
            for j in 0..3 {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * y;
        }
    }
    let det3 = |m: &[[f64; 3]; 3]| {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det3(&xtx);
    assert!(d.abs() > 1e-6, "degenerate point set: vary the graph sizes");
    let mut solution = [0.0f64; 3];
    for (k, s) in solution.iter_mut().enumerate() {
        let mut m = xtx;
        for i in 0..3 {
            m[i][k] = xty[i];
        }
        *s = det3(&m) / d;
    }
    let [per_vertex, per_edge, base] = solution;
    let max_rel_residual = points
        .iter()
        .map(|p| {
            let fit = per_vertex * p.vertices as f64 + per_edge * p.edges as f64 + base;
            let y = p.footprint.total_bytes() as f64;
            (y - fit).abs() / y.abs().max(1e-300)
        })
        .fold(0.0, f64::max);
    FitReport { per_vertex, per_edge, base, max_rel_residual }
}

impl FitReport {
    /// Extrapolate the fit to a paper-scale graph.
    pub fn project(&self, vertices: u64, edges: u64) -> f64 {
        self.per_vertex * vertices as f64 + self.per_edge * edges as f64 + self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(v: u64, e: u64, per_v: usize, per_e: usize) -> MeasuredPoint {
        MeasuredPoint {
            vertices: v,
            edges: e,
            footprint: FootprintReport {
                graph_bytes: e as usize * per_e,
                values_bytes: v as usize * per_v,
                mailbox_bytes: 0,
                lock_bytes: 0,
                flags_bytes: 1000, // constant base
                worklist_bytes: 0,
            },
        }
    }

    #[test]
    fn recovers_exact_affine_coefficients() {
        let pts: Vec<MeasuredPoint> = [(1000u64, 5000u64), (2000, 9000), (4000, 20000), (8000, 31000)]
            .iter()
            .map(|&(v, e)| synthetic(v, e, 24, 4))
            .collect();
        let fit = fit_affine(&pts);
        assert!((fit.per_vertex - 24.0).abs() < 1e-6, "{fit:?}");
        assert!((fit.per_edge - 4.0).abs() < 1e-6);
        assert!((fit.base - 1000.0).abs() < 1e-3);
        assert!(fit.max_rel_residual < 1e-12);
    }

    #[test]
    fn projection_extends_the_line() {
        let pts: Vec<MeasuredPoint> =
            [(100u64, 900u64), (200, 2100), (300, 2700)].iter().map(|&(v, e)| synthetic(v, e, 10, 8)).collect();
        let fit = fit_affine(&pts);
        let projected = fit.project(1_000_000, 10_000_000);
        assert!((projected - (10e6 + 80e6 + 1000.0)).abs() / projected < 1e-6);
    }

    #[test]
    fn flags_nonaffine_data() {
        // Quadratic growth must show as a residual.
        let pts: Vec<MeasuredPoint> = (1..=6u64)
            .map(|i| {
                let v = i * 1000;
                MeasuredPoint {
                    vertices: v,
                    edges: i * 700 + i % 3, // linear (+ jitter against collinearity)
                    footprint: FootprintReport {
                        graph_bytes: (v * v / 1000) as usize,
                        ..FootprintReport::default()
                    },
                }
            })
            .collect();
        let fit = fit_affine(&pts);
        assert!(fit.max_rel_residual > 0.01, "{fit:?}");
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        fit_affine(&[synthetic(1, 1, 1, 1), synthetic(2, 2, 1, 1)]);
    }
}
