//! Structural model of the C iPregel vertex layout, per version.
//!
//! Section 3.2: vertices are plain structs whose members depend on the
//! selected module versions and compile flags — value, out-neighbour
//! count (PageRank needs it everywhere), adjacency pointer+count per
//! retained direction, combiner state (lock + single-message mailbox for
//! push; outbox for pull), and bypass worklist entries. Edges cost 4
//! bytes each per retained direction ("edges ... are typically just
//! integers", Section 7.4.1).
//!
//! The model reproduces the Section 7.4.1 measurements: on Wikipedia the
//! mutex versions took ≈ 2 GB, the spinlock and broadcast versions
//! ≈ 1.5 GB, and the broadcast version grew to ≈ 2.5 GB with the bypass
//! because the bypass needs out-neighbour information on top of the
//! pull combiner's in-neighbours.

use ipregel::{CombinerKind, Version};

/// Application-dependent sizes feeding the layout model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutModel {
    /// Bytes of the user's vertex value (8 for PageRank's double, 4 for
    /// Hashmin/SSSP distances).
    pub value_bytes: usize,
    /// Bytes of one message (combiners keep at most one per mailbox).
    pub message_bytes: usize,
}

ipregel::impl_to_json!(LayoutModel { value_bytes, message_bytes });

/// The modelled footprint of one iPregel version on one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionFootprint {
    /// Bytes of per-vertex structs.
    pub vertex_bytes: u64,
    /// Bytes of adjacency arrays (4 B/edge per retained direction).
    pub edge_bytes: u64,
    /// Of `vertex_bytes`: the data-race protection share (locks).
    pub lock_bytes: u64,
    /// Of `vertex_bytes`: selection-bypass worklist share.
    pub worklist_bytes: u64,
}

ipregel::impl_to_json!(VersionFootprint { vertex_bytes, edge_bytes, lock_bytes, worklist_bytes });

impl VersionFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.vertex_bytes + self.edge_bytes
    }
}

impl LayoutModel {
    /// PageRank sizes (8-byte double value and message).
    pub fn pagerank() -> Self {
        LayoutModel { value_bytes: 8, message_bytes: 8 }
    }

    /// Hashmin/SSSP sizes (4-byte distance/label).
    pub fn distance_label() -> Self {
        LayoutModel { value_bytes: 4, message_bytes: 4 }
    }

    /// Whether a version stores the out-adjacency list.
    fn needs_out_list(version: Version) -> bool {
        match version.combiner {
            CombinerKind::Broadcast => version.selection_bypass,
            _ => true, // push engines send along out-edges
        }
    }

    /// Whether a version stores the in-adjacency list.
    fn needs_in_list(version: Version) -> bool {
        version.combiner == CombinerKind::Broadcast
    }

    /// Model the footprint of `version` on a graph with `vertices` and
    /// `edges` (paper scale or any other).
    pub fn footprint(&self, version: Version, vertices: u64, edges: u64) -> VersionFootprint {
        // 64-bit pointers and 4-byte counts, as Section 6.2's footnote
        // assumes.
        let mut per_vertex = self.value_bytes + 4; // value + out-neighbour count
        if Self::needs_out_list(version) {
            per_vertex += 8; // out-neighbour pointer
        }
        if Self::needs_in_list(version) {
            per_vertex += 8 + 4; // in-neighbour pointer + count
        }
        let lock_per_vertex = match version.combiner {
            CombinerKind::Mutex => 40,
            CombinerKind::Spinlock => 4,
            CombinerKind::Broadcast => 0,
            CombinerKind::LockFree => 0,
        };
        // Single-message mailbox (push) or outbox (pull) + occupancy flag.
        per_vertex += lock_per_vertex + self.message_bytes + 1;
        let worklist_per_vertex = if version.selection_bypass { 8 } else { 0 };
        per_vertex += worklist_per_vertex;

        let directions =
            u64::from(Self::needs_out_list(version)) + u64::from(Self::needs_in_list(version));
        VersionFootprint {
            vertex_bytes: vertices * per_vertex as u64,
            edge_bytes: edges * 4 * directions,
            lock_bytes: vertices * lock_per_vertex as u64,
            worklist_bytes: vertices * worklist_per_vertex as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB;

    const WIKI: (u64, u64) = (18_268_992, 172_183_984);

    fn v(combiner: CombinerKind, bypass: bool) -> Version {
        Version { combiner, selection_bypass: bypass }
    }

    #[test]
    fn wikipedia_mutex_is_about_2_gb() {
        // Section 7.4.1: "both mutex versions ... took 2GB of memory".
        let f = LayoutModel::pagerank().footprint(v(CombinerKind::Mutex, false), WIKI.0, WIKI.1);
        let gb = f.total() as f64 / GB;
        assert!((gb - 2.0).abs() < 0.35, "mutex model {gb:.2} GB");
    }

    #[test]
    fn wikipedia_spinlock_is_about_1_5_gb() {
        // Section 7.4.1: "their spinlock counterparts needed 1.5GB".
        let f = LayoutModel::pagerank().footprint(v(CombinerKind::Spinlock, false), WIKI.0, WIKI.1);
        let gb = f.total() as f64 / GB;
        assert!((gb - 1.5).abs() < 0.35, "spinlock model {gb:.2} GB");
    }

    #[test]
    fn broadcast_bypass_jumps_by_the_out_adjacency() {
        // Section 7.4.1: bypass grew the broadcast version from 1.5 GB to
        // 2.5 GB — "due to the out-neighbours information ... on top of
        // the in-neighbours information".
        let m = LayoutModel::pagerank();
        let plain = m.footprint(v(CombinerKind::Broadcast, false), WIKI.0, WIKI.1);
        let bypass = m.footprint(v(CombinerKind::Broadcast, true), WIKI.0, WIKI.1);
        let plain_gb = plain.total() as f64 / GB;
        let bypass_gb = bypass.total() as f64 / GB;
        assert!((plain_gb - 1.5).abs() < 0.4, "broadcast model {plain_gb:.2} GB");
        let jump = bypass_gb - plain_gb;
        assert!((0.7..=1.2).contains(&jump), "bypass jump {jump:.2} GB, paper ≈ 1.0");
        // And the dominant share of the jump is edges, not the worklist.
        assert!(bypass.edge_bytes > plain.edge_bytes);
    }

    #[test]
    fn spinlock_saves_90_percent_of_lock_bytes() {
        let m = LayoutModel::distance_label();
        let mutex = m.footprint(v(CombinerKind::Mutex, false), WIKI.0, WIKI.1);
        let spin = m.footprint(v(CombinerKind::Spinlock, false), WIKI.0, WIKI.1);
        assert_eq!(spin.lock_bytes * 10, mutex.lock_bytes);
    }

    #[test]
    fn broadcast_has_zero_lock_bytes() {
        let f = LayoutModel::pagerank().footprint(v(CombinerKind::Broadcast, false), WIKI.0, WIKI.1);
        assert_eq!(f.lock_bytes, 0);
    }

    #[test]
    fn usa_graph_is_vertex_dominated() {
        // Section 7.4.1: moving Wikipedia → USA, "the 100M fewer edges do
        // not compensate for the 5M additional vertices" — vertex bytes
        // grow while edge bytes shrink.
        let m = LayoutModel::pagerank();
        let wiki = m.footprint(v(CombinerKind::Spinlock, false), WIKI.0, WIKI.1);
        let usa = m.footprint(v(CombinerKind::Spinlock, false), 23_947_347, 58_333_344);
        assert!(usa.vertex_bytes > wiki.vertex_bytes);
        assert!(usa.edge_bytes < wiki.edge_bytes);
    }
}
