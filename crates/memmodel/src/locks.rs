//! Section 6.1's lock-size arithmetic.
//!
//! "The former \[mutex\] weights 40 bytes while the latter \[spinlock\] is
//! only 4; which is a reduction of 90%. Since there is one lock per inbox
//! and one inbox per vertex, this memory gain is to be multiplied by the
//! total number of vertices." The quoted consequences — 730 MB → 73 MB on
//! Wikipedia, 958 MB → 96 MB on USA — are pinned by the tests below.

/// A push-combiner lock flavour and its per-instance size in the paper's
/// gcc toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `pthread_mutex_t`: 40 bytes.
    Mutex,
    /// GNU99 spinlock: 4 bytes.
    Spinlock,
}

impl LockKind {
    /// Bytes per lock.
    pub fn bytes(&self) -> usize {
        match self {
            LockKind::Mutex => 40,
            LockKind::Spinlock => 4,
        }
    }
}

/// Total data-race-protection bytes for a graph of `vertices` vertices
/// (one lock per inbox, one inbox per vertex).
pub fn lock_protection_bytes(kind: LockKind, vertices: u64) -> u64 {
    vertices * kind.bytes() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MB;

    const WIKI_V: u64 = 18_268_992;
    const USA_V: u64 = 23_947_347;

    #[test]
    fn spinlock_is_a_90_percent_reduction() {
        let m = LockKind::Mutex.bytes() as f64;
        let s = LockKind::Spinlock.bytes() as f64;
        assert_eq!((1.0 - s / m) * 100.0, 90.0);
    }

    #[test]
    fn wikipedia_locks_shrink_730_to_73_mb() {
        // Section 6.1: "from 730 ... megabytes to 73 ... megabytes".
        let mutex = lock_protection_bytes(LockKind::Mutex, WIKI_V) as f64 / MB;
        let spin = lock_protection_bytes(LockKind::Spinlock, WIKI_V) as f64 / MB;
        assert!((mutex - 730.0).abs() < 2.0, "mutex {mutex:.1} MB");
        assert!((spin - 73.0).abs() < 0.2, "spinlock {spin:.1} MB");
    }

    #[test]
    fn usa_locks_shrink_958_to_96_mb() {
        // Section 6.1: "and 958 ... to ... 96 megabytes".
        let mutex = lock_protection_bytes(LockKind::Mutex, USA_V) as f64 / MB;
        let spin = lock_protection_bytes(LockKind::Spinlock, USA_V) as f64 / MB;
        assert!((mutex - 958.0).abs() < 2.0, "mutex {mutex:.1} MB");
        assert!((spin - 96.0).abs() < 0.3, "spinlock {spin:.1} MB");
    }
}
