//! The Figure 9 max-RSS model, breaking-point search, and the
//! Section 7.4.3 projections.
//!
//! Figure 9's method: run PageRank (the broadcast version) on synthetic
//! graphs proportional to Twitter, measure max resident set size, observe
//! linear growth, locate the out-of-memory breaking point under 8 GB, and
//! project the 100% requirement (11.01 GB, verified on a 16 GB machine).
//!
//! The model here is `rss(V, E) = 4·(V + E)  +  c_vertex·V  +  base`:
//! the first term is the paper's own "graph binary size" definition
//! (4-byte ids, vertices store their identifier and their
//! out-neighbours'), the second is iPregel's per-vertex framework
//! overhead under the pull-combiner PageRank layout plus allocator
//! slack, and `base` is the process image. `c_vertex = 52` is the single
//! calibrated constant; with it the model reproduces, simultaneously:
//!
//! * 11.0 GB for 100% Twitter   (paper: 11.01 GB);
//! * a 70% breaking point under 8 GB (paper: 70%);
//! * 14.4 GB for Friendster     (paper: 14.45 GB);
//! * an ≈ 8 GB graph-binary share for Twitter (paper: 8 GB).


use crate::GB;

/// The calibrated RSS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssModel {
    /// Per-vertex framework overhead, bytes (calibrated: 52).
    pub per_vertex: f64,
    /// Process/base footprint, bytes.
    pub base: f64,
}

ipregel::impl_to_json!(RssModel { per_vertex, base });

impl Default for RssModel {
    fn default() -> Self {
        RssModel { per_vertex: 52.0, base: 0.25 * GB }
    }
}

impl RssModel {
    /// The paper's graph-binary-size definition (Section 7.4.2): 4-byte
    /// identifiers for each vertex and each out-neighbour entry.
    pub fn graph_binary_bytes(vertices: u64, edges: u64) -> f64 {
        4.0 * (vertices as f64 + edges as f64)
    }

    /// Modelled max RSS of pull-combiner PageRank on a (V, E) graph.
    pub fn rss_bytes(&self, vertices: u64, edges: u64) -> f64 {
        Self::graph_binary_bytes(vertices, edges) + self.per_vertex * vertices as f64 + self.base
    }

    /// Modelled RSS of the `pct`% synthetic analog of a (V, E) dataset.
    pub fn rss_at_percent(&self, vertices: u64, edges: u64, pct: u32) -> f64 {
        let f = f64::from(pct) / 100.0;
        self.rss_bytes((vertices as f64 * f) as u64, (edges as f64 * f) as u64)
    }

    /// Framework overhead excluding the graph itself (Section 7.4.3
    /// separates "the 8GB allocated to the graph itself" from the "3GB
    /// ... due to its overhead").
    pub fn overhead_bytes(&self, vertices: u64) -> f64 {
        self.per_vertex * vertices as f64 + self.base
    }
}

/// Largest percentage (1..=100) of the (V, E) dataset whose modelled RSS
/// fits in `ram_bytes`; `None` if even 1% does not fit.
pub fn breaking_point_percent(
    model: &RssModel,
    vertices: u64,
    edges: u64,
    ram_bytes: f64,
) -> Option<u32> {
    (1..=100).rev().find(|&pct| model.rss_at_percent(vertices, edges, pct) <= ram_bytes)
}

/// The *measured* counterpart of the model: current resident set size
/// of this process in bytes, read from `/proc/self/status` (`VmRSS`).
/// `None` off Linux or if the field is missing. Plain `fn` shape so it
/// plugs straight into `ipregel::trace::Tracer::set_rss_sampler` — the
/// tracer takes periodic samples at superstep barriers, turning Figure
/// 9's offline model into a live per-run series.
pub fn current_rss_bytes() -> Option<u64> {
    if cfg!(not(target_os = "linux")) {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    // Format: "VmRSS:    123456 kB".
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Least-squares linearity check over measured `(scale_percent, bytes)`
/// points: returns the maximum relative deviation of any point from the
/// fitted line. Small values justify Figure 9's linear projection.
pub fn validate_linear(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    points
        .iter()
        .map(|&(x, y)| {
            let fit = slope * x + intercept;
            (y - fit).abs() / y.abs().max(1e-300)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWITTER: (u64, u64) = (52_579_682, 1_963_263_821);
    const FRIENDSTER: (u64, u64) = (68_349_466, 2_586_147_869);

    #[test]
    fn twitter_binary_size_is_about_8_gb() {
        // Section 7.4.2: "The binary size of the Twitter graph is
        // calculated to 8GB".
        let gb = RssModel::graph_binary_bytes(TWITTER.0, TWITTER.1) / GB;
        assert!((gb - 8.0).abs() < 0.1, "binary size {gb:.2} GB");
    }

    #[test]
    fn full_twitter_needs_about_11_gb() {
        // Section 7.4.3: "iPregel needs 11.01GB to run PageRank on the
        // complete graph".
        let gb = RssModel::default().rss_bytes(TWITTER.0, TWITTER.1) / GB;
        assert!((gb - 11.01).abs() < 0.35, "model {gb:.2} GB");
    }

    #[test]
    fn breaking_point_is_about_70_percent_under_8_gb() {
        // Section 7.4.2: "up to 70% of the Twitter graph can be processed
        // before memory failure occurs".
        let bp = breaking_point_percent(&RssModel::default(), TWITTER.0, TWITTER.1, 8.0 * GB).unwrap();
        assert!((68..=72).contains(&bp), "breaking point {bp}%");
    }

    #[test]
    fn seventy_percent_twitter_matches_the_37m_1_4b_claim() {
        // Section 7.4.2: 70% ⇒ "37 million vertices and 1.4 billion
        // edges under 8GB".
        let v = (TWITTER.0 as f64 * 0.7 / 1e6).round();
        let e = TWITTER.1 as f64 * 0.7 / 1e9;
        assert_eq!(v, 37.0);
        assert!((e - 1.4).abs() < 0.05);
    }

    #[test]
    fn friendster_fits_under_16_gb() {
        // Section 7.4.3: "14.45GB of memory" for Friendster — a
        // multi-billion-edge graph under 16 GB.
        let gb = RssModel::default().rss_bytes(FRIENDSTER.0, FRIENDSTER.1) / GB;
        assert!((gb - 14.45).abs() < 0.4, "model {gb:.2} GB");
        assert!(gb < 16.0);
    }

    #[test]
    fn overhead_is_about_3_gb_on_twitter() {
        // Section 7.4.3: "out of the 11GB taken by iPregel, 3GB are due
        // to its overhead".
        let gb = RssModel::default().overhead_bytes(TWITTER.0) / GB;
        assert!((gb - 3.0).abs() < 0.35, "overhead {gb:.2} GB");
    }

    #[test]
    fn projection_ratios_match_section_7_4_3() {
        // iPregel 10× smaller than Pregel+ (109 GB), 25× than Giraph
        // (264 GB); overhead 33× / 85× smaller.
        let ipregel = RssModel::default().rss_bytes(TWITTER.0, TWITTER.1) / GB;
        assert!((109.0 / ipregel - 10.0).abs() < 1.0);
        assert!((264.0 / ipregel - 24.0).abs() < 2.0);
        let overhead = RssModel::default().overhead_bytes(TWITTER.0) / GB;
        assert!((101.0 / overhead - 33.0).abs() < 4.0);
        assert!((256.0 / overhead - 85.0).abs() < 9.0);
    }

    #[test]
    fn model_is_linear_in_scale() {
        let m = RssModel::default();
        let pts: Vec<(f64, f64)> =
            (1..=10).map(|i| (i as f64 * 10.0, m.rss_at_percent(TWITTER.0, TWITTER.1, i * 10))).collect();
        assert!(validate_linear(&pts) < 1e-6);
    }

    #[test]
    fn validate_linear_flags_nonlinearity() {
        let pts = vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0), (4.0, 16.0)];
        assert!(validate_linear(&pts) > 0.05);
    }

    #[test]
    fn breaking_point_none_when_nothing_fits() {
        assert_eq!(breaking_point_percent(&RssModel::default(), TWITTER.0, TWITTER.1, 1.0), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn current_rss_reads_a_plausible_value() {
        let rss = current_rss_bytes().expect("VmRSS should exist on Linux");
        // A running test process occupies at least a few hundred kB and
        // (sanity bound) less than a terabyte.
        assert!(rss > 100 * 1024, "rss {rss}");
        assert!(rss < 1 << 40, "rss {rss}");
    }
}
