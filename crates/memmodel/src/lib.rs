//! # ipregel-mem — memory-footprint accounting and projection
//!
//! Section 7.4 of the paper studies memory three ways, and this crate
//! reproduces each:
//!
//! * [`locks`] — the Section 6.1 arithmetic: a 40-byte mutex vs a 4-byte
//!   spinlock per vertex turns 730/958 MB of data-race protection into
//!   73/96 MB on the Wikipedia/USA graphs.
//! * [`layout`] — a structural model of the C iPregel vertex layout per
//!   version (value, adjacency pointers, combiner state, worklists),
//!   reproducing the measurements of Section 7.4.1 (mutex ≈ 2 GB vs
//!   spinlock ≈ 1.5 GB on Wikipedia; the broadcast version jumping from
//!   1.5 GB to 2.5 GB when the bypass adds out-neighbour storage).
//! * [`rss`] — the calibrated max-RSS model behind Figure 9 and the
//!   Section 7.4.2–7.4.3 projections: linear growth over synthetic
//!   Twitter scales, the 70% breaking point under 8 GB, 11.01 GB at
//!   100%, 14.45 GB for Friendster, and the 10×/25× comparison against
//!   Pregel+ (109 GB) and Giraph (264 GB).
//!
//! Alongside the models, [`rss::validate_linear`] checks measured
//! [`ipregel::FootprintReport`]s from real runs for the linearity that
//! justifies the paper's extrapolation.

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

pub mod compare;
pub mod layout;
pub mod locks;
pub mod rss;

pub use compare::{fit_affine, FitReport, MeasuredPoint};
pub use layout::{LayoutModel, VersionFootprint};
pub use locks::{lock_protection_bytes, LockKind};
pub use rss::{breaking_point_percent, current_rss_bytes, RssModel};

/// Decimal gigabytes, as the paper reports ("11.01GB", "109GB").
pub const GB: f64 = 1e9;

/// Decimal megabytes.
pub const MB: f64 = 1e6;
