//! The simulated wall-clock cost model.
//!
//! Pregel+'s per-superstep time on a real cluster decomposes into
//! compute (scan + vertex programs + message handling on each worker,
//! workers of a node running in parallel on its cores) and communication
//! (remote bytes over a shared 450 Mbit/s NIC, plus per-superstep
//! synchronisation latency). The simulator reconstructs that sum from
//! the execution trace.
//!
//! The per-operation constants below are the calibration knobs of the
//! substitution documented in DESIGN.md. Their defaults are chosen to be
//! physically plausible for a C++ framework that routes every message
//! through serialisation buffers and a vertex-location hashmap *on the
//! machine the harness runs on* (sized against this host's measured
//! per-operation throughput), and they land the *single-node*
//! iPregel-vs-Pregel+ gap in the paper's measured 3.5–7× band;
//! everything that varies with node count (local/remote split,
//! bandwidth, barriers, partition balance) is computed, not calibrated.


use crate::cluster::ClusterSpec;

/// Per-operation costs, in seconds (defaults in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Scanning one vertex in the selection loop (Pregel+ checks every
    /// vertex's active flag and inbox each superstep — Section 4).
    pub scan_per_vertex: f64,
    /// Running one active vertex's `compute` (excluding messages).
    pub compute_per_vertex: f64,
    /// Handling one outgoing message at the sender: combiner lookup in the
    /// per-destination buffer, serialisation, 4-byte id wrapping.
    pub send_per_message: f64,
    /// Handling one incoming message at the receiver: deserialisation,
    /// vertex-location lookup, inbox append/combine.
    pub recv_per_message: f64,
    /// Effective network throughput per node, bytes/second. m4.large's
    /// line rate is 450 Mbit/s ≈ 56 MB/s per direction; Pregel+ overlaps
    /// communication with computation and drives both directions, so the
    /// effective figure used for wall-clock is higher (default 150 MB/s,
    /// calibrated so the simulated multi-node curve keeps the paper's
    /// balance between compute and network terms).
    pub bandwidth_bytes_per_sec: f64,
    /// Per-superstep synchronisation cost per participating node pair
    /// hop: MPI barrier + collective bookkeeping. Charged once per
    /// superstep as `latency * ceil(log2(nodes) + 1)`.
    pub barrier_latency: f64,
    /// Payload wrapping overhead per remote message, bytes (the recipient
    /// vertex id Pregel+ attaches — Section 7.4.4).
    pub wrap_bytes_per_message: usize,
}

ipregel::impl_to_json!(CostModel { scan_per_vertex, compute_per_vertex, send_per_message, recv_per_message, bandwidth_bytes_per_sec, barrier_latency, wrap_bytes_per_message });

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_per_vertex: 1.5e-9,
            compute_per_vertex: 32e-9,
            send_per_message: 40e-9,
            recv_per_message: 25e-9,
            bandwidth_bytes_per_sec: 150e6,
            barrier_latency: 150e-6,
            wrap_bytes_per_message: 4,
        }
    }
}

/// Trace of one superstep on one worker, produced by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerTrace {
    /// Vertices this worker scanned (its whole partition).
    pub scanned: u64,
    /// Vertices this worker executed.
    pub executed: u64,
    /// Messages this worker emitted (pre-combining count is what costs
    /// CPU at the sender).
    pub sent: u64,
    /// Messages this worker received after sender-side combining.
    pub received: u64,
    /// Bytes this worker pushed to remote nodes (wrapped payloads,
    /// post-combining).
    pub remote_bytes_out: u64,
    /// Bytes this worker pulled from remote nodes.
    pub remote_bytes_in: u64,
}

impl CostModel {
    /// Simulated wall-clock of one superstep given every worker's trace.
    ///
    /// Workers of one node run on distinct cores (compute in parallel ⇒
    /// node compute time is the max over its workers); the node's NIC is
    /// shared (bytes of its workers sum); the superstep ends when the
    /// slowest node finishes compute + communication, plus the barrier.
    pub fn superstep_time(&self, cluster: &ClusterSpec, traces: &[WorkerTrace]) -> f64 {
        assert_eq!(traces.len(), cluster.num_workers());
        let mut node_time = vec![0.0f64; cluster.nodes];
        let mut node_bytes = vec![0.0f64; cluster.nodes];
        for (w, t) in traces.iter().enumerate() {
            let compute = self.scan_per_vertex * t.scanned as f64
                + self.compute_per_vertex * t.executed as f64
                + self.send_per_message * t.sent as f64
                + self.recv_per_message * t.received as f64;
            let node = cluster.node_of(w);
            node_time[node] = node_time[node].max(compute);
            // The NIC carries the larger direction (full duplex).
            node_bytes[node] += (t.remote_bytes_out.max(t.remote_bytes_in)) as f64;
        }
        let slowest = node_time
            .iter()
            .zip(&node_bytes)
            .map(|(&t, &b)| t + b / self.bandwidth_bytes_per_sec)
            .fold(0.0, f64::max);
        let barrier = if cluster.nodes > 1 {
            self.barrier_latency * ((cluster.nodes as f64).log2().ceil() + 1.0)
        } else {
            // Single node still pays a (small) local synchronisation.
            self.barrier_latency * 0.25
        };
        slowest + barrier
    }

    /// Bytes on the wire for one remote message with `payload` bytes.
    pub fn wire_bytes(&self, payload: usize) -> u64 {
        (payload + self.wrap_bytes_per_message) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(scanned: u64, executed: u64, sent: u64, received: u64, out: u64, inb: u64) -> WorkerTrace {
        WorkerTrace { scanned, executed, sent, received, remote_bytes_out: out, remote_bytes_in: inb }
    }

    #[test]
    fn single_node_has_no_network_term() {
        let cm = CostModel::default();
        let cluster = ClusterSpec::m4_large(1);
        let t = cm.superstep_time(&cluster, &[trace(100, 100, 0, 0, 0, 0), trace(100, 100, 0, 0, 0, 0)]);
        let compute = 100.0 * (cm.scan_per_vertex + cm.compute_per_vertex);
        assert!((t - compute - cm.barrier_latency * 0.25).abs() < 1e-12);
    }

    #[test]
    fn node_compute_is_max_over_its_workers() {
        let cm = CostModel::default();
        let cluster = ClusterSpec::m4_large(1);
        // Work large enough that the barrier term is negligible.
        let balanced = cm.superstep_time(
            &cluster,
            &[trace(0, 10_000_000, 0, 0, 0, 0), trace(0, 10_000_000, 0, 0, 0, 0)],
        );
        let skewed = cm.superstep_time(
            &cluster,
            &[trace(0, 20_000_000, 0, 0, 0, 0), trace(0, 0, 0, 0, 0, 0)],
        );
        // Same total work, but the skewed split takes twice as long —
        // the load-balancing effect Section 4 discusses.
        assert!(skewed > balanced * 1.9);
    }

    #[test]
    fn remote_bytes_slow_the_superstep() {
        let cm = CostModel::default();
        let cluster = ClusterSpec::m4_large(2);
        let quiet = cm.superstep_time(&cluster, &[WorkerTrace::default(); 4]);
        let mut traces = [WorkerTrace::default(); 4];
        traces[0].remote_bytes_out = 150_000_000; // one second of NIC time
        let busy = cm.superstep_time(&cluster, &traces);
        assert!((busy - quiet - 1.0).abs() < 1e-6);
    }

    #[test]
    fn barrier_grows_with_cluster_size() {
        let cm = CostModel::default();
        let t1 = cm.superstep_time(&ClusterSpec::m4_large(1), &[WorkerTrace::default(); 2]);
        let t16 = cm.superstep_time(&ClusterSpec::m4_large(16), &[WorkerTrace::default(); 32]);
        assert!(t16 > t1);
    }

    #[test]
    fn wire_bytes_include_wrapping() {
        let cm = CostModel::default();
        assert_eq!(cm.wire_bytes(8), 12);
        assert_eq!(cm.wire_bytes(4), 8);
    }
}
