//! # pregelplus-sim — executable simulator of the Pregel+ baseline
//!
//! The paper compares iPregel against Pregel+ [Yan et al., WWW'15], a
//! state-of-the-art **distributed** in-memory vertex-centric framework,
//! on 1–16 two-core EC2 nodes (Section 7.3). No MPI cluster exists in
//! this environment, so this crate substitutes an *executable simulator*:
//!
//! * the computation is **really executed** with Pregel+'s architecture —
//!   hash-partitioned workers, per-destination-worker send buffers,
//!   sender-side combining, a message-exchange phase, receiver-side
//!   combining — so results are bit-comparable with iPregel's;
//! * wall-clock is **modelled** from the execution trace with a
//!   calibrated cost model ([`CostModel`]): per-vertex and per-message
//!   CPU costs, 4-byte recipient-id message wrapping, finite network
//!   bandwidth (450 Mbit/s, the paper's EC2 figure) and per-superstep
//!   synchronisation latency;
//! * per-node memory is modelled from the same trace ([`memory`]),
//!   including the overheads Section 7.4.4 attributes to distributed
//!   designs (send/receive buffers, wrapped messages, redundant runtime
//!   instances, the vertex-location layer, C++ virtual-table pointers),
//!   so insufficient-memory failures appear at low node counts exactly
//!   as in Figure 8.
//!
//! The crate also implements the paper's extrapolation rule (footnote 8)
//! and lead-change computation in [`extrapolate`].

pub mod cluster;
pub mod cost;
pub mod engine;
pub mod extrapolate;
pub mod memory;

pub use cluster::ClusterSpec;
pub use cost::CostModel;
pub use engine::{simulate, simulate_full, simulate_partitioned, PartitionStrategy, SimOutput, SimSuperstep};
pub use extrapolate::{extrapolate_series, lead_change, NodesPoint};
pub use memory::MemoryModel;
