//! The paper's extrapolation and lead-change arithmetic (Section 7.3).
//!
//! Figure 8 measures Pregel+ on 1–16 nodes. When the lead change (the
//! node count at which Pregel+ first beats iPregel) falls outside that
//! interval, footnote 8 extrapolates "by assuming the efficiency between
//! 8 and 16 nodes to stay constant every time the number of nodes is
//! doubled"; the same rule runs backward to estimate runtimes for node
//! counts where Pregel+ ran out of memory.


/// One point of a runtime-vs-nodes series. `seconds == None` marks an
/// insufficient-memory failure (the shaded region of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodesPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Measured (or extrapolated) runtime; `None` if the run failed for
    /// memory.
    pub seconds: Option<f64>,
    /// Whether this value came from extrapolation rather than simulation.
    pub extrapolated: bool,
}

ipregel::impl_to_json!(NodesPoint { nodes, seconds, extrapolated });

impl NodesPoint {
    /// A measured point.
    pub fn measured(nodes: usize, seconds: f64) -> Self {
        NodesPoint { nodes, seconds: Some(seconds), extrapolated: false }
    }

    /// A memory-failure point.
    pub fn failed(nodes: usize) -> Self {
        NodesPoint { nodes, seconds: None, extrapolated: false }
    }
}

/// Doubling ratio `t(2n)/t(n)` taken from the two largest successful
/// points of the series (the paper uses 8→16).
fn doubling_ratio(series: &[NodesPoint]) -> Option<f64> {
    let ok: Vec<&NodesPoint> = series.iter().filter(|p| p.seconds.is_some()).collect();
    for window in ok.windows(2).rev() {
        let (a, b) = (window[0], window[1]);
        if b.nodes == 2 * a.nodes {
            return Some(b.seconds.unwrap() / a.seconds.unwrap());
        }
    }
    None
}

/// Fill memory-failure points backward and extend the series forward to
/// `max_nodes` (by doublings), per footnote 8. Input points must be in
/// increasing node order at power-of-two counts.
pub fn extrapolate_series(series: &[NodesPoint], max_nodes: usize) -> Vec<NodesPoint> {
    let mut out: Vec<NodesPoint> = series.to_vec();
    let Some(ratio) = doubling_ratio(series) else {
        return out;
    };
    // Backward: walk from the first successful point down.
    if let Some(first_ok) = out.iter().position(|p| p.seconds.is_some()) {
        for i in (0..first_ok).rev() {
            let above = out[i + 1].seconds.expect("filled in order");
            out[i].seconds = Some(above / ratio);
            out[i].extrapolated = true;
        }
    }
    // Forward: keep doubling.
    if let Some(last) = out.iter().rev().find(|p| p.seconds.is_some()).copied() {
        let mut nodes = last.nodes * 2;
        let mut t = last.seconds.unwrap() * ratio;
        while nodes <= max_nodes {
            out.push(NodesPoint { nodes, seconds: Some(t), extrapolated: true });
            nodes *= 2;
            t *= ratio;
        }
    }
    out
}

/// Smallest node count at which the series drops to or below
/// `reference_seconds` (iPregel's single-node runtime), interpolating
/// log-log between bracketing points — the paper reports non-power-of-two
/// lead changes like 11 and 13 this way. Returns `None` if the series
/// never catches up within its range (the paper then reports a bound,
/// e.g. "more than 15,000 nodes").
pub fn lead_change(series: &[NodesPoint], reference_seconds: f64) -> Option<usize> {
    let pts: Vec<(usize, f64)> =
        series.iter().filter_map(|p| p.seconds.map(|s| (p.nodes, s))).collect();
    if let Some(&(n0, t0)) = pts.first() {
        if t0 <= reference_seconds {
            return Some(n0);
        }
    }
    for w in pts.windows(2) {
        let ((n1, t1), (n2, t2)) = (w[0], w[1]);
        if t1 > reference_seconds && t2 <= reference_seconds {
            // Log-log interpolation: t(n) = t1 · (n/n1)^α.
            let alpha = (t2 / t1).ln() / (n2 as f64 / n1 as f64).ln();
            let n = n1 as f64 * (reference_seconds / t1).powf(1.0 / alpha);
            let n = n.ceil() as usize;
            return Some(n.clamp(n1 + 1, n2));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(usize, Option<f64>)]) -> Vec<NodesPoint> {
        points
            .iter()
            .map(|&(n, s)| match s {
                Some(t) => NodesPoint::measured(n, t),
                None => NodesPoint::failed(n),
            })
            .collect()
    }

    #[test]
    fn forward_extrapolation_keeps_doubling_efficiency() {
        // t(8)=100, t(16)=60 → ratio 0.6 → t(32)=36, t(64)=21.6.
        let s = series(&[(8, Some(100.0)), (16, Some(60.0))]);
        let e = extrapolate_series(&s, 64);
        assert_eq!(e.len(), 4);
        assert!((e[2].seconds.unwrap() - 36.0).abs() < 1e-9);
        assert!((e[3].seconds.unwrap() - 21.6).abs() < 1e-9);
        assert!(e[2].extrapolated && e[3].extrapolated);
    }

    #[test]
    fn backward_extrapolation_fills_memory_failures() {
        // Paper: "The same extrapolation method is used backward to
        // estimate the runtimes ... where Pregel+ fails ... due to
        // insufficient memory."
        let s = series(&[(1, None), (2, None), (4, Some(120.0)), (8, Some(100.0)), (16, Some(60.0))]);
        let e = extrapolate_series(&s, 16);
        let t2 = e[1].seconds.unwrap();
        let t1 = e[0].seconds.unwrap();
        assert!((t2 - 120.0 / 0.6).abs() < 1e-9);
        assert!((t1 - 120.0 / 0.36).abs() < 1e-6);
        assert!(e[0].extrapolated && e[1].extrapolated && !e[2].extrapolated);
    }

    #[test]
    fn lead_change_interpolates_between_powers() {
        // Shape like the paper's Hashmin: crossing between 8 and 16 gives
        // a non-power-of-two lead change.
        let s = series(&[
            (1, Some(150.0)),
            (2, Some(90.0)),
            (4, Some(55.0)),
            (8, Some(34.0)),
            (16, Some(21.0)),
        ]);
        let lc = lead_change(&s, 25.0).unwrap();
        assert!(lc > 8 && lc < 16, "lead change {lc}");
    }

    #[test]
    fn lead_change_at_first_point_when_already_ahead() {
        let s = series(&[(1, Some(10.0)), (2, Some(6.0))]);
        assert_eq!(lead_change(&s, 12.0), Some(1));
    }

    #[test]
    fn no_lead_change_within_range() {
        let s = series(&[(1, Some(100.0)), (2, Some(99.0)), (4, Some(98.5))]);
        assert_eq!(lead_change(&s, 3.0), None);
    }

    #[test]
    fn series_without_doubling_pair_is_returned_unchanged() {
        let s = series(&[(1, None), (3, Some(5.0))]);
        let e = extrapolate_series(&s, 64);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].seconds, None);
    }
}
