//! Per-node memory model of Pregel+ (and the Giraph variant used in the
//! Section 7.4.3 comparison).
//!
//! Section 7.4.4 itemises why distributed in-memory frameworks are heavy:
//! network send/receive buffers, messages wrapped with recipient ids,
//! redundant runtime instances per worker, a vertex-location addressing
//! layer, and (for C++ class hierarchies) a hidden virtual-table pointer
//! per vertex. This module prices each item so the simulator can detect
//! insufficient-memory failures (Figure 8's shaded region) and the
//! harness can reproduce the 109 GB / 264 GB projections.
//!
//! Calibration: with the default constants, PageRank over the full
//! Twitter (MPI) graph on 16 nodes prices Pregel+ at ≈ 109 GB aggregate
//! and the Giraph variant at ≈ 264 GB — the figures [GraphD, TPDS'17]
//! reports and the paper quotes. Unit tests pin both.


/// Framework memory constants, all in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Fixed per-vertex framework state: C++ vertex object header
    /// (vtable pointer, id, active flag, padding) plus its entry in the
    /// worker's vertex-location hashmap (Section 5's conventional layer).
    pub per_vertex: usize,
    /// Per out-edge storage (4-byte target id plus container overhead).
    pub per_edge: usize,
    /// Peak in-flight message cost per message: payload + recipient-id
    /// wrapping, counted in both send and receive buffers.
    pub per_message: usize,
    /// Redundant runtime instance per worker (MPI runtime, program image,
    /// framework tables — Section 7.4.4's "multiple instances" point).
    pub per_worker_runtime: u64,
    /// Message payload bytes (application-dependent; 8 for PageRank's
    /// doubles, 4 for Hashmin/SSSP distances).
    pub message_payload: usize,
}

ipregel::impl_to_json!(MemoryModel { per_vertex, per_edge, per_message, per_worker_runtime, message_payload });

impl MemoryModel {
    /// Pregel+ defaults. 24 B/vertex ≈ vtable(8) + id(4) + state(4) +
    /// location-map entry(8); 16 B/edge ≈ id(4) + adjacency-container
    /// overhead; 3 buffer copies per in-flight wrapped message (sender
    /// combiner map, serialised send buffer, receive buffer).
    pub fn pregel_plus(message_payload: usize) -> Self {
        MemoryModel {
            per_vertex: 24,
            per_edge: 16,
            per_message: 3 * (message_payload + 4),
            per_worker_runtime: 128 << 20,
            message_payload,
        }
    }

    /// Giraph-like defaults: JVM object headers dominate (the paper's
    /// quoted numbers make Giraph ≈ 2.4× heavier than Pregel+).
    pub fn giraph(message_payload: usize) -> Self {
        MemoryModel {
            per_vertex: 72,
            per_edge: 48,
            per_message: 4 * (message_payload + 12),
            per_worker_runtime: 256 << 20,
            message_payload,
        }
    }

    /// Scale the fixed per-worker runtime footprint by `divisor`, for
    /// experiments whose graphs (and node RAM) are scaled by the same
    /// factor — keeps the Figure 8 memory-failure pattern intact at
    /// laptop size.
    pub fn with_scaled_runtime(mut self, divisor: u64) -> Self {
        self.per_worker_runtime = (self.per_worker_runtime / divisor.max(1)).max(1);
        self
    }

    /// Bytes one node needs, given its share of the graph and the peak
    /// per-superstep message traffic its workers saw.
    pub fn node_bytes(
        &self,
        vertices_on_node: u64,
        edges_on_node: u64,
        peak_messages_on_node: u64,
        workers_on_node: u64,
        value_bytes: usize,
    ) -> u64 {
        vertices_on_node * (self.per_vertex + value_bytes) as u64
            + edges_on_node * self.per_edge as u64
            + peak_messages_on_node * self.per_message as u64
            + workers_on_node * self.per_worker_runtime
    }

    /// Aggregate bytes across a whole cluster for a PageRank-style run
    /// where every vertex messages all its out-neighbours each superstep
    /// (the worst-case peak the §7.4.3 projections describe).
    pub fn aggregate_pagerank_bytes(&self, vertices: u64, edges: u64, workers: u64) -> u64 {
        self.node_bytes(vertices, edges, edges, workers, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWITTER_V: u64 = 52_579_682;
    const TWITTER_E: u64 = 1_963_263_821;

    #[test]
    fn pregel_plus_prices_full_twitter_near_109_gb() {
        // Section 7.4.3: "Pregel+ ... requires 109GB".
        let m = MemoryModel::pregel_plus(8);
        let bytes = m.aggregate_pagerank_bytes(TWITTER_V, TWITTER_E, 32);
        let gb = bytes as f64 / (1u64 << 30) as f64;
        assert!((gb - 109.0).abs() < 15.0, "Pregel+ model prices Twitter at {gb:.1} GB, expected ≈109");
    }

    #[test]
    fn giraph_prices_full_twitter_near_264_gb() {
        // Section 7.4.3: "Giraph which needs 264GB".
        let m = MemoryModel::giraph(8);
        let bytes = m.aggregate_pagerank_bytes(TWITTER_V, TWITTER_E, 32);
        let gb = bytes as f64 / (1u64 << 30) as f64;
        assert!((gb - 264.0).abs() < 40.0, "Giraph model prices Twitter at {gb:.1} GB, expected ≈264");
    }

    #[test]
    fn fewer_nodes_concentrate_memory() {
        // A node's graph share shrinks with the cluster while the fixed
        // runtime footprint stays — the imbalance behind Figure 8's
        // memory failures at low node counts.
        let m = MemoryModel::pregel_plus(4);
        let on_two_nodes = m.node_bytes(10_000_000, 100_000_000, 10_000_000, 2, 4);
        let on_eight_nodes = m.node_bytes(2_500_000, 25_000_000, 2_500_000, 2, 4);
        assert!(on_two_nodes > 2 * on_eight_nodes);
    }

    #[test]
    fn runtime_overhead_scales_with_workers() {
        let m = MemoryModel::pregel_plus(4);
        let one = m.node_bytes(0, 0, 0, 1, 4);
        let four = m.node_bytes(0, 0, 0, 4, 4);
        assert_eq!(four, 4 * one);
    }
}
