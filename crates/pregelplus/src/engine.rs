//! The executable Pregel+ engine: hash-partitioned workers, sender-side
//! combining, message exchange, modelled wall-clock and memory.
//!
//! Semantics are plain Pregel (so results are directly comparable with
//! iPregel's engines), but the *architecture* follows Pregel+: each
//! vertex belongs to one worker (`id mod workers`), every message goes
//! through the sender's per-destination-worker buffer where it is
//! combined, buffers are exchanged at the superstep barrier, and the
//! receiver combines into per-vertex inboxes. The engine runs workers on
//! pool threads for speed, but the *simulated* time comes from the
//! [`CostModel`] applied to the per-worker trace.

use std::collections::HashMap;
use std::time::Instant;

use ipregel::program::{Context, MasterDecision, VertexProgram};
use ipregel::sync_cell::SharedSlice;
use ipregel_graph::csr::Weight;
use ipregel_graph::partition::Partitioning;
use ipregel_graph::{AddressMap, Graph, VertexId, VertexIndex};
use ipregel_par::prelude::*;

use crate::cluster::ClusterSpec;
use crate::cost::{CostModel, WorkerTrace};
use crate::memory::MemoryModel;

/// Per-superstep record of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSuperstep {
    /// Superstep number.
    pub superstep: usize,
    /// Vertices executed.
    pub active: u64,
    /// Messages emitted by vertices (before sender-side combining).
    pub messages_sent: u64,
    /// Messages that crossed the network (after combining).
    pub remote_messages: u64,
    /// Wire bytes (wrapped payloads).
    pub remote_bytes: u64,
    /// Simulated duration of this superstep.
    pub seconds: f64,
}

ipregel::impl_to_json!(SimSuperstep { superstep, active, messages_sent, remote_messages, remote_bytes, seconds });

/// Result of a simulated Pregel+ run.
#[derive(Debug, Clone)]
pub struct SimOutput<V> {
    /// Final vertex values, slot-indexed like `ipregel`'s `RunOutput`.
    pub values: Vec<V>,
    map: AddressMap,
    /// Per-superstep trace.
    pub supersteps: Vec<SimSuperstep>,
    /// Total simulated wall-clock (the Figure 8 y-axis).
    pub simulated_seconds: f64,
    /// Real wall-clock the simulation itself took (diagnostics only).
    pub host_seconds: f64,
    /// Largest per-node memory requirement across the run.
    pub peak_node_bytes: u64,
    /// Whether every node fit in its RAM. A real Pregel+ run would have
    /// crashed when false — Figure 8's "memory failure" region.
    pub memory_ok: bool,
}

impl<V> SimOutput<V> {
    /// Final value of the vertex with external identifier `id`.
    pub fn value_of(&self, id: VertexId) -> &V {
        &self.values[self.map.index_of(id) as usize]
    }

    /// Total messages emitted across the run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages_sent).sum()
    }
}

/// How vertices are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Pregel+'s default: `id mod workers`.
    #[default]
    Hash,
    /// Contiguous ranges (Pregel+'s alternative partitioner; better
    /// locality, worse balance on skewed id orders).
    Range,
}

/// Simulate `program` over `graph` on `cluster` with hash partitioning
/// (Pregel+'s default).
///
/// `max_supersteps` caps divergent programs, as in the iPregel engines.
pub fn simulate<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    cluster: &ClusterSpec,
    cost: &CostModel,
    memory: &MemoryModel,
    max_supersteps: Option<usize>,
) -> SimOutput<P::Value> {
    simulate_partitioned(graph, program, cluster, cost, memory, max_supersteps, PartitionStrategy::Hash)
}

/// [`simulate`] with an explicit [`PartitionStrategy`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_partitioned<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    cluster: &ClusterSpec,
    cost: &CostModel,
    memory: &MemoryModel,
    max_supersteps: Option<usize>,
    strategy: PartitionStrategy,
) -> SimOutput<P::Value> {
    simulate_full(graph, program, cluster, cost, memory, max_supersteps, strategy, true)
}

/// The full-control entry point: partitioning strategy plus the
/// sender-side-combining toggle. Pregel+'s combiners are one of its
/// headline message-reduction techniques; turning them off shows what
/// they save on the wire (every raw message then travels individually,
/// receiver-side combining still applies — mailboxes stay single-slot).
#[allow(clippy::too_many_arguments)]
pub fn simulate_full<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    cluster: &ClusterSpec,
    cost: &CostModel,
    memory: &MemoryModel,
    max_supersteps: Option<usize>,
    strategy: PartitionStrategy,
    sender_combining: bool,
) -> SimOutput<P::Value> {
    let host_start = Instant::now();
    let map = *graph.address_map();
    let slots = graph.num_slots();
    let workers = cluster.num_workers();
    let part = match strategy {
        PartitionStrategy::Hash => Partitioning::hash(graph, workers),
        PartitionStrategy::Range => Partitioning::range(graph, workers),
    };
    let payload = std::mem::size_of::<P::Message>();
    let value_bytes = std::mem::size_of::<P::Value>();

    let mut values: Vec<P::Value> =
        (0..slots as u32).map(|s| program.initial_value(map.id_of(s))).collect();
    let mut halted: Vec<bool> = vec![false; slots];
    let mut inbox: Vec<Option<P::Message>> = vec![None; slots];

    // Static per-node graph share, for the memory model.
    let mut node_vertices = vec![0u64; cluster.nodes];
    let mut node_edges = vec![0u64; cluster.nodes];
    for w in 0..workers {
        let node = cluster.node_of(w);
        node_vertices[node] += part.members(w).len() as u64;
        node_edges[node] +=
            part.members(w).iter().map(|&v| u64::from(graph.out_degree(v))).sum::<u64>();
    }

    let mut supersteps = Vec::new();
    let mut simulated_seconds = 0.0f64;
    let mut peak_node_bytes = 0u64;
    let mut superstep = 0usize;

    loop {
        // ---- compute phase: every worker scans its partition ----
        let worker_results: Vec<WorkerOutput<P::Message>> = {
            let values_view = SharedSlice::new(&mut values);
            let halted_view = SharedSlice::new(&mut halted);
            let inbox_view = SharedSlice::new(&mut inbox);
            (0..workers)
                .into_par_iter()
                .map(|w| {
                    let mut out = WorkerOutput::<P::Message>::new(workers, sender_combining);
                    out.scanned = part.members(w).len() as u64;
                    for &v in part.members(w) {
                        // SAFETY: partitions are disjoint; only worker w
                        // touches slot v this phase.
                        let msg = unsafe { inbox_view.get_mut(v as usize) }.take();
                        // SAFETY: partitions are disjoint, as above.
                        let is_halted = unsafe { *halted_view.get(v as usize) };
                        if is_halted && msg.is_none() {
                            continue; // unfruitful scan check
                        }
                        let mut ctx = SimCtx::<P> {
                            superstep,
                            graph,
                            part: &part,
                            v,
                            inbox: msg,
                            out: &mut out,
                            halt_vote: false,
                        };
                        // SAFETY: partitions are disjoint, as above.
                        let mut value = unsafe { values_view.get_mut(v as usize) };
                        program.compute(&mut value, &mut ctx);
                        let halt = ctx.halt_vote;
                        // SAFETY: partitions are disjoint, as above.
                        unsafe { *halted_view.get_mut(v as usize) = halt };
                        out.executed += 1;
                    }
                    out
                })
                .collect()
        };

        // ---- exchange phase: deliver per-destination buffers ----
        let mut traces: Vec<WorkerTrace> = worker_results
            .iter()
            .map(|o| WorkerTrace {
                scanned: o.scanned,
                executed: o.executed,
                sent: o.sent_raw,
                ..WorkerTrace::default()
            })
            .collect();

        let mut remote_messages = 0u64;
        let mut remote_bytes = 0u64;
        let mut node_inflight = vec![0u64; cluster.nodes];
        for (src, out) in worker_results.iter().enumerate() {
            for (dst, buf) in out.outboxes.iter().enumerate() {
                if buf.is_empty() {
                    continue;
                }
                let count = buf.len() as u64;
                traces[dst].received += count;
                node_inflight[cluster.node_of(src)] += count;
                node_inflight[cluster.node_of(dst)] += count;
                if !cluster.is_local(src, dst) {
                    let bytes = count * cost.wire_bytes(payload);
                    traces[src].remote_bytes_out += bytes;
                    traces[dst].remote_bytes_in += bytes;
                    remote_messages += count;
                    remote_bytes += bytes;
                }
            }
        }
        // Receiver-side combine into the global inbox. Destinations own
        // disjoint slots, so this parallelises per destination worker.
        let delivered: u64 = {
            let inbox_view = SharedSlice::new(&mut inbox);
            (0..workers)
                .into_par_iter()
                .map(|dst| {
                    let mut n = 0u64;
                    for out in &worker_results {
                        out.outboxes[dst].for_each(|slot, m| {
                            // SAFETY: slot belongs to worker dst's
                            // partition; workers are disjoint.
                            let mut cell = unsafe { inbox_view.get_mut(slot as usize) };
                            match cell.as_mut() {
                                Some(old) => P::combine(old, m),
                                None => {
                                    *cell = Some(m);
                                    n += 1;
                                }
                            }
                        });
                    }
                    n
                })
                .sum()
        };

        // ---- accounting ----
        let seconds = cost.superstep_time(cluster, &traces);
        simulated_seconds += seconds;
        let executed: u64 = traces.iter().map(|t| t.executed).sum();
        let sent: u64 = traces.iter().map(|t| t.sent).sum();
        supersteps.push(SimSuperstep {
            superstep,
            active: executed,
            messages_sent: sent,
            remote_messages,
            remote_bytes,
            seconds,
        });
        for node in 0..cluster.nodes {
            let bytes = memory.node_bytes(
                node_vertices[node],
                node_edges[node],
                node_inflight[node],
                cluster.workers_per_node as u64,
                value_bytes,
            );
            peak_node_bytes = peak_node_bytes.max(bytes);
        }

        if program.master_compute(superstep, &values) == MasterDecision::Halt {
            break;
        }
        superstep += 1;
        if let Some(cap) = max_supersteps {
            if superstep >= cap {
                break;
            }
        }
        let any_not_halted = halted
            .iter()
            .enumerate()
            .any(|(s, &h)| !h && map.is_live_slot(s as u32));
        if delivered == 0 && !any_not_halted {
            break;
        }
    }

    SimOutput {
        values,
        map,
        supersteps,
        simulated_seconds,
        host_seconds: host_start.elapsed().as_secs_f64(),
        peak_node_bytes,
        memory_ok: peak_node_bytes <= cluster.node_ram_bytes,
    }
}

/// A per-destination-worker send buffer: combined (slot → message) or
/// raw (every message travels individually).
enum OutBuf<M> {
    Combined(HashMap<VertexIndex, M>),
    Raw(Vec<(VertexIndex, M)>),
}

impl<M: Copy> OutBuf<M> {
    fn len(&self) -> usize {
        match self {
            OutBuf::Combined(m) => m.len(),
            OutBuf::Raw(v) => v.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, slot: VertexIndex, msg: M, combine: fn(&mut M, M)) {
        match self {
            OutBuf::Combined(map) => {
                map.entry(slot).and_modify(|old| combine(old, msg)).or_insert(msg);
            }
            OutBuf::Raw(v) => v.push((slot, msg)),
        }
    }

    fn for_each(&self, mut f: impl FnMut(VertexIndex, M)) {
        match self {
            OutBuf::Combined(map) => {
                for (&slot, &m) in map {
                    f(slot, m);
                }
            }
            OutBuf::Raw(v) => {
                for &(slot, m) in v {
                    f(slot, m);
                }
            }
        }
    }
}

/// What one worker produced in one superstep.
struct WorkerOutput<M> {
    scanned: u64,
    executed: u64,
    /// Messages before sender-side combining (CPU cost at the sender).
    sent_raw: u64,
    /// Per-destination-worker buffers.
    outboxes: Vec<OutBuf<M>>,
}

impl<M: Copy> WorkerOutput<M> {
    fn new(workers: usize, combining: bool) -> Self {
        WorkerOutput {
            scanned: 0,
            executed: 0,
            sent_raw: 0,
            outboxes: (0..workers)
                .map(|_| {
                    if combining {
                        OutBuf::Combined(HashMap::new())
                    } else {
                        OutBuf::Raw(Vec::new())
                    }
                })
                .collect(),
        }
    }
}

/// Context handed to `compute` by the simulator.
struct SimCtx<'a, P: VertexProgram> {
    superstep: usize,
    graph: &'a Graph,
    part: &'a Partitioning,
    v: VertexIndex,
    inbox: Option<P::Message>,
    out: &'a mut WorkerOutput<P::Message>,
    halt_vote: bool,
}

impl<P: VertexProgram> SimCtx<'_, P> {
    #[inline]
    fn buffer_to_slot(&mut self, slot: VertexIndex, msg: P::Message) {
        let dst = self.part.owner_of(slot) as usize;
        // With combining on, messages for the same recipient merge inside
        // the per-destination buffer before sending.
        self.out.outboxes[dst].push(slot, msg, P::combine);
        self.out.sent_raw += 1;
    }
}

impl<P: VertexProgram> Context for SimCtx<'_, P> {
    type Message = P::Message;

    fn superstep(&self) -> usize {
        self.superstep
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn id(&self) -> VertexId {
        self.graph.id_of(self.v)
    }

    fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.v)
    }

    fn next_message(&mut self) -> Option<P::Message> {
        self.inbox.take()
    }

    fn send(&mut self, to: VertexId, msg: P::Message) {
        assert!(self.graph.address_map().contains(to), "send to unknown vertex id {to}");
        self.buffer_to_slot(self.graph.index_of(to), msg);
    }

    fn broadcast(&mut self, msg: P::Message) {
        let neighbors = self.graph.out_neighbors(self.v);
        for i in 0..neighbors.len() {
            let n = self.graph.out_neighbors(self.v)[i];
            self.buffer_to_slot(n, msg);
        }
    }

    fn vote_to_halt(&mut self) {
        self.halt_vote = true;
    }

    fn for_each_out_edge(&mut self, f: &mut dyn FnMut(VertexId, Weight)) {
        let neighbors = self.graph.out_neighbors(self.v);
        match self.graph.out_weights(self.v) {
            Some(ws) => {
                for (&n, &w) in neighbors.iter().zip(ws) {
                    f(self.graph.id_of(n), w);
                }
            }
            None => {
                for &n in neighbors {
                    f(self.graph.id_of(n), 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel_apps::{Hashmin, PageRank, Sssp};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn ring(n: u32) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
            b.add_edge((i + 1) % n, i);
        }
        b.build().unwrap()
    }

    fn sim<P: VertexProgram>(g: &Graph, p: &P, nodes: usize) -> SimOutput<P::Value> {
        simulate(
            g,
            p,
            &ClusterSpec::m4_large(nodes),
            &CostModel::default(),
            &MemoryModel::pregel_plus(std::mem::size_of::<P::Message>()),
            Some(500),
        )
    }

    #[test]
    fn sssp_results_match_expectation() {
        let g = ring(10);
        let out = sim(&g, &Sssp { source: 2 }, 4);
        assert_eq!(*out.value_of(2), 0);
        assert_eq!(*out.value_of(3), 1);
        assert_eq!(*out.value_of(7), 5);
        assert!(out.memory_ok);
        assert!(out.simulated_seconds > 0.0);
    }

    #[test]
    fn hashmin_labels_components() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let out = sim(&g, &Hashmin, 2);
        assert_eq!(*out.value_of(1), 0);
        assert_eq!(*out.value_of(3), 2);
    }

    #[test]
    fn pagerank_is_uniform_on_ring() {
        let g = ring(8);
        let out = sim(&g, &PageRank { rounds: 10, damping: 0.85 }, 3);
        for id in 0..8 {
            assert!((*out.value_of(id) - 0.125).abs() < 1e-12);
        }
        // ROUND updates + halting superstep.
        assert_eq!(out.supersteps.len(), 11);
    }

    #[test]
    fn node_count_changes_time_but_not_results() {
        let g = ring(64);
        let one = sim(&g, &Sssp { source: 0 }, 1);
        let eight = sim(&g, &Sssp { source: 0 }, 8);
        assert_eq!(one.values, eight.values);
        assert_ne!(one.simulated_seconds, eight.simulated_seconds);
    }

    #[test]
    fn single_node_has_no_remote_traffic() {
        let g = ring(32);
        let out = sim(&g, &Hashmin, 1);
        assert!(out.supersteps.iter().all(|s| s.remote_bytes == 0 && s.remote_messages == 0));
    }

    #[test]
    fn multi_node_has_remote_traffic() {
        let g = ring(32);
        let out = sim(&g, &Hashmin, 4);
        assert!(out.supersteps.iter().any(|s| s.remote_bytes > 0));
    }

    #[test]
    fn sender_side_combining_reduces_wire_messages() {
        // A 2-regular ring can't combine (distinct recipients); build a
        // funnel: many vertices all messaging vertex 0.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 1..33u32 {
            b.add_edge(i, 0);
            b.add_edge(0, i);
        }
        let g = b.build().unwrap();
        let out = sim(&g, &Hashmin, 4);
        // Superstep 0: 32 spokes message hub 0 (plus hub broadcasts).
        // Raw messages to the hub = 32, but each source worker combines
        // its bundle to ≤1 per destination worker: remote messages to the
        // hub's worker from each of the other 7 workers ≤ 7.
        let s0 = out.supersteps[0];
        assert!(s0.messages_sent >= 64);
        assert!(s0.remote_messages < s0.messages_sent);
    }

    #[test]
    fn tiny_ram_triggers_memory_failure() {
        let g = ring(256);
        let cluster = ClusterSpec { nodes: 2, workers_per_node: 2, node_ram_bytes: 1024 };
        let out = simulate(
            &g,
            &Hashmin,
            &cluster,
            &CostModel::default(),
            &MemoryModel::pregel_plus(4),
            Some(500),
        );
        assert!(!out.memory_ok);
        assert!(out.peak_node_bytes > 1024);
    }

    #[test]
    fn disabling_sender_combining_keeps_results_but_costs_messages() {
        // Funnel: 32 spokes message hub 0 — maximal combining opportunity.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 1..33u32 {
            b.add_edge(i, 0);
            b.add_edge(0, i);
        }
        let g = b.build().unwrap();
        let combined = sim(&g, &Hashmin, 4);
        let raw = simulate_full(
            &g,
            &Hashmin,
            &ClusterSpec::m4_large(4),
            &CostModel::default(),
            &MemoryModel::pregel_plus(4),
            Some(500),
            PartitionStrategy::Hash,
            false,
        );
        assert_eq!(combined.values, raw.values);
        let combined_remote: u64 = combined.supersteps.iter().map(|s| s.remote_messages).sum();
        let raw_remote: u64 = raw.supersteps.iter().map(|s| s.remote_messages).sum();
        assert!(
            raw_remote > combined_remote,
            "raw {raw_remote} vs combined {combined_remote}"
        );
        // And the simulated network time reflects it.
        let tc: f64 = combined.simulated_seconds;
        let tr: f64 = raw.simulated_seconds;
        assert!(tr >= tc, "raw {tr} vs combined {tc}");
    }

    #[test]
    fn range_partitioning_agrees_with_hash() {
        let g = ring(40);
        let hash = sim(&g, &Hashmin, 3);
        let range = simulate_partitioned(
            &g,
            &Hashmin,
            &ClusterSpec::m4_large(3),
            &CostModel::default(),
            &MemoryModel::pregel_plus(4),
            Some(500),
            PartitionStrategy::Range,
        );
        assert_eq!(hash.values, range.values);
        // Timing generally differs (different local/remote splits).
        assert!(range.simulated_seconds > 0.0);
    }

    #[test]
    fn desolate_graphs_simulate_too() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        let g = b.build().unwrap();
        let out = sim(&g, &Hashmin, 2);
        assert_eq!(*out.value_of(1), 1);
        assert_eq!(*out.value_of(2), 1);
    }
}
