//! Cluster topology: nodes, workers, and who is remote from whom.
//!
//! The paper's setup (Section 7.1.1): EC2 m4.large nodes with 2 cores and
//! 8 GB each, one MPI process per core. Messages between workers on the
//! same node are local; messages crossing nodes pay network cost.

/// A simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes (the Figure 8 x-axis, 1–16 measured).
    pub nodes: usize,
    /// MPI processes per node (the paper uses 2, one per core).
    pub workers_per_node: usize,
    /// RAM per node in bytes (8 GB on m4.large). Scale this down together
    /// with the graphs when reproducing at laptop size.
    pub node_ram_bytes: u64,
}

impl ClusterSpec {
    /// The paper's m4.large cluster with `nodes` nodes.
    pub fn m4_large(nodes: usize) -> Self {
        ClusterSpec { nodes, workers_per_node: 2, node_ram_bytes: 8 << 30 }
    }

    /// Same topology with RAM scaled by `divisor` — used when the graphs
    /// themselves are scaled by `divisor`, preserving the memory-failure
    /// pattern of Figure 8.
    pub fn m4_large_scaled(nodes: usize, divisor: u64) -> Self {
        ClusterSpec {
            nodes,
            workers_per_node: 2,
            node_ram_bytes: ((8u64 << 30) / divisor.max(1)).max(1),
        }
    }

    /// Total workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// Node hosting `worker`.
    #[inline]
    pub fn node_of(&self, worker: usize) -> usize {
        worker / self.workers_per_node
    }

    /// Whether two workers share a node (their messages skip the network).
    #[inline]
    pub fn is_local(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4_large_matches_paper_setup() {
        let c = ClusterSpec::m4_large(4);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.workers_per_node, 2);
        assert_eq!(c.num_workers(), 8);
        assert_eq!(c.node_ram_bytes, 8 << 30);
    }

    #[test]
    fn worker_to_node_mapping() {
        let c = ClusterSpec::m4_large(3);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(1), 0);
        assert_eq!(c.node_of(2), 1);
        assert_eq!(c.node_of(5), 2);
        assert!(c.is_local(0, 1));
        assert!(!c.is_local(1, 2));
    }

    #[test]
    fn scaled_ram_divides() {
        let c = ClusterSpec::m4_large_scaled(2, 100);
        assert_eq!(c.node_ram_bytes, (8u64 << 30) / 100);
    }
}
