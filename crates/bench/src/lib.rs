//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper's
//! evaluation (Section 7) on scaled-down synthetic analogs of the
//! paper's datasets. Scaling is controlled by divisors (one per dataset
//! family) overridable through environment variables, so the same
//! binaries can run a quick CI pass or a longer laptop pass:
//!
//! * `IPREGEL_WIKI_DIVISOR`  (default 150) — Wikipedia analog scale;
//! * `IPREGEL_USA_DIVISOR`   (default 200) — USA-roads analog scale;
//! * `IPREGEL_TWITTER_DIVISOR` (default 400) — Twitter analog scale
//!   (Figure 9 sweep);
//! * `IPREGEL_THREADS` (default 2, the paper's OpenMP thread count).
//!
//! Results are printed in paper-like tables and appended as JSON lines
//! under `results/` for EXPERIMENTS.md.

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

pub mod microbench;
pub mod svg;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use ipregel_graph::generators::analogs::{DatasetSpec, TWITTER_MPI, USA_ROADS, WIKIPEDIA};
use ipregel_graph::{Graph, NeighborMode};
use ipregel::json::ToJson;

/// Deterministic seed shared by all harness graphs.
pub const SEED: u64 = 20180813; // ICPP'18 started August 13, 2018

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Scale divisor for the Wikipedia analog.
pub fn wiki_divisor() -> u64 {
    env_u64("IPREGEL_WIKI_DIVISOR", 150)
}

/// Scale divisor for the USA-roads analog.
pub fn usa_divisor() -> u64 {
    env_u64("IPREGEL_USA_DIVISOR", 200)
}

/// Scale divisor for the Twitter analog (Figure 9).
pub fn twitter_divisor() -> u64 {
    env_u64("IPREGEL_TWITTER_DIVISOR", 400)
}

/// Thread count for measured iPregel runs (paper: 2).
pub fn threads() -> usize {
    env_u64("IPREGEL_THREADS", 2) as usize
}

/// The two Table 1 datasets with their scaled analogs, built with both
/// adjacency directions so every engine version can run.
pub struct PaperGraphs {
    /// Wikipedia analog (R-MAT, 1-based ids).
    pub wiki: Graph,
    /// USA-roads analog (sparse grid, weighted, 1-based ids).
    pub usa: Graph,
    /// Divisor used for the Wikipedia analog.
    pub wiki_divisor: u64,
    /// Divisor of the USA analog.
    pub usa_divisor: u64,
}

impl PaperGraphs {
    /// Build both analogs at the configured scale.
    pub fn build() -> PaperGraphs {
        let (wd, ud) = (wiki_divisor(), usa_divisor());
        PaperGraphs {
            wiki: WIKIPEDIA.analog_graph(wd, SEED, NeighborMode::Both),
            usa: USA_ROADS.analog_graph(ud, SEED + 1, NeighborMode::Both),
            wiki_divisor: wd,
            usa_divisor: ud,
        }
    }

    /// `(label, graph, divisor, spec)` tuples for iteration.
    pub fn each(&self) -> [(&'static str, &Graph, u64, DatasetSpec); 2] {
        [
            ("Wikipedia", &self.wiki, self.wiki_divisor, WIKIPEDIA),
            ("USA roads", &self.usa, self.usa_divisor, USA_ROADS),
        ]
    }
}

/// The paper's SSSP source vertex ("the vertex identified by '2'").
pub const SSSP_SOURCE: u32 = 2;

/// The paper's PageRank iteration count.
pub const PAGERANK_ROUNDS: usize = 30;

/// The Twitter spec reference for Figure 9 labelling.
pub fn twitter_spec() -> DatasetSpec {
    TWITTER_MPI
}

/// Format a duration in seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format bytes as decimal MB/GB, paper-style.
pub fn human_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{:.0} KB", b / 1e3)
    }
}

/// Append a serialisable record as one JSON line under `results/`.
pub fn append_result<T: ToJson>(file: &str, record: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if fs::create_dir_all(&dir).is_err() {
        return; // results files are best-effort; printing is the contract
    }
    let path = dir.join(file);
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{}", record.to_json());
    }
}

/// Print a horizontal rule of `width` dashes.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_falls_back_to_default() {
        assert_eq!(env_u64("IPREGEL_SURELY_UNSET_VAR_XYZ", 150), 150);
    }

    #[test]
    fn human_bytes_picks_units() {
        assert_eq!(human_bytes(11.01e9), "11.01 GB");
        assert_eq!(human_bytes(730e6), "730.0 MB");
        assert_eq!(human_bytes(4096.0), "4 KB");
    }

    #[test]
    fn secs_formats_three_decimals() {
        assert_eq!(secs(Duration::from_millis(1234)), "1.234");
    }

    #[test]
    fn paper_graph_analogs_build_at_tiny_scale() {
        let wiki = WIKIPEDIA.analog_graph(20_000, SEED, NeighborMode::Both);
        let usa = USA_ROADS.analog_graph(20_000, SEED + 1, NeighborMode::Both);
        assert!(wiki.num_vertices() > 0 && usa.num_vertices() > 0);
        assert!(wiki.has_in_edges() && wiki.has_out_edges());
        assert!(usa.is_weighted());
    }
}
