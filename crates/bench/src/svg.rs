//! A minimal, dependency-free SVG chart writer.
//!
//! The figure binaries print paper-style tables; this module lets them
//! also emit the figures *as figures* — line charts with optionally
//! logarithmic axes (Figure 8's log-y runtime curves, Figure 9's linear
//! memory line) and grouped bar charts (Figure 7's version bars) —
//! without pulling a plotting dependency into the workspace.
//!
//! The output is deliberately plain SVG 1.1: axes, ticks, gridlines,
//! polylines with circle markers, bars, and a legend.

use std::fmt::Write as _;

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear mapping.
    Linear,
    /// Base-10 logarithmic mapping (values must be > 0).
    Log,
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (x, y).
    pub points: Vec<(f64, f64)>,
    /// Stroke colour (any SVG colour string).
    pub color: String,
    /// Dashed stroke (used for extrapolated segments).
    pub dashed: bool,
}

/// A line chart (Figure 8 / Figure 9 shaped).
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series to draw.
    pub series: Vec<Series>,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // margins
const MR: f64 = 20.0;
const MT: f64 = 40.0;
const MB: f64 = 55.0;

/// Default qualitative palette.
pub const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];

fn scale_pos(v: f64, lo: f64, hi: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => {
            if hi > lo {
                (v - lo) / (hi - lo)
            } else {
                0.5
            }
        }
        Scale::Log => {
            let (v, lo, hi) = (v.max(1e-300).log10(), lo.max(1e-300).log10(), hi.max(1e-300).log10());
            if hi > lo {
                (v - lo) / (hi - lo)
            } else {
                0.5
            }
        }
    }
}

/// Human tick label: trims float noise, switches to powers for logs.
fn tick_label(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn ticks(lo: f64, hi: f64, scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Log => {
            let mut t = Vec::new();
            let mut p = 10f64.powf(lo.max(1e-300).log10().floor());
            while p <= hi * 1.0001 {
                if p >= lo * 0.9999 {
                    t.push(p);
                }
                p *= 10.0;
            }
            if t.len() < 2 {
                t = vec![lo, hi];
            }
            t
        }
        Scale::Linear => {
            if hi <= lo {
                return vec![lo];
            }
            let raw = (hi - lo) / 5.0;
            let mag = 10f64.powf(raw.log10().floor());
            let step = [1.0, 2.0, 2.5, 5.0, 10.0]
                .iter()
                .map(|m| m * mag)
                .find(|&s| (hi - lo) / s <= 6.0)
                .unwrap_or(mag * 10.0);
            let mut t = Vec::new();
            let mut v = (lo / step).ceil() * step;
            while v <= hi * 1.0001 {
                t.push(v);
                v += step;
            }
            t
        }
    }
}

impl LineChart {
    /// Render to an SVG document.
    pub fn to_svg(&self) -> String {
        let all: Vec<(f64, f64)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        let (mut xlo, mut xhi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ylo, mut yhi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            xlo = xlo.min(x);
            xhi = xhi.max(x);
            ylo = ylo.min(y);
            yhi = yhi.max(y);
        }
        if !xlo.is_finite() {
            xlo = 0.0;
            xhi = 1.0;
            ylo = 0.0;
            yhi = 1.0;
        }
        if self.y_scale == Scale::Linear {
            ylo = ylo.min(0.0);
        }
        let px = |x: f64| ML + scale_pos(x, xlo, xhi, self.x_scale) * (W - ML - MR);
        let py = |y: f64| H - MB - scale_pos(y, ylo, yhi, self.y_scale) * (H - MT - MB);

        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            W / 2.0,
            xml(&self.title)
        );

        // Gridlines + ticks.
        for t in ticks(xlo, xhi, self.x_scale) {
            let x = px(t);
            let _ = writeln!(
                s,
                r##"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="#eee"/>"##,
                H - MB
            );
            let _ = writeln!(
                s,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                H - MB + 16.0,
                tick_label(t)
            );
        }
        for t in ticks(ylo, yhi, self.y_scale) {
            let y = py(t);
            let _ = writeln!(
                s,
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
                W - MR
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                ML - 6.0,
                y + 4.0,
                tick_label(t)
            );
        }
        // Axes.
        let _ = writeln!(
            s,
            r##"<line x1="{ML}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#333"/>"##,
            H - MB,
            W - MR,
            H - MB
        );
        let _ = writeln!(s, r##"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{:.1}" stroke="#333"/>"##, H - MB);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            (ML + W - MR) / 2.0,
            H - 14.0,
            xml(&self.x_label)
        );
        let _ = writeln!(
            s,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            xml(&self.y_label)
        );

        // Series.
        for series in &self.series {
            if series.points.is_empty() {
                continue;
            }
            let pts: String = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect::<Vec<_>>()
                .join(" ");
            let dash = if series.dashed { r#" stroke-dasharray="6 4""# } else { "" };
            let _ = writeln!(
                s,
                r#"<polyline points="{pts}" fill="none" stroke="{}" stroke-width="2"{dash}/>"#,
                series.color
            );
            for &(x, y) in &series.points {
                let _ = writeln!(
                    s,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{}"/>"#,
                    px(x),
                    py(y),
                    series.color
                );
            }
        }

        // Legend.
        for (i, series) in self.series.iter().enumerate() {
            let y = MT + 8.0 + i as f64 * 16.0;
            let _ = writeln!(
                s,
                r#"<rect x="{:.1}" y="{:.1}" width="12" height="4" fill="{}"/>"#,
                ML + 10.0,
                y,
                series.color
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
                ML + 28.0,
                y + 6.0,
                xml(&series.name)
            );
        }
        s.push_str("</svg>\n");
        s
    }
}

/// A grouped bar chart (Figure 7 shaped): one group per label, one bar
/// per series.
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Group labels along the x axis.
    pub groups: Vec<String>,
    /// `(series name, per-group values)`; `f64::NAN` marks a missing bar.
    pub series: Vec<(String, Vec<f64>)>,
    /// Logarithmic y axis (Figure 7's SSSP panel needs it).
    pub log_y: bool,
}

impl BarChart {
    /// Render to an SVG document.
    pub fn to_svg(&self) -> String {
        let scale = if self.log_y { Scale::Log } else { Scale::Linear };
        let values: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .filter(|v| v.is_finite())
            .collect();
        let mut yhi = values.iter().copied().fold(f64::MIN, f64::max);
        let mut ylo = if self.log_y {
            values.iter().copied().fold(f64::MAX, f64::min)
        } else {
            0.0
        };
        if !yhi.is_finite() {
            ylo = 0.0;
            yhi = 1.0;
        }
        let py = |y: f64| H - MB - scale_pos(y, ylo, yhi, scale) * (H - MT - MB);

        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            W / 2.0,
            xml(&self.title)
        );
        for t in ticks(ylo, yhi, scale) {
            let y = py(t);
            let _ = writeln!(
                s,
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
                W - MR
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                ML - 6.0,
                y + 4.0,
                tick_label(t)
            );
        }
        let _ = writeln!(
            s,
            r##"<line x1="{ML}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#333"/>"##,
            H - MB,
            W - MR,
            H - MB
        );
        let _ = writeln!(
            s,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            xml(&self.y_label)
        );

        let groups = self.groups.len().max(1) as f64;
        let group_w = (W - ML - MR) / groups;
        let bars = self.series.len().max(1) as f64;
        let bar_w = (group_w * 0.8) / bars;
        for (gi, label) in self.groups.iter().enumerate() {
            let gx = ML + gi as f64 * group_w;
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                gx + group_w / 2.0,
                H - MB + 16.0,
                xml(label)
            );
            for (si, (_, vs)) in self.series.iter().enumerate() {
                let v = vs.get(gi).copied().unwrap_or(f64::NAN);
                if !v.is_finite() {
                    continue;
                }
                let x = gx + group_w * 0.1 + si as f64 * bar_w;
                let y = py(v);
                let _ = writeln!(
                    s,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                    bar_w * 0.9,
                    (H - MB - y).max(0.0),
                    PALETTE[si % PALETTE.len()]
                );
            }
        }
        for (si, (name, _)) in self.series.iter().enumerate() {
            let y = MT + 8.0 + si as f64 * 16.0;
            let _ = writeln!(
                s,
                r#"<rect x="{:.1}" y="{:.1}" width="12" height="8" fill="{}"/>"#,
                ML + 10.0,
                y,
                PALETTE[si % PALETTE.len()]
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
                ML + 28.0,
                y + 8.0,
                xml(name)
            );
        }
        s.push_str("</svg>\n");
        s
    }
}

/// Escape text for XML content.
fn xml(t: &str) -> String {
    t.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Write an SVG document under `results/`.
pub fn save_svg(file: &str, svg: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(file);
    std::fs::write(&path, svg).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: Scale::Log,
            y_scale: Scale::Log,
            series: vec![Series {
                name: "a & b".into(),
                points: vec![(1.0, 100.0), (2.0, 50.0), (4.0, 25.0)],
                color: PALETTE[0].into(),
                dashed: false,
            }],
        }
    }

    #[test]
    fn line_chart_is_wellformed_svg() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("a &amp; b"), "legend must be escaped");
    }

    #[test]
    fn log_scale_positions_decades_evenly() {
        assert!((scale_pos(10.0, 1.0, 100.0, Scale::Log) - 0.5).abs() < 1e-12);
        assert!((scale_pos(1.0, 1.0, 100.0, Scale::Log) - 0.0).abs() < 1e-12);
        assert!((scale_pos(100.0, 1.0, 100.0, Scale::Log) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_ticks_are_round_and_cover_range() {
        let t = ticks(0.0, 97.0, Scale::Linear);
        assert!(t.len() >= 3 && t.len() <= 7, "{t:?}");
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        assert!(t[0] >= 0.0 && *t.last().unwrap() <= 97.0 * 1.001);
    }

    #[test]
    fn log_ticks_are_powers_of_ten() {
        let t = ticks(0.5, 2000.0, Scale::Log);
        for v in &t {
            let l = v.log10();
            assert!((l - l.round()).abs() < 1e-9, "{v}");
        }
        assert!(t.contains(&1.0) && t.contains(&1000.0));
    }

    #[test]
    fn dashed_series_render_dasharray() {
        let mut c = chart();
        c.series[0].dashed = true;
        assert!(c.to_svg().contains("stroke-dasharray"));
    }

    #[test]
    fn bar_chart_renders_bars_and_skips_nan() {
        let b = BarChart {
            title: "bars".into(),
            y_label: "runtime".into(),
            groups: vec!["g1".into(), "g2".into()],
            series: vec![
                ("mutex".into(), vec![3.0, 2.0]),
                ("spin".into(), vec![1.5, f64::NAN]),
            ],
            log_y: false,
        };
        let svg = b.to_svg();
        // 3 finite bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 /*bg*/ + 3 + 2);
        assert!(svg.contains("mutex"));
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let c = LineChart {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: vec![],
        };
        assert!(c.to_svg().contains("</svg>"));
    }
}
