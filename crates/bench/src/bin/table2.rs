//! Table 2: graphs used for the further memory-footprint experiments.
//!
//! Prints the paper-scale sizes of Twitter (MPI) and Friendster, their
//! average degrees, and the binary-size arithmetic of Section 7.4.2
//! (4-byte identifiers for each vertex and out-neighbour entry).

use ipregel_bench::rule;
use ipregel_graph::generators::analogs::{FRIENDSTER, TWITTER_MPI};
use ipregel_graph::stats::group_digits;
use ipregel_mem::{RssModel, GB};

fn main() {
    println!("Table 2: Graphs used for further iPregel memory footprint experiments");
    rule(72);
    println!("{:<16} {:>14} {:>16} {:>12}", "Name", "|V|", "|E|", "binary size");
    rule(72);
    for spec in [TWITTER_MPI, FRIENDSTER] {
        let binary = RssModel::graph_binary_bytes(spec.vertices, spec.edges) / GB;
        println!(
            "{:<16} {:>14} {:>16} {:>9.2} GB",
            spec.name,
            group_digits(spec.vertices),
            group_digits(spec.edges),
            binary
        );
    }
    rule(72);
    println!(
        "(Section 7.4.2 computes the Twitter binary size as 8 GB with 4-byte\n\
         vertex identifiers; the model above reproduces that arithmetic.)"
    );
}
