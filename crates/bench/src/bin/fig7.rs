//! Figure 7: runtime of every iPregel version on PageRank, Hashmin and
//! SSSP over the Wikipedia-like and USA-roads-like graphs.
//!
//! Reproduces the paper's version sweep: three combiners (mutex,
//! spinlock, broadcast) with and without the selection bypass — except
//! PageRank, which only runs the three non-bypass versions because its
//! vertices do not halt every superstep (Section 4's note, mirrored in
//! Section 7.2's setup). Prints runtimes, per-app speedup spreads (the
//! paper's 7.5→20 Hashmin and 15→1400 SSSP factors), and appends JSON
//! records under `results/fig7.jsonl`.

use ipregel::{run, RunConfig, RunOutput, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::svg::{save_svg, BarChart};
use ipregel_bench::{
    append_result, rule, secs, threads, PaperGraphs, PAGERANK_ROUNDS, SSSP_SOURCE,
};
use ipregel_graph::Graph;

struct Record {
    figure: &'static str,
    graph: String,
    divisor: u64,
    app: &'static str,
    version: String,
    seconds: f64,
    supersteps: usize,
    messages: u64,
    footprint_bytes: usize,
}

ipregel::impl_to_json!(Record { figure, graph, divisor, app, version, seconds, supersteps, messages, footprint_bytes });

fn measure<P: VertexProgram>(
    g: &Graph,
    p: &P,
    version: Version,
) -> RunOutput<P::Value> {
    let cfg = RunConfig { threads: Some(threads()), ..RunConfig::default() };
    run(g, p, version, &cfg)
}

fn sweep<P: VertexProgram>(
    graph_label: &str,
    divisor: u64,
    g: &Graph,
    app: &'static str,
    p: &P,
    versions: &[Version],
) {
    let mut bar_names: Vec<String> = Vec::new();
    let mut bar_values: Vec<f64> = Vec::new();
    println!("\n  {app}:");
    println!("    {:<34} {:>10} {:>11} {:>13}", "Version", "Runtime(s)", "Supersteps", "Messages");
    let mut best: Option<(f64, String)> = None;
    let mut worst: Option<(f64, String)> = None;
    for &v in versions {
        let out = measure(g, p, v);
        let t = out.stats.total_time.as_secs_f64();
        println!(
            "    {:<34} {:>10} {:>11} {:>13}",
            v.label(),
            secs(out.stats.total_time),
            out.stats.num_supersteps(),
            out.stats.total_messages()
        );
        append_result(
            "fig7.jsonl",
            &Record {
                figure: "fig7",
                graph: graph_label.to_string(),
                divisor,
                app,
                version: v.label(),
                seconds: t,
                supersteps: out.stats.num_supersteps(),
                messages: out.stats.total_messages(),
                footprint_bytes: out.footprint.total_bytes(),
            },
        );
        bar_names.push(v.label());
        bar_values.push(t);
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, v.label()));
        }
        if worst.as_ref().is_none_or(|(wt, _)| t > *wt) {
            worst = Some((t, v.label()));
        }
    }
    if let (Some((bt, bl)), Some((wt, wl))) = (best, worst) {
        println!(
            "    -> fastest: {bl} ({}s); slowest: {wl} ({}s); spread ×{:.1}",
            format_args!("{bt:.3}"),
            format_args!("{wt:.3}"),
            wt / bt.max(1e-12),
        );
        // Figure panel: one bar per version, log-y when the spread is
        // large (the paper's SSSP panel uses a log axis too).
        let log_y = wt / bt.max(1e-12) > 30.0;
        let chart = BarChart {
            title: format!("Figure 7 — {app}, {graph_label} analog"),
            y_label: "runtime (s)".into(),
            groups: bar_names,
            series: vec![("runtime".into(), bar_values)],
            log_y,
        };
        let file = format!("fig7_{}_{}.svg", graph_label.replace(' ', "_"), app.to_lowercase());
        if let Some(path) = save_svg(&file, &chart.to_svg()) {
            println!("    figure written to {}", path.display());
        }
    }
}

fn main() {
    let graphs = PaperGraphs::build();
    println!(
        "Figure 7: Runtime (in seconds) of iPregel on PageRank, Hashmin and SSSP\n\
         as the version varies ({} threads, PageRank x{}, SSSP source {})",
        threads(),
        PAGERANK_ROUNDS,
        SSSP_SOURCE
    );

    let all = Version::paper_versions();
    let no_bypass: Vec<Version> = all.iter().copied().filter(|v| !v.selection_bypass).collect();

    for (label, g, divisor, _) in graphs.each() {
        rule(78);
        println!(
            "{label} graph (divisor {divisor}: |V|={}, |E|={})",
            g.num_vertices(),
            g.num_edges()
        );
        // PageRank: the three combiner versions only (no bypass).
        sweep(label, divisor, g, "PageRank", &PageRank { rounds: PAGERANK_ROUNDS, damping: 0.85 }, &no_bypass);
        // Hashmin and SSSP: all six versions.
        sweep(label, divisor, g, "Hashmin", &Hashmin, &all);
        sweep(label, divisor, g, "SSSP", &Sssp { source: SSSP_SOURCE }, &all);
    }
    rule(78);
    println!(
        "Paper shape to compare against: PageRank fastest on Broadcast (≈2× over\n\
         spinlock, ≈30% gained mutex→spinlock); Hashmin/SSSP fastest on Spinlock\n\
         with selection bypass; bypass spread grows on the sparse road graph\n\
         (paper: ×7.5→×20 Hashmin, ×15→×1400 SSSP)."
    );
}
