//! Thread-scaling sweep: threads-vs-throughput curves for the push and
//! pull engines over the work-stealing pool.
//!
//! The paper's single-machine claim (PAPER.md §7) is that iPregel keeps
//! every core busy; the in-tree pool now work-steals (per-worker deques,
//! seeded probe order, overflow injector), so this binary pins the
//! threads → throughput curve that pool regressions would bend. It runs
//! push (spinlock combiner) and pull on one Graph500 R-MAT instance at
//! 1, 2, 4, 8, 16 threads under the adaptive schedule (which
//! over-partitions so thieves have chunks to rebalance with), printing
//! each point and appending JSON rows to `results/scaling.jsonl`.
//!
//! Throughput is reported as millions of edge visits per second
//! (|E| × supersteps / seconds): PageRank runs a fixed round count with
//! every vertex active every superstep, so the number is comparable
//! across thread counts and PRs. Speedup is relative to the 1-thread
//! run of the same engine. Steal counts come from the per-superstep
//! load stats, so a curve that flattens can be read against whether the
//! pool was actually rebalancing.
//!
//! Scale with `IPREGEL_SCALING_DIVISOR` (default 8; smaller = bigger
//! graph). The thread list is fixed so rows from different PRs line up.

use ipregel::{run, CombinerKind, RunConfig, RunOutput, Schedule, Version};
use ipregel_apps::PageRank;
use ipregel_bench::{append_result, rule, secs, SEED};
use ipregel_graph::generators::{rmat_edges, RmatParams};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};

const THREAD_STEPS: [usize; 5] = [1, 2, 4, 8, 16];
const PAGERANK_ROUNDS: usize = 10;

struct Record {
    figure: &'static str,
    graph: &'static str,
    vertices: usize,
    edges: u64,
    engine: &'static str,
    app: &'static str,
    threads: usize,
    seconds: f64,
    supersteps: usize,
    meps: f64,
    speedup: f64,
    steals: u64,
    overflows: u64,
}

ipregel::impl_to_json!(Record { figure, graph, vertices, edges, engine, app, threads, seconds, supersteps, meps, speedup, steals, overflows });

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_rmat(n: u32) -> Graph {
    let edges = rmat_edges(n, u64::from(n) * 8, RmatParams::GRAPH500, SEED);
    let mut b =
        GraphBuilder::with_capacity(NeighborMode::Both, edges.len() * 2).declare_id_range(0, n);
    for &(u, v) in &edges {
        b.add_edge(u, v);
        if u != v {
            b.add_edge(v, u);
        }
    }
    b.build().expect("R-MAT produced an unbuildable graph")
}

fn config(threads: usize) -> RunConfig {
    RunConfig { threads: Some(threads), schedule: Schedule::Adaptive, ..RunConfig::default() }
}

fn pool_counters(out: &RunOutput<f64>) -> (u64, u64) {
    let mut steals = 0;
    let mut overflows = 0;
    for l in out.stats.supersteps.iter().filter_map(|s| s.load.as_ref()) {
        steals += l.steals;
        overflows += l.overflow;
    }
    (steals, overflows)
}

fn sweep(g: &Graph, engine: &'static str, measure: impl Fn(usize) -> RunOutput<f64>) {
    println!("\n  {engine} engine (PageRank, {PAGERANK_ROUNDS} rounds, adaptive schedule):");
    println!(
        "    {:>7} {:>10} {:>11} {:>9} {:>8} {:>8} {:>9}",
        "Threads", "Runtime(s)", "Supersteps", "MEPS", "Speedup", "Steals", "Overflows"
    );
    let mut base_seconds = 0.0_f64;
    for threads in THREAD_STEPS {
        let out = measure(threads);
        let seconds = out.stats.total_time.as_secs_f64();
        if threads == 1 {
            base_seconds = seconds;
        }
        let supersteps = out.stats.num_supersteps();
        #[allow(clippy::cast_precision_loss)]
        let meps = g.num_edges() as f64 * supersteps as f64 / seconds.max(1e-12) / 1e6;
        let speedup = base_seconds / seconds.max(1e-12);
        let (steals, overflows) = pool_counters(&out);
        println!(
            "    {threads:>7} {:>10} {supersteps:>11} {meps:>9.1} {speedup:>8.2} {steals:>8} {overflows:>9}",
            secs(out.stats.total_time),
        );
        append_result(
            "scaling.jsonl",
            &Record {
                figure: "scaling",
                graph: "rmat",
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                engine,
                app: "PageRank",
                threads,
                seconds,
                supersteps,
                meps,
                speedup,
                steals,
                overflows,
            },
        );
    }
}

fn main() {
    let divisor = env_u64("IPREGEL_SCALING_DIVISOR", 8).max(1) as u32;
    let n = (400_000 / divisor).max(64);
    let g = build_rmat(n);
    let program = PageRank { rounds: PAGERANK_ROUNDS, damping: 0.85 };
    let push = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };

    rule(78);
    println!(
        "Thread scaling on R-MAT (Graph500): |V|={}, |E|={}, divisor {divisor}",
        g.num_vertices(),
        g.num_edges()
    );
    sweep(&g, "push", |threads| run(&g, &program, push, &config(threads)));
    sweep(&g, "pull", |threads| ipregel::run_pull(&g, &program, &config(threads)));
    rule(78);
    println!(
        "Expected shape: near-linear speedup while threads <= physical cores, then\n\
         flat; steals grow with thread count (the adaptive over-partitioned plans\n\
         give thieves chunks to rebalance), overflows stay rare. A curve that bends\n\
         down at low thread counts is a pool regression, not an OS artifact."
    );
}
