//! Trace diff: compare two JSONL superstep traces for regressions.
//!
//! ```text
//! trace BASELINE.jsonl CANDIDATE.jsonl [--threshold PCT]
//! ```
//!
//! Both files are `--trace-out` captures (see docs/INTERNALS.md,
//! "Observability"). Supersteps present in both traces are aligned by
//! number and compared on duration and message count; a superstep whose
//! candidate duration exceeds the baseline by more than `--threshold`
//! percent (default 20) is flagged as a regression, one that undercuts
//! it by the same margin as an improvement. Message-count divergence is
//! always flagged — with a fixed program and graph the traffic is
//! deterministic, so a mismatch means the runs are not comparable (or
//! the engine changed behaviour, which is exactly what this tool is for).
//!
//! The exit code is 0 whenever both traces parse, regressions or not —
//! the tool reports, CI policy decides. Pass `--fail-on-regression` to
//! turn flagged durations into exit code 3. Unreadable or malformed
//! input exits 1, bad usage 2.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ipregel::trace::{decode_trace, TraceEvent};

/// The comparable slice of one superstep, keyed by superstep number.
struct Step {
    duration_ns: u64,
    messages: u64,
    active: u64,
    chunks: u64,
}

struct Trace {
    steps: BTreeMap<u64, Step>,
    total_ns: u64,
    total_messages: u64,
    checkpoint_ns: u64,
    peak_rss: Option<u64>,
}

fn load(path: &str) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = decode_trace(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let mut t = Trace {
        steps: BTreeMap::new(),
        total_ns: 0,
        total_messages: 0,
        checkpoint_ns: 0,
        peak_rss: None,
    };
    for e in &events {
        match *e {
            TraceEvent::SuperstepEnd { superstep, active, messages, duration_ns, chunks, .. } => {
                t.steps.insert(superstep, Step { duration_ns, messages, active, chunks });
            }
            TraceEvent::RunEnd { messages, duration_ns, .. } => {
                t.total_ns = duration_ns;
                t.total_messages = messages;
            }
            TraceEvent::CheckpointSave { duration_ns, .. } => t.checkpoint_ns += duration_ns,
            TraceEvent::Rss { bytes, .. } => {
                t.peak_rss = Some(t.peak_rss.map_or(bytes, |p| p.max(bytes)))
            }
            _ => {}
        }
    }
    if t.steps.is_empty() {
        return Err(format!(
            "{path} holds no superstep_end events — was the producer built with --features trace?"
        ));
    }
    Ok(t)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Signed percentage change from `base` to `cand`; `None` when the
/// baseline is zero (nothing meaningful to divide by).
fn pct_change(base: u64, cand: u64) -> Option<f64> {
    (base > 0).then(|| (cand as f64 - base as f64) / base as f64 * 100.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 20.0f64;
    let mut fail_on_regression = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a number");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            "--fail-on-regression" => fail_on_regression = true,
            _ => paths.push(a.clone()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        eprintln!("usage: trace BASELINE.jsonl CANDIDATE.jsonl [--threshold PCT] [--fail-on-regression]");
        return ExitCode::from(2);
    };
    let (base, cand) = match (load(base_path), load(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };

    println!("baseline:  {base_path}  ({} supersteps)", base.steps.len());
    println!("candidate: {cand_path}  ({} supersteps)", cand.steps.len());
    if base.steps.len() != cand.steps.len() {
        println!(
            "NOTE superstep counts differ; comparing the {} shared",
            base.steps.keys().filter(|s| cand.steps.contains_key(s)).count()
        );
    }
    println!("superstep      base(ms)      cand(ms)    delta  messages");

    let mut regressions = 0usize;
    let mut divergences = 0usize;
    for (step, b) in &base.steps {
        let Some(c) = cand.steps.get(step) else { continue };
        let delta = pct_change(b.duration_ns, c.duration_ns);
        let mut flags = String::new();
        match delta {
            Some(d) if d > threshold => {
                flags.push_str("  REGRESSION");
                regressions += 1;
            }
            Some(d) if d < -threshold => flags.push_str("  improvement"),
            _ => {}
        }
        if b.messages != c.messages || b.active != c.active || b.chunks != c.chunks {
            flags.push_str("  DIVERGED");
            divergences += 1;
        }
        println!(
            "{step:9}  {:12.3}  {:12.3}  {:>6}  {} -> {}{flags}",
            ms(b.duration_ns),
            ms(c.duration_ns),
            delta.map_or("n/a".to_string(), |d| format!("{d:+.0}%")),
            b.messages,
            c.messages,
        );
    }

    println!(
        "totals: {:.3}ms -> {:.3}ms ({}), {} -> {} messages",
        ms(base.total_ns),
        ms(cand.total_ns),
        pct_change(base.total_ns, cand.total_ns)
            .map_or("n/a".to_string(), |d| format!("{d:+.1}%")),
        base.total_messages,
        cand.total_messages,
    );
    if base.checkpoint_ns > 0 || cand.checkpoint_ns > 0 {
        println!(
            "checkpoint overhead: {:.3}ms -> {:.3}ms",
            ms(base.checkpoint_ns),
            ms(cand.checkpoint_ns)
        );
    }
    if let (Some(b), Some(c)) = (base.peak_rss, cand.peak_rss) {
        println!("peak sampled rss: {b} -> {c} bytes");
    }
    println!(
        "{regressions} regression(s) over {threshold}% | {divergences} divergence(s)",
    );
    if divergences > 0 {
        println!("WARNING divergent supersteps: the two traces did not run the same computation");
    }
    if fail_on_regression && (regressions > 0 || divergences > 0) {
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
