//! The comparison Section 7.3 could not run: iPregel against a correct
//! shared-memory vertex-centric baseline built *without* its
//! optimisations (FemtoGraph's architecture: per-vertex message queues,
//! hashmap addressing, full scans — see `femtograph-sim`).
//!
//! This isolates the paper's contribution from the architecture's
//! advantage: both engines are in-memory and shared-memory; only the
//! Section 4–6 techniques differ.

use femtograph_sim::run_naive;
use ipregel::{run, CombinerKind, RunConfig, RunOutput, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::{
    append_result, human_bytes, rule, threads, PaperGraphs, PAGERANK_ROUNDS, SSSP_SOURCE,
};
use ipregel_graph::Graph;

struct Record {
    figure: &'static str,
    graph: String,
    app: &'static str,
    ipregel_seconds: f64,
    naive_seconds: f64,
    ipregel_overhead_bytes: usize,
    naive_overhead_bytes: usize,
}

ipregel::impl_to_json!(Record { figure, graph, app, ipregel_seconds, naive_seconds, ipregel_overhead_bytes, naive_overhead_bytes });

fn compare<P: VertexProgram>(
    graph_label: &str,
    g: &Graph,
    app: &'static str,
    p: &P,
    best: Version,
) {
    let cfg = RunConfig { threads: Some(threads()), ..RunConfig::default() };
    let fast: RunOutput<P::Value> = run(g, p, best, &cfg);
    let naive: RunOutput<P::Value> = run_naive(g, p, &cfg);
    let ft = fast.stats.total_time.as_secs_f64();
    let nt = naive.stats.total_time.as_secs_f64();
    println!(
        "  {app:<9} {:<32} {ft:>9.3}s {nt:>9.3}s {:>7.1}x {:>12} {:>12}",
        best.label(),
        nt / ft.max(1e-12),
        human_bytes(fast.footprint.overhead_bytes() as f64),
        human_bytes(naive.footprint.overhead_bytes() as f64),
    );
    append_result(
        "baseline.jsonl",
        &Record {
            figure: "baseline",
            graph: graph_label.to_string(),
            app,
            ipregel_seconds: ft,
            naive_seconds: nt,
            ipregel_overhead_bytes: fast.footprint.overhead_bytes(),
            naive_overhead_bytes: naive.footprint.overhead_bytes(),
        },
    );
}

fn main() {
    let graphs = PaperGraphs::build();
    println!(
        "iPregel vs a naive shared-memory baseline (queues + hashmap + scans),\n\
         {} threads — the FemtoGraph comparison Section 7.3 could not run.",
        threads()
    );
    for (label, g, divisor, _) in graphs.each() {
        rule(100);
        println!("{label} graph (divisor {divisor}: |V|={}, |E|={})", g.num_vertices(), g.num_edges());
        println!(
            "  {:<9} {:<32} {:>10} {:>10} {:>8} {:>12} {:>12}",
            "app", "iPregel version", "iPregel", "naive", "speedup", "iP overhead", "naive ovh"
        );
        compare(label, g, "PageRank", &PageRank { rounds: PAGERANK_ROUNDS, damping: 0.85 },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false });
        compare(label, g, "Hashmin", &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true });
        compare(label, g, "SSSP", &Sssp { source: SSSP_SOURCE },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true });
    }
    rule(100);
    println!(
        "Reading: the speedup column is the paper's contribution isolated from\n\
         the shared-memory architecture; the overhead columns show §6.3's\n\
         single-message mailboxes against dynamically-resizable inbox queues."
    );
}
