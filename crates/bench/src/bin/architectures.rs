//! The Section 2 architecture map, quantified on one workload.
//!
//! The paper's related-work section sorts vertex-centric frameworks into
//! architectures: in-memory shared memory (iPregel — "the fastest"),
//! in-memory distributed memory (Pregel+), and out-of-core (GraphChi,
//! FlashGraph, GraphD). This binary runs the same applications on the
//! workspace's engine for each architecture and prints the trade-off the
//! paper describes: the shared-memory engine wins on time, the
//! out-of-core engine wins on resident memory, the distributed engine
//! buys capacity with network overhead.

use graphd_sim::{run_ooc, DiskModel, OocGraph};
use ipregel::{run, CombinerKind, RunConfig, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::{human_bytes, rule, threads, PaperGraphs, PAGERANK_ROUNDS, SSSP_SOURCE};
use ipregel_graph::Graph;
use pregelplus_sim::{simulate, ClusterSpec, CostModel, MemoryModel};

/// Result comparator: do two value vectors agree for this app?
type Agree<'a, V> = &'a dyn Fn(&[V], &[V]) -> bool;

fn row<P: VertexProgram>(
    g: &Graph,
    divisor: u64,
    app: &'static str,
    p: &P,
    best: Version,
    agree: Agree<'_, P::Value>,
) {
    let cfg = RunConfig { threads: Some(threads()), ..RunConfig::default() };

    // In-memory shared memory: measured.
    let shared = run(g, p, best, &cfg);
    let shared_secs = shared.stats.total_time.as_secs_f64();
    let shared_bytes = shared.footprint.total_bytes() as f64;

    // In-memory distributed (4 nodes): executed + modelled.
    let dist = simulate(
        g,
        p,
        &ClusterSpec::m4_large_scaled(4, divisor),
        &CostModel::default(),
        &MemoryModel::pregel_plus(std::mem::size_of::<P::Message>()).with_scaled_runtime(divisor),
        Some(100_000),
    );
    assert!(agree(&dist.values, &shared.values), "distributed results diverged on {app}");
    let dist_bytes = dist.peak_node_bytes as f64 * 4.0;

    // Out-of-core: executed + disk-modelled.
    let spill = std::env::temp_dir().join(format!("ipregel-arch-{}-{app}.edges", std::process::id()));
    let ooc_graph = OocGraph::from_graph(g, &spill).expect("spill");
    let ooc = run_ooc(&ooc_graph, p, &cfg, &DiskModel::default()).expect("ooc run");
    assert!(agree(&ooc.output.values, &shared.values), "out-of-core results diverged on {app}");

    println!(
        "  {app:<9} {shared_secs:>10.3}s {:>12} {:>10.3}s {:>12} {:>10.3}s {:>12}",
        human_bytes(shared_bytes),
        dist.simulated_seconds,
        human_bytes(dist_bytes),
        ooc.modelled_total_seconds,
        human_bytes(ooc.output.footprint.total_bytes() as f64),
    );
}

fn main() {
    let graphs = PaperGraphs::build();
    println!(
        "Architecture comparison (Section 2): the same applications on the\n\
         in-memory shared-memory engine (measured), a 4-node in-memory\n\
         distributed cluster (simulated), and an out-of-core engine\n\
         (executed, disk modelled at 500 MB/s). {} threads.",
        threads()
    );
    for (label, g, divisor, _) in graphs.each() {
        rule(96);
        println!("{label} graph (divisor {divisor}: |V|={}, |E|={})", g.num_vertices(), g.num_edges());
        println!(
            "  {:<9} {:>11} {:>12} {:>11} {:>12} {:>11} {:>12}",
            "app", "shared", "RAM", "distrib", "agg RAM", "out-of-core", "resident"
        );
        // Float sums reorder across engines: PageRank agreement is to
        // tolerance, integer-valued apps agree exactly.
        let approx = |a: &[f64], b: &[f64]| {
            a.iter().zip(b).all(|(&x, &y)| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-30))
        };
        let exact = |a: &[u32], b: &[u32]| a == b;
        row(g, divisor, "PageRank", &PageRank { rounds: PAGERANK_ROUNDS, damping: 0.85 },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false }, &approx);
        row(g, divisor, "Hashmin", &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true }, &exact);
        row(g, divisor, "SSSP", &Sssp { source: SSSP_SOURCE },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true }, &exact);
    }
    rule(96);
    println!(
        "Reading: shared memory is fastest (the paper's thesis); out-of-core\n\
         holds the smallest resident set (edges stay on disk) at a disk-time\n\
         tax; the distributed cluster multiplies aggregate RAM and pays the\n\
         network."
    );
}
