//! Sections 6.1, 7.4.1 and 7.4.3: the memory-footprint comparisons.
//!
//! Prints three paper-scale tables:
//! 1. the lock-size arithmetic (mutex 40 B vs spinlock 4 B per vertex ⇒
//!    730→73 MB on Wikipedia, 958→96 MB on USA);
//! 2. the per-version footprint model on Wikipedia/USA (mutex ≈ 2 GB,
//!    spinlock/broadcast ≈ 1.5 GB, broadcast+bypass ≈ 2.5 GB);
//! 3. the framework comparison on full Twitter: iPregel ≈ 11 GB vs
//!    Pregel+ ≈ 109 GB vs Giraph ≈ 264 GB (10×/25× smaller; overheads
//!    3 vs 101 vs 256 GB, i.e. 33×/85×).

use ipregel::Version;
use ipregel_bench::{human_bytes, rule};
use ipregel_graph::generators::analogs::{TWITTER_MPI, USA_ROADS, WIKIPEDIA};
use ipregel_mem::{lock_protection_bytes, LayoutModel, LockKind, RssModel};
use pregelplus_sim::MemoryModel;

fn main() {
    // ---- 1. Section 6.1: lock sizes ----
    println!("Section 6.1: data-race protection footprint (one lock per vertex inbox)");
    rule(72);
    println!("{:<22} {:>16} {:>16}", "Graph", "mutex (40 B)", "spinlock (4 B)");
    rule(72);
    for spec in [WIKIPEDIA, USA_ROADS] {
        println!(
            "{:<22} {:>16} {:>16}",
            spec.name,
            human_bytes(lock_protection_bytes(LockKind::Mutex, spec.vertices) as f64),
            human_bytes(lock_protection_bytes(LockKind::Spinlock, spec.vertices) as f64)
        );
    }
    rule(72);
    println!("(paper: 730→73 MB and 958→96 MB, a 90% reduction)\n");

    // ---- 2. Section 7.4.1: per-version footprints ----
    println!("Section 7.4.1: modelled iPregel footprint per version (PageRank layout)");
    rule(72);
    println!("{:<36} {:>14} {:>14}", "Version", "Wikipedia", "USA roads");
    rule(72);
    let model = LayoutModel::pagerank();
    for v in Version::paper_versions() {
        let wiki = model.footprint(v, WIKIPEDIA.vertices, WIKIPEDIA.edges);
        let usa = model.footprint(v, USA_ROADS.vertices, USA_ROADS.edges);
        println!(
            "{:<36} {:>14} {:>14}",
            v.label(),
            human_bytes(wiki.total() as f64),
            human_bytes(usa.total() as f64)
        );
    }
    rule(72);
    println!(
        "(paper measured on Wikipedia: mutex 2 GB, spinlock 1.5 GB, broadcast\n\
         1.5 GB growing to 2.5 GB with the bypass; all versions 1.5–2.8 GB)\n"
    );

    // ---- 3. Section 7.4.3: framework comparison on full Twitter ----
    println!("Section 7.4.3: PageRank on the full Twitter (MPI) graph");
    rule(72);
    let ipregel = RssModel::default();
    let ipregel_total = ipregel.rss_bytes(TWITTER_MPI.vertices, TWITTER_MPI.edges);
    let ipregel_overhead = ipregel.overhead_bytes(TWITTER_MPI.vertices);
    let graph_bytes = RssModel::graph_binary_bytes(TWITTER_MPI.vertices, TWITTER_MPI.edges);
    let pregel = MemoryModel::pregel_plus(8)
        .aggregate_pagerank_bytes(TWITTER_MPI.vertices, TWITTER_MPI.edges, 32) as f64;
    let giraph = MemoryModel::giraph(8)
        .aggregate_pagerank_bytes(TWITTER_MPI.vertices, TWITTER_MPI.edges, 32) as f64;
    println!("{:<12} {:>12} {:>14} {:>18}", "Framework", "total", "overhead", "vs iPregel");
    rule(72);
    println!(
        "{:<12} {:>12} {:>14} {:>18}",
        "iPregel",
        human_bytes(ipregel_total),
        human_bytes(ipregel_overhead),
        "1.0x"
    );
    println!(
        "{:<12} {:>12} {:>14} {:>17.1}x",
        "Pregel+",
        human_bytes(pregel),
        human_bytes(pregel - graph_bytes),
        pregel / ipregel_total
    );
    println!(
        "{:<12} {:>12} {:>14} {:>17.1}x",
        "Giraph",
        human_bytes(giraph),
        human_bytes(giraph - graph_bytes),
        giraph / ipregel_total
    );
    rule(72);
    println!(
        "(paper: iPregel 11.01 GB / 3 GB overhead; Pregel+ 109 GB / 101 GB;\n\
         Giraph 264 GB / 256 GB — 10x and 25x the iPregel total, 33x and 85x\n\
         its overhead)"
    );
}
