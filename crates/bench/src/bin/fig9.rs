//! Figure 9: evolution of the iPregel maximum resident set size on
//! PageRank as the size of synthetic Twitter graphs varies.
//!
//! Three layers, mirroring Section 7.4.2's method:
//! 1. **Measured** — build synthetic graphs proportional to Twitter at
//!    10%…70% (scaled by `IPREGEL_TWITTER_DIVISOR`), run pull-combiner
//!    PageRank, and report the engine's exact byte accounting;
//! 2. **Linearity check** — fit a line through the measured points (the
//!    paper's justification for extrapolating);
//! 3. **Model at paper scale** — the calibrated RSS model reports the
//!    8 GB breaking point (70%), the 100% projection (≈11 GB), and the
//!    Friendster experiment (≈14.45 GB under 16 GB).

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::PageRank;
use ipregel_bench::svg::{save_svg, LineChart, Scale, Series, PALETTE};
use ipregel_bench::{append_result, human_bytes, rule, threads, twitter_divisor, twitter_spec, SEED};
use ipregel_graph::generators::analogs::FRIENDSTER;
use ipregel_graph::NeighborMode;
use ipregel_mem::rss::validate_linear;
use ipregel_mem::{breaking_point_percent, RssModel, GB};

struct Record {
    figure: &'static str,
    percent: u32,
    divisor: u64,
    vertices: usize,
    edges: u64,
    measured_bytes: usize,
    modelled_paper_scale_bytes: f64,
}

ipregel::impl_to_json!(Record { figure, percent, divisor, vertices, edges, measured_bytes, modelled_paper_scale_bytes });

fn main() {
    let divisor = twitter_divisor();
    let spec = twitter_spec();
    let model = RssModel::default();

    println!(
        "Figure 9: iPregel maximum resident set size of PageRank as the size of\n\
         synthetic Twitter graphs varies (divisor {divisor}, {} threads)",
        threads()
    );
    rule(78);
    println!(
        "{:>8} {:>12} {:>14} {:>16} {:>18}",
        "percent", "|V|", "|E|", "measured (RSS)", "model@paper scale"
    );

    let mut measured_points = Vec::new();
    for pct in [10u32, 20, 30, 40, 50, 60, 70] {
        let g = spec.percent_analog(pct, divisor, SEED + u64::from(pct), NeighborMode::InOnly);
        let cfg = RunConfig { threads: Some(threads()), ..RunConfig::default() };
        let out = run(
            &g,
            &PageRank { rounds: 5, damping: 0.85 },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &cfg,
        );
        let measured = out.footprint.total_bytes();
        let modelled = model.rss_at_percent(spec.vertices, spec.edges, pct);
        println!(
            "{:>7}% {:>12} {:>14} {:>16} {:>18}",
            pct,
            g.num_vertices(),
            g.num_edges(),
            human_bytes(measured as f64),
            human_bytes(modelled)
        );
        measured_points.push((f64::from(pct), measured as f64));
        append_result(
            "fig9.jsonl",
            &Record {
                figure: "fig9",
                percent: pct,
                divisor,
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                measured_bytes: measured,
                modelled_paper_scale_bytes: modelled,
            },
        );
    }
    rule(78);

    // Figure file: measured sweep (left axis implicitly scaled down by
    // the divisor) and the paper-scale model, both linear in percent —
    // the visual claim of Figure 9.
    let chart = LineChart {
        title: "Figure 9 — memory vs synthetic Twitter scale".into(),
        x_label: "size of synthetic graph vs Twitter (%)".into(),
        y_label: "bytes at paper scale".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Linear,
        series: vec![
            Series {
                // Measured at 1/divisor scale; multiply back up so both
                // series share the paper-scale axis.
                name: format!("measured accounting x{divisor}"),
                points: measured_points
                    .iter()
                    .map(|&(x, y)| (x, y * divisor as f64))
                    .collect(),
                color: PALETTE[0].into(),
                dashed: false,
            },
            Series {
                name: "model @ paper scale".into(),
                points: (1..=10)
                    .map(|i| {
                        let pct = i * 10;
                        (f64::from(pct), model.rss_at_percent(spec.vertices, spec.edges, pct))
                    })
                    .collect(),
                color: PALETTE[1].into(),
                dashed: true,
            },
        ],
    };
    if let Some(path) = save_svg("fig9.svg", &chart.to_svg()) {
        println!("figure written to {}", path.display());
    }

    let deviation = validate_linear(&measured_points);
    println!(
        "Linearity of the measured sweep: max relative deviation from the fitted\n\
         line = {:.2}% (the paper's linear projection is justified below ~5%).",
        deviation * 100.0
    );

    println!();
    println!("Projections at paper scale (calibrated RSS model):");
    let bp = breaking_point_percent(&model, spec.vertices, spec.edges, 8.0 * GB);
    println!(
        "  breaking point under 8 GB : {} (paper: 70%)",
        bp.map_or("none".to_string(), |p| format!("{p}%"))
    );
    let full = model.rss_bytes(spec.vertices, spec.edges);
    println!("  100% Twitter requirement  : {} (paper: 11.01 GB)", human_bytes(full));
    let friendster = model.rss_bytes(FRIENDSTER.vertices, FRIENDSTER.edges);
    println!(
        "  Friendster under 16 GB    : {} (paper: 14.45 GB) -> fits: {}",
        human_bytes(friendster),
        friendster < 16.0 * GB
    );
}
