//! Figure 8: evolution of the Pregel+ runtime as the number of nodes
//! varies, against the iPregel single-node reference.
//!
//! For each application and graph this binary:
//! 1. measures iPregel's best version on a single node (broadcast for
//!    PageRank, spinlock + selection bypass for Hashmin and SSSP — the
//!    Section 7.2 winners);
//! 2. simulates Pregel+ on 1, 2, 4, 8 and 16 two-core nodes, with memory
//!    failures detected per node (the figure's shaded region);
//! 3. applies the paper's footnote-8 extrapolation (constant doubling
//!    efficiency) backward over failures and forward past 16 nodes;
//! 4. reports the lead change — the node count at which Pregel+ first
//!    outperforms iPregel.

use ipregel::{run, CombinerKind, RunConfig, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::svg::{save_svg, LineChart, Scale, Series, PALETTE};
use ipregel_bench::{
    append_result, rule, threads, PaperGraphs, PAGERANK_ROUNDS, SSSP_SOURCE,
};
use ipregel_graph::Graph;
use pregelplus_sim::{
    extrapolate_series, lead_change, simulate, ClusterSpec, CostModel, MemoryModel, NodesPoint,
};

const MEASURED_NODES: [usize; 5] = [1, 2, 4, 8, 16];
const EXTRAPOLATE_TO: usize = 32_768;

struct Record {
    figure: &'static str,
    graph: String,
    app: &'static str,
    ipregel_seconds: f64,
    series: Vec<NodesPoint>,
    lead_change: Option<usize>,
}

ipregel::impl_to_json!(Record { figure, graph, app, ipregel_seconds, series, lead_change });

fn bench_app<P: VertexProgram>(
    graph_label: &str,
    g: &Graph,
    divisor: u64,
    app: &'static str,
    program: &P,
    ipregel_version: Version,
) {
    // 1. iPregel single-node reference (measured).
    let cfg = RunConfig { threads: Some(threads()), ..RunConfig::default() };
    let reference = run(g, program, ipregel_version, &cfg);
    let ref_secs = reference.stats.total_time.as_secs_f64();

    // 2. Pregel+ simulation across node counts. Per-operation costs and
    // the per-superstep barrier are physical constants — they do NOT
    // scale with the graph divisor (a real cluster's barrier doesn't
    // shrink when the graph does; this fixed floor is exactly what makes
    // the paper's SSSP/USA configuration unwinnable for Pregel+).
    let cost = CostModel::default();
    let memory = MemoryModel::pregel_plus(std::mem::size_of::<P::Message>())
        .with_scaled_runtime(divisor);
    let mut series = Vec::new();
    for nodes in MEASURED_NODES {
        let cluster = ClusterSpec::m4_large_scaled(nodes, divisor);
        let out = simulate(g, program, &cluster, &cost, &memory, Some(100_000));
        if out.memory_ok {
            series.push(NodesPoint::measured(nodes, out.simulated_seconds));
        } else {
            series.push(NodesPoint::failed(nodes));
        }
    }

    // 3. Footnote-8 extrapolation, backward over failures and forward.
    let extended = extrapolate_series(&series, EXTRAPOLATE_TO);

    // 4. Lead change.
    let lc = lead_change(&extended, ref_secs);

    println!("\n  {app} — iPregel reference ({}) = {ref_secs:.3}s", ipregel_version.label());
    println!("    {:>6} {:>14} {:>14}", "nodes", "Pregel+ (s)", "note");
    for p in &extended {
        if p.nodes > 16 && lc.map_or(p.nodes > 64, |l| p.nodes > (4 * l).max(64)) {
            continue; // keep the printout short past the interesting range
        }
        let note = match (p.seconds, p.extrapolated) {
            (None, _) => "memory failure",
            (Some(_), true) => "extrapolated",
            (Some(_), false) => "",
        };
        match p.seconds {
            Some(s) => println!("    {:>6} {:>14.3} {:>14}", p.nodes, s, note),
            None => println!("    {:>6} {:>14} {:>14}", p.nodes, "-", note),
        }
    }
    match lc {
        Some(n) => println!("    -> lead change at {n} nodes"),
        None => println!(
            "    -> no lead change within {EXTRAPOLATE_TO} nodes (paper reports \
             >15,000 for SSSP/USA)"
        ),
    }
    // Figure file: measured solid, extrapolated dashed, iPregel as a
    // horizontal reference line — the visual grammar of the paper's
    // Figure 8 panels.
    let cap = lc.map_or(64, |l| (4 * l).max(64));
    let visible: Vec<&NodesPoint> =
        extended.iter().filter(|p| p.nodes <= cap && p.seconds.is_some()).collect();
    let measured: Vec<(f64, f64)> = visible
        .iter()
        .filter(|p| !p.extrapolated)
        .map(|p| (p.nodes as f64, p.seconds.unwrap()))
        .collect();
    let mut extra: Vec<(f64, f64)> = visible
        .iter()
        .filter(|p| p.extrapolated)
        .map(|p| (p.nodes as f64, p.seconds.unwrap()))
        .collect();
    if let (Some(&last), true) = (measured.last(), !extra.is_empty()) {
        extra.insert(0, last); // join the dashed segment to the solid one
    }
    let max_x = visible.last().map_or(16.0, |p| p.nodes as f64);
    let chart = LineChart {
        title: format!("Figure 8 — {app}, {graph_label} analog"),
        x_label: "nodes".into(),
        y_label: "runtime (s)".into(),
        x_scale: Scale::Log,
        y_scale: Scale::Log,
        series: vec![
            Series { name: "Pregel+ measured".into(), points: measured, color: PALETTE[0].into(), dashed: false },
            Series { name: "Pregel+ extrapolated".into(), points: extra, color: PALETTE[0].into(), dashed: true },
            Series {
                name: "iPregel single-node".into(),
                points: vec![(1.0, ref_secs), (max_x, ref_secs)],
                color: PALETTE[1].into(),
                dashed: false,
            },
        ],
    };
    let file = format!("fig8_{}_{}.svg", graph_label.replace(' ', "_"), app.to_lowercase());
    if let Some(path) = save_svg(&file, &chart.to_svg()) {
        println!("    figure written to {}", path.display());
    }
    append_result(
        "fig8.jsonl",
        &Record {
            figure: "fig8",
            graph: graph_label.to_string(),
            app,
            ipregel_seconds: ref_secs,
            series: extended,
            lead_change: lc,
        },
    );
}

fn main() {
    let graphs = PaperGraphs::build();
    println!(
        "Figure 8: Evolution of the Pregel+ runtime (simulated) of PageRank,\n\
         Hashmin and SSSP as the number of nodes varies, vs the measured\n\
         iPregel single-node reference ({} threads).",
        threads()
    );

    let broadcast = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
    let spin_bypass = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };

    for (label, g, divisor, _) in graphs.each() {
        rule(78);
        println!(
            "{label} graph (divisor {divisor}: |V|={}, |E|={})",
            g.num_vertices(),
            g.num_edges()
        );
        bench_app(label, g, divisor, "PageRank", &PageRank { rounds: PAGERANK_ROUNDS, damping: 0.85 }, broadcast);
        bench_app(label, g, divisor, "Hashmin", &Hashmin, spin_bypass);
        bench_app(label, g, divisor, "SSSP", &Sssp { source: SSSP_SOURCE }, spin_bypass);
    }
    rule(78);
    println!(
        "Paper shape to compare against: iPregel wins on a single node for every\n\
         app/graph (3.5–70×); Pregel+ needs ≥11 nodes to catch up (11/30 PageRank,\n\
         11/11 Hashmin, 13/>15,000 SSSP on Wikipedia/USA respectively); low node\n\
         counts hit memory failures."
    );
}
