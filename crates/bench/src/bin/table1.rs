//! Table 1: graphs used in the comparison with Pregel+.
//!
//! Prints the paper-scale |V| and |E| of both datasets (exact, from the
//! specs) and the measured statistics of the scaled analogs the harness
//! actually runs on, so the fidelity of the stand-ins is visible.

use ipregel_bench::{PaperGraphs, rule};
use ipregel_graph::stats::{group_digits, GraphStats};

fn main() {
    let graphs = PaperGraphs::build();

    println!("Table 1: Graphs used in the comparison with Pregel+ (paper scale)");
    rule(72);
    println!("{:<22} {:>14} {:>16}", "Name", "|V|", "|E|");
    rule(72);
    for (_, _, _, spec) in graphs.each() {
        println!(
            "{:<22} {:>14} {:>16}",
            spec.name,
            group_digits(spec.vertices),
            group_digits(spec.edges)
        );
    }
    rule(72);

    println!();
    println!("Scaled analogs used by this harness:");
    rule(72);
    for (label, g, divisor, spec) in graphs.each() {
        let s = GraphStats::compute(g);
        println!("{label} (divisor {divisor}):");
        println!("  {s}");
        println!(
            "  avg out-degree paper {:.2} vs analog {:.2}; addressing: {:?} (base {})",
            spec.avg_out_degree(),
            s.avg_out_degree,
            g.address_map().mode(),
            g.address_map().base()
        );
    }
    rule(72);
}
