//! Scheduling sweep: every `Schedule` policy on skewed synthetic graphs.
//!
//! The paper's conclusion leaves load balancing open; its follow-up
//! (Capelli & Brown, arXiv:2010.01542) shows vertex-count chunking
//! collapsing on power-law graphs. This binary quantifies the gap on two
//! independent skew generators — R-MAT (Graph500 parameters) and
//! Barabási–Albert preferential attachment — plus a near-uniform
//! small-world control where vertex- and edge-balancing should tie.
//!
//! For each (graph, app, schedule) it reports runtime and the per-chunk
//! imbalance metrics recorded in `RunStats` (max/mean planned chunk edge
//! weight, max/mean measured chunk duration), prints the edge/vertex
//! comparison, and appends JSON records under `results/scheduling.jsonl`.
//!
//! Scale with `IPREGEL_SCHED_DIVISOR` (default 8; smaller = bigger
//! graphs) and `IPREGEL_THREADS` (default 2).

use ipregel::{run, RunConfig, RunStats, Schedule, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::{append_result, rule, secs, threads, SEED};
use ipregel_graph::generators::{barabasi_albert_edges, rmat_edges, watts_strogatz_edges, RmatParams};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};

struct Record {
    figure: &'static str,
    graph: &'static str,
    vertices: usize,
    edges: u64,
    max_out_degree: u32,
    app: &'static str,
    version: String,
    schedule: &'static str,
    threads: usize,
    seconds: f64,
    supersteps: usize,
    worst_edge_imbalance: f64,
    worst_duration_imbalance: f64,
}

ipregel::impl_to_json!(Record { figure, graph, vertices, edges, max_out_degree, app, version, schedule, threads, seconds, supersteps, worst_edge_imbalance, worst_duration_imbalance });

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build(n: u32, edges: &[(u32, u32)], symmetric: bool) -> Graph {
    // Declare the full 0-based range: skewed generators can leave
    // isolated vertices that would otherwise break the consecutive-ids
    // requirement.
    let mut b =
        GraphBuilder::with_capacity(NeighborMode::Both, edges.len() * 2).declare_id_range(0, n);
    for &(u, v) in edges {
        b.add_edge(u, v);
        if symmetric && u != v {
            b.add_edge(v, u);
        }
    }
    b.build().expect("generator produced an unbuildable graph")
}

fn max_out_degree(g: &Graph) -> u32 {
    g.address_map().live_slots().map(|v| g.out_degree(v)).max().unwrap_or(0)
}

struct Measured {
    seconds: f64,
    stats: RunStats,
}

fn measure<P: VertexProgram>(g: &Graph, p: &P, version: Version, schedule: Schedule) -> Measured {
    let cfg = RunConfig {
        threads: Some(threads()),
        schedule,
        ..RunConfig::default()
    };
    let out = run(g, p, version, &cfg);
    Measured { seconds: out.stats.total_time.as_secs_f64(), stats: out.stats }
}

fn sweep<P: VertexProgram>(
    graph_label: &'static str,
    g: &Graph,
    app: &'static str,
    p: &P,
    version: Version,
) {
    println!("\n  {app} ({}):", version.label());
    println!(
        "    {:<10} {:>10} {:>11} {:>14} {:>14}",
        "Schedule", "Runtime(s)", "Supersteps", "EdgeImbal", "DurImbal"
    );
    let mut by_schedule: Vec<(Schedule, Measured)> = Vec::new();
    for schedule in Schedule::all() {
        let m = measure(g, p, version, schedule);
        println!(
            "    {:<10} {:>10} {:>11} {:>14.2} {:>14.2}",
            schedule.label(),
            secs(m.stats.total_time),
            m.stats.num_supersteps(),
            m.stats.worst_edge_imbalance(),
            m.stats.worst_duration_imbalance(),
        );
        append_result(
            "scheduling.jsonl",
            &Record {
                figure: "scheduling",
                graph: graph_label,
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                max_out_degree: max_out_degree(g),
                app,
                version: version.label(),
                schedule: schedule.label(),
                threads: threads(),
                seconds: m.seconds,
                supersteps: m.stats.num_supersteps(),
                worst_edge_imbalance: m.stats.worst_edge_imbalance(),
                worst_duration_imbalance: m.stats.worst_duration_imbalance(),
            },
        );
        by_schedule.push((schedule, m));
    }
    let vertex = &by_schedule[0].1;
    let edge = &by_schedule[1].1;
    println!(
        "    -> edge vs vertex: runtime ×{:.2}, worst edge imbalance {:.2} -> {:.2}, \
         worst duration imbalance {:.2} -> {:.2}",
        edge.seconds / vertex.seconds.max(1e-12),
        vertex.stats.worst_edge_imbalance(),
        edge.stats.worst_edge_imbalance(),
        vertex.stats.worst_duration_imbalance(),
        edge.stats.worst_duration_imbalance(),
    );
}

fn main() {
    let divisor = env_u64("IPREGEL_SCHED_DIVISOR", 8).max(1) as u32;
    let rmat_n = (400_000 / divisor).max(64);
    let ba_n = (240_000 / divisor).max(64);
    let ws_n = (200_000 / divisor).max(64);

    println!(
        "Scheduling sweep: vertex- vs edge-balanced superstep chunking \
         ({} threads, divisor {divisor})",
        threads()
    );

    let graphs: [(&'static str, Graph); 3] = [
        (
            "rmat",
            build(
                rmat_n,
                &rmat_edges(rmat_n, u64::from(rmat_n) * 8, RmatParams::GRAPH500, SEED),
                true,
            ),
        ),
        ("barabasi", build(ba_n, &barabasi_albert_edges(ba_n, 4, SEED + 1), true)),
        // Near-uniform control: every schedule should tie here.
        ("watts-strogatz", build(ws_n, &watts_strogatz_edges(ws_n, 6, 0.05, SEED + 2), true)),
    ];

    let spin_bypass = Version { combiner: ipregel::CombinerKind::Spinlock, selection_bypass: true };
    let broadcast = Version { combiner: ipregel::CombinerKind::Broadcast, selection_bypass: false };

    for (label, g) in &graphs {
        rule(78);
        println!(
            "{label} graph: |V|={}, |E|={}, max out-degree {}",
            g.num_vertices(),
            g.num_edges(),
            max_out_degree(g)
        );
        sweep(label, g, "PageRank", &PageRank { rounds: 10, damping: 0.85 }, broadcast);
        sweep(label, g, "Hashmin", &Hashmin, spin_bypass);
        sweep(label, g, "SSSP", &Sssp { source: 2 }, spin_bypass);
    }
    rule(78);
    println!(
        "Expected shape: on the skewed graphs (rmat, barabasi) the edge schedule\n\
         cuts the max/mean chunk ratios toward 1 and runs no slower than vertex;\n\
         adaptive matches edge there and vertex on the uniform control."
    );
}
