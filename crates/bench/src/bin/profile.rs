//! Section 7.1.4's activity evolutions, visualised, plus the selection
//! cost share Section 4 attacks.
//!
//! The paper picks its three applications because their active-vertex
//! profiles differ: "constantly all active in PageRank, decreasing from
//! all active to none in Hashmin and in SSSP it starts with one active
//! vertex typically followed by a bell evolution". This binary prints
//! those profiles as sparklines from real runs, and for each app the
//! fraction of runtime spent selecting active vertices under scan vs
//! bypass selection.

use ipregel::{run, CombinerKind, RunConfig, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::{rule, threads, PaperGraphs, PAGERANK_ROUNDS, SSSP_SOURCE};
use ipregel_graph::Graph;

fn profile_app<P: VertexProgram>(g: &Graph, app: &'static str, p: &P, bypass_ok: bool) {
    let cfg = RunConfig { threads: Some(threads()), ..RunConfig::default() };
    let scan = run(
        g,
        p,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &cfg,
    );
    let spark = scan.stats.activity_sparkline();
    let shown: String = if spark.len() > 60 {
        let head: String = spark.chars().take(57).collect();
        format!("{head}...")
    } else {
        spark
    };
    let sel_share = |stats: &ipregel::RunStats| {
        let total = stats.total_time.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            100.0 * stats.total_selection_time().as_secs_f64() / total
        }
    };
    println!("  {app:<9} [{shown}]");
    println!(
        "  {:<9} supersteps {:>5}, peak active {:>8}, scan selection {:>4.1}% of runtime",
        "",
        scan.stats.num_supersteps(),
        scan.stats.peak_active(),
        sel_share(&scan.stats)
    );
    if bypass_ok {
        let bypass = run(
            g,
            p,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &cfg,
        );
        println!(
            "  {:<9} with bypass: selection {:>4.1}% of runtime ({} -> {} total)",
            "",
            sel_share(&bypass.stats),
            format_args!("{:.3}s", scan.stats.total_time.as_secs_f64()),
            format_args!("{:.3}s", bypass.stats.total_time.as_secs_f64()),
        );
    } else {
        println!("  {:<9} (bypass not applicable: vertices do not halt every superstep)", "");
    }
}

fn main() {
    let graphs = PaperGraphs::build();
    println!(
        "Active-vertex profiles (Section 7.1.4) and selection cost (Section 4),\n\
         spinlock combiner, {} threads. Sparkline: one char per superstep,\n\
         height = active vertices relative to the run's peak.",
        threads()
    );
    for (label, g, divisor, _) in graphs.each() {
        rule(78);
        println!("{label} graph (divisor {divisor}: |V|={}, |E|={})", g.num_vertices(), g.num_edges());
        profile_app(g, "PageRank", &PageRank { rounds: PAGERANK_ROUNDS, damping: 0.85 }, false);
        profile_app(g, "Hashmin", &Hashmin, true);
        profile_app(g, "SSSP", &Sssp { source: SSSP_SOURCE }, true);
    }
    rule(78);
}
