//! In-tree micro-benchmark harness, replacing the `criterion` dev
//! dependency for the `harness = false` bench targets.
//!
//! The module exposes exactly the criterion surface those files used —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — so porting a bench file is a one-line import change.
//!
//! What it does NOT do: statistical outlier classification, regression
//! detection against saved baselines, or plotting. Each benchmark is
//! timed as `sample_size` wall-clock samples (after one warm-up call)
//! and reported as min / median / mean. That is adequate for the
//! relative comparisons these files make (mailbox flavors, addressing
//! schemes, version sweeps); absolute confidence intervals were always
//! the job of the `src/bin` harnesses, which run their own repetition
//! protocol.
//!
//! Environment knobs:
//! - `IPREGEL_BENCH_SAMPLES=N` overrides every group's sample count
//!   (useful to smoke-run the suite quickly: `IPREGEL_BENCH_SAMPLES=2`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to each registered benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { name, sample_size: 100 }
    }

    /// A single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup { name: id.clone(), sample_size: 100 };
        group.run_named(&id, f);
    }
}

/// A named benchmark within a group, as criterion's `BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the swept parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(format!("{p}"))
    }
}

/// A group of benchmarks sharing a sample count and a report prefix.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f`'s [`Bencher::iter`] body under `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.0.clone();
        self.run_named(&label, f);
    }

    /// Criterion's input-threading variant; the input is borrowed by the
    /// closure exactly as before.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.0.clone();
        self.run_named(&label, |b| f(b, input));
    }

    /// End the group (report lines were already printed per benchmark).
    pub fn finish(self) {}

    fn run_named<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = std::env::var("IPREGEL_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(self.sample_size, |n| n.max(1));
        let mut bencher = Bencher { samples, durations: Vec::with_capacity(samples) };
        f(&mut bencher);
        report(&self.name, label, &mut bencher.durations);
    }
}

/// The timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once untimed (warm-up), then `sample_size` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(group: &str, label: &str, durations: &mut [Duration]) {
    if durations.is_empty() {
        println!("{group}/{label:<24} (no samples: closure never called iter)");
        return;
    }
    durations.sort_unstable();
    let min = durations[0];
    let median = durations[durations.len() / 2];
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    println!(
        "{group}/{label:<24} min {:>12} | median {:>12} | mean {:>12} ({} samples)",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(mean),
        durations.len(),
    );
}

fn fmt_dur(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one runner, as criterion's macro did.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench target. Ignores the
/// `--bench` flag and any filter arguments cargo passes through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

// Re-export the crate-root macros here so bench files can import the
// whole surface from one path, mirroring `use criterion::{...}`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        std::env::remove_var("IPREGEL_BENCH_SAMPLES");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_threads_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke_input");
        group.sample_size(2);
        let input = 21u64;
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &x| {
            b.iter(|| seen = x * 2);
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_dur(Duration::from_nanos(42)), "42 ns");
        assert_eq!(fmt_dur(Duration::from_micros(150)), "150.00 µs");
        assert_eq!(fmt_dur(Duration::from_millis(25)), "25.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(12)), "12.00 s");
    }
}
