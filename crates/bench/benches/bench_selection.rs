//! Section 4 ablation: scan selection vs the selection bypass as the
//! active ratio shrinks. SSSP on a long path is the extreme case — one
//! active vertex per superstep, so the scan's per-superstep O(|V|) check
//! dominates while the bypass touches only the frontier.

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::Sssp;
use ipregel_graph::generators::analogs::USA_ROADS;
use ipregel_graph::generators::erdos_renyi::erdos_renyi_edges;
use ipregel_graph::{GraphBuilder, NeighborMode};
use std::hint::black_box;

fn selection(c: &mut Criterion) {
    // Sparse, high-diameter road analog: the bypass's best case.
    let road = USA_ROADS.analog_graph(4000, 7, NeighborMode::Both);
    // Dense random graph: shallow BFS tree, bypass matters less.
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for (u, v) in erdos_renyi_edges(5_000, 50_000, 11) {
        b.add_edge(u, v);
    }
    let dense = b.build().unwrap();

    for (label, g) in [("road", &road), ("dense", &dense)] {
        let mut group = c.benchmark_group(format!("selection_sssp_{label}"));
        group.sample_size(10);
        for (name, bypass) in [("scan", false), ("bypass", true)] {
            let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: bypass };
            group.bench_function(BenchmarkId::from_parameter(name), |bch| {
                bch.iter(|| black_box(run(g, &Sssp { source: 2 }, v, &RunConfig::default())));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, selection);
criterion_main!(benches);
