//! Criterion companion to the Figure 7 binary: the full version sweep on
//! small analogs, with statistical rigour (the paper reruns until the
//! 99%-confidence margin is under 1% — criterion's sampling is the
//! modern equivalent).

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipregel::{run, RunConfig, Version, VertexProgram};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::SEED;
use ipregel_graph::generators::analogs::{USA_ROADS, WIKIPEDIA};
use ipregel_graph::{Graph, NeighborMode};
use std::hint::black_box;

fn bench_app<P: VertexProgram>(
    c: &mut Criterion,
    group_name: &str,
    g: &Graph,
    program: &P,
    versions: &[Version],
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &v in versions {
        group.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            b.iter(|| black_box(run(g, program, v, &RunConfig::default())));
        });
    }
    group.finish();
}

fn fig7(c: &mut Criterion) {
    // Bench-sized analogs (larger divisors than the figure binary).
    let wiki = WIKIPEDIA.analog_graph(2000, SEED, NeighborMode::Both);
    let usa = USA_ROADS.analog_graph(4000, SEED + 1, NeighborMode::Both);
    let all = Version::paper_versions();
    let no_bypass: Vec<Version> = all.iter().copied().filter(|v| !v.selection_bypass).collect();

    for (label, g) in [("wiki", &wiki), ("usa", &usa)] {
        bench_app(c, &format!("fig7_pagerank_{label}"), g, &PageRank { rounds: 10, damping: 0.85 }, &no_bypass);
        bench_app(c, &format!("fig7_hashmin_{label}"), g, &Hashmin, &all);
        bench_app(c, &format!("fig7_sssp_{label}"), g, &Sssp { source: 2 }, &all);
    }
}

criterion_group!(benches, fig7);
criterion_main!(benches);
