//! Section 5 ablation: identifier-to-location translation cost of the
//! three iPregel strategies against the conventional hashmap layer the
//! paper argues against. The array strategies should be near-free; the
//! hashmap pays hashing and cache misses on every delivery.

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipregel_graph::{AddressMap, HashAddressMap};
use std::hint::black_box;

const N: u32 = 1_000_000;
const LOOKUPS: usize = 1_000_000;

fn lookup_ids(base: u32) -> Vec<u32> {
    // Deterministic pseudo-random id stream in [base, base + N).
    let mut ids = Vec::with_capacity(LOOKUPS);
    let mut x = 0x2545f491u32;
    for _ in 0..LOOKUPS {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        ids.push(base + (x % N));
    }
    ids
}

fn addressing(c: &mut Criterion) {
    let mut group = c.benchmark_group("addressing_lookup");
    group.sample_size(20);

    let direct = AddressMap::direct(N);
    let ids0 = lookup_ids(0);
    group.bench_function(BenchmarkId::from_parameter("direct"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids0 {
                acc += u64::from(direct.index_of(black_box(id)));
            }
            black_box(acc)
        })
    });

    let offset = AddressMap::offset(1_000_000, N);
    let ids_off = lookup_ids(1_000_000);
    group.bench_function(BenchmarkId::from_parameter("offset"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids_off {
                acc += u64::from(offset.index_of(black_box(id)));
            }
            black_box(acc)
        })
    });

    let desolate = AddressMap::desolate(1, N);
    let ids1 = lookup_ids(1);
    group.bench_function(BenchmarkId::from_parameter("desolate"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids1 {
                acc += u64::from(desolate.index_of(black_box(id)));
            }
            black_box(acc)
        })
    });

    let hash = HashAddressMap::new(1, N);
    group.bench_function(BenchmarkId::from_parameter("hashmap"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids1 {
                acc += u64::from(hash.index_of(black_box(id)).unwrap());
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, addressing);
criterion_main!(benches);
