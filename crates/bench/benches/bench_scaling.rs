//! Internal-parallelism ablation (the paper's future-work item): how the
//! engines scale with thread count and load-balancing grain.
//!
//! The paper ran everything on 2 threads (its EC2 nodes had 2 cores) and
//! closes by naming "further investigations about load-balancing
//! strategies and internal parallelism" as future work; this suite is
//! that investigation at benchmark scale.

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::{Hashmin, PageRank};
use ipregel_bench::SEED;
use ipregel_graph::generators::analogs::WIKIPEDIA;
use ipregel_graph::NeighborMode;
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let g = WIKIPEDIA.analog_graph(1500, SEED, NeighborMode::Both);

    // Thread scaling of the two engine shapes.
    for (label, combiner) in
        [("push_spin", CombinerKind::Spinlock), ("pull", CombinerKind::Broadcast)]
    {
        let mut group = c.benchmark_group(format!("threads_pagerank_{label}"));
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig { threads: Some(threads), ..RunConfig::default() };
            let v = Version { combiner, selection_bypass: false };
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
                b.iter(|| {
                    black_box(run(&g, &PageRank { rounds: 5, damping: 0.85 }, v, &cfg))
                });
            });
        }
        group.finish();
    }

    // Grain (minimum vertices per pool task): too fine pays scheduling
    // overhead, too coarse loses balance on skewed frontiers.
    let mut group = c.benchmark_group("grain_hashmin_spin_bypass");
    group.sample_size(10);
    for grain in [1usize, 64, 1024, 16_384] {
        let cfg = RunConfig { grain: Some(grain), ..RunConfig::default() };
        let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
        group.bench_with_input(BenchmarkId::from_parameter(grain), &grain, |b, _| {
            b.iter(|| black_box(run(&g, &Hashmin, v, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
