//! Section 6.1 ablation: delivery throughput of the three push-mailbox
//! synchronisation strategies (block-waiting mutex, busy-waiting
//! spinlock, lock-free CAS) under contention and without.

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipregel::{AtomicMailbox, Mailbox, MutexMailbox, SpinMailbox};
use ipregel_par::prelude::*;
use std::hint::black_box;

fn min32(old: &mut u32, new: u32) {
    if new < *old {
        *old = new;
    }
}

/// `threads × per_thread` deliveries spread over `mailboxes` boxes.
fn hammer<MB: Mailbox<u32>>(mailboxes: usize, deliveries: usize) -> u64 {
    let boxes: Vec<MB> = (0..mailboxes).map(|_| MB::empty()).collect();
    (0..deliveries).into_par_iter().for_each(|i| {
        let target = (i * 2654435761) % mailboxes;
        boxes[target].deliver((i as u32) | 1, min32);
    });
    boxes.iter().filter(|b| b.has_message()).count() as u64
}

fn combiners(c: &mut Criterion) {
    const DELIVERIES: usize = 200_000;
    // Spread regime: many mailboxes, little contention (the common case —
    // one inbox per vertex).
    let mut spread = c.benchmark_group("combiner_deliver_spread");
    spread.sample_size(20);
    spread.bench_function(BenchmarkId::from_parameter("mutex"), |b| {
        b.iter(|| black_box(hammer::<MutexMailbox<u32>>(50_000, DELIVERIES)))
    });
    spread.bench_function(BenchmarkId::from_parameter("spinlock"), |b| {
        b.iter(|| black_box(hammer::<SpinMailbox<u32>>(50_000, DELIVERIES)))
    });
    spread.bench_function(BenchmarkId::from_parameter("lockfree"), |b| {
        b.iter(|| black_box(hammer::<AtomicMailbox<u32>>(50_000, DELIVERIES)))
    });
    spread.finish();

    // Contended regime: few mailboxes, heavy collisions (hub vertices of
    // a power-law graph) — where busy-waiting reactivity matters.
    let mut hot = c.benchmark_group("combiner_deliver_contended");
    hot.sample_size(20);
    hot.bench_function(BenchmarkId::from_parameter("mutex"), |b| {
        b.iter(|| black_box(hammer::<MutexMailbox<u32>>(8, DELIVERIES)))
    });
    hot.bench_function(BenchmarkId::from_parameter("spinlock"), |b| {
        b.iter(|| black_box(hammer::<SpinMailbox<u32>>(8, DELIVERIES)))
    });
    hot.bench_function(BenchmarkId::from_parameter("lockfree"), |b| {
        b.iter(|| black_box(hammer::<AtomicMailbox<u32>>(8, DELIVERIES)))
    });
    hot.finish();
}

criterion_group!(benches, combiners);
criterion_main!(benches);
