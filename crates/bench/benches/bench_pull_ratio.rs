//! Section 6.2 ablation: pull-combiner sensitivity to the active-vertex
//! ratio. The paper's factor (1): every vertex fetches from all its
//! in-neighbours each superstep, so the fewer of them actually
//! broadcast, the more fetches are unfruitful. We fix the graph and vary
//! the fraction of vertices that keep broadcasting; the pull engine's
//! time per superstep should stay roughly flat (the gather dominates)
//! while the push engine's shrinks with the ratio.

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipregel::{run, CombinerKind, Context, RunConfig, Version, VertexProgram};
use ipregel_graph::generators::erdos_renyi::erdos_renyi_edges;
use ipregel_graph::{GraphBuilder, NeighborMode, VertexId};
use std::hint::black_box;

/// Vertices whose id hashes below the threshold stay active and
/// broadcast for `rounds` supersteps; the rest halt immediately.
struct PartialBroadcast {
    /// Active fraction in percent.
    percent: u32,
    rounds: usize,
}

impl VertexProgram for PartialBroadcast {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId) -> u64 {
        0
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
        while let Some(m) = ctx.next_message() {
            *value = value.wrapping_add(m);
        }
        let chatty = (ctx.id().wrapping_mul(2654435761) % 100) < self.percent;
        if chatty && ctx.superstep() < self.rounds {
            ctx.broadcast(1);
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(old: &mut u64, new: u64) {
        *old += new;
    }
}

fn pull_ratio(c: &mut Criterion) {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for (u, v) in erdos_renyi_edges(20_000, 200_000, 5) {
        b.add_edge(u, v);
    }
    let g = b.build().unwrap();

    for (engine, combiner) in
        [("pull", CombinerKind::Broadcast), ("push_spin", CombinerKind::Spinlock)]
    {
        let mut group = c.benchmark_group(format!("pull_ratio_{engine}"));
        group.sample_size(10);
        for percent in [5u32, 25, 50, 100] {
            let p = PartialBroadcast { percent, rounds: 8 };
            let v = Version { combiner, selection_bypass: false };
            group.bench_with_input(BenchmarkId::from_parameter(percent), &percent, |bch, _| {
                bch.iter(|| black_box(run(&g, &p, v, &RunConfig::default())));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, pull_ratio);
criterion_main!(benches);
