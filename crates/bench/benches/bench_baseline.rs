//! Criterion companion to the `baseline` binary: iPregel's best version
//! against the naive shared-memory engine, per application.

use ipregel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use femtograph_sim::run_naive;
use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::{Hashmin, PageRank, Sssp};
use ipregel_bench::SEED;
use ipregel_graph::generators::analogs::WIKIPEDIA;
use ipregel_graph::NeighborMode;
use std::hint::black_box;

fn baseline(c: &mut Criterion) {
    let g = WIKIPEDIA.analog_graph(2000, SEED, NeighborMode::Both);
    let cfg = RunConfig::default();

    let mut pr = c.benchmark_group("baseline_pagerank");
    pr.sample_size(10);
    let p = PageRank { rounds: 10, damping: 0.85 };
    pr.bench_function(BenchmarkId::from_parameter("ipregel_broadcast"), |b| {
        let v = Version { combiner: CombinerKind::Broadcast, selection_bypass: false };
        b.iter(|| black_box(run(&g, &p, v, &cfg)));
    });
    pr.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| black_box(run_naive(&g, &p, &cfg)));
    });
    pr.finish();

    let mut hm = c.benchmark_group("baseline_hashmin");
    hm.sample_size(10);
    hm.bench_function(BenchmarkId::from_parameter("ipregel_spin_bypass"), |b| {
        let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
        b.iter(|| black_box(run(&g, &Hashmin, v, &cfg)));
    });
    hm.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| black_box(run_naive(&g, &Hashmin, &cfg)));
    });
    hm.finish();

    let mut ss = c.benchmark_group("baseline_sssp");
    ss.sample_size(10);
    let s = Sssp { source: 2 };
    ss.bench_function(BenchmarkId::from_parameter("ipregel_spin_bypass"), |b| {
        let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
        b.iter(|| black_box(run(&g, &s, v, &cfg)));
    });
    ss.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| black_box(run_naive(&g, &s, &cfg)));
    });
    ss.finish();
}

criterion_group!(benches, baseline);
criterion_main!(benches);
