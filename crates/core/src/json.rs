//! Hand-rolled JSON serialization, replacing the `serde`/`serde_json`
//! pair for the workspace's one serializer call site (the bench
//! harness's JSONL result files).
//!
//! The output is byte-compatible with what `serde_json::to_string`
//! produced for the same derives: objects keyed by field name in
//! declaration order, `Duration` as `{"secs":…,"nanos":…}`, `Option`
//! as `null`/value, `Vec` as arrays. Two deliberate divergences:
//! non-finite floats serialize as `null` instead of erroring, and
//! integral floats print without a trailing `.0` (both are valid JSON;
//! no consumer parses the files back into typed structs — the trace
//! JSONL codec in [`crate::trace`] is a separate, round-tripping
//! format).
//!
//! Deriving: [`impl_to_json!`](crate::impl_to_json) lists a struct's
//! fields once, mirroring what `#[derive(Serialize)]` read from the
//! definition:
//!
//! ```
//! use ipregel::impl_to_json;
//! struct Point { x: u32, y: u32 }
//! impl_to_json!(Point { x, y });
//! let mut s = String::new();
//! ipregel::json::ToJson::write_json(&Point { x: 1, y: 2 }, &mut s);
//! assert_eq!(s, r#"{"x":1,"y":2}"#);
//! ```

use std::time::Duration;

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// The value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

macro_rules! to_json_display_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], i128::from(*self)));
            }
        }
    )*};
}

/// Format an integer without the formatting machinery (hot JSONL path).
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let digit = (v % 10).unsigned_abs() as u8;
        buf[i] = b'0' + digit;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    // SAFETY-FREE: digits and '-' are ASCII, always valid UTF-8.
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

to_json_display_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        (*self as u64).write_json(out);
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's shortest round-trip formatting; always a valid
            // JSON number for finite values.
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        f64::from(*self).write_json(out);
    }
}

impl ToJson for Duration {
    /// serde's layout for `Duration`: `{"secs":…,"nanos":…}`.
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"secs\":");
        self.as_secs().write_json(out);
        out.push_str(",\"nanos\":");
        self.subsec_nanos().write_json(out);
        out.push('}');
    }
}

/// JSON string escaping: the two mandatory classes (`"`/`\`) plus
/// control characters; everything else passes through as UTF-8.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.write_json(out),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

/// Implement [`ToJson`] for a struct by listing its fields in
/// declaration order — the replacement for `#[derive(Serialize)]`.
#[macro_export]
macro_rules! impl_to_json {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut __first = true;
                $(
                    if !__first {
                        out.push(',');
                    }
                    #[allow(unused_assignments)]
                    {
                        __first = false;
                    }
                    out.push('"');
                    out.push_str(stringify!($field));
                    out.push_str("\":");
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Outer {
        name: &'static str,
        seconds: f64,
        took: Duration,
        maybe: Option<u32>,
        series: Vec<u64>,
        flag: bool,
    }
    impl_to_json!(Outer { name, seconds, took, maybe, series, flag });

    #[test]
    fn struct_encoding_matches_serde_layout() {
        let v = Outer {
            name: "ba\"se\\line\n",
            seconds: 1.5,
            took: Duration::new(3, 250),
            maybe: None,
            series: vec![1, 2, 3],
            flag: true,
        };
        assert_eq!(
            v.to_json(),
            r#"{"name":"ba\"se\\line\n","seconds":1.5,"took":{"secs":3,"nanos":250},"maybe":null,"series":[1,2,3],"flag":true}"#
        );
    }

    #[test]
    fn integers_cover_extremes() {
        assert_eq!(u64::MAX.to_json(), "18446744073709551615");
        assert_eq!(i64::MIN.to_json(), "-9223372036854775808");
        assert_eq!(0u32.to_json(), "0");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!((-0.0f64).to_json(), "-0");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!("\u{1}".to_json(), "\"\\u0001\"");
    }
}
