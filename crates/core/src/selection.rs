//! Active-vertex selection: scanning vs. the selection bypass (Section 4).
//!
//! Conventional frameworks iterate *all* vertices each superstep, checking
//! active state and inbox; inactive vertices make those checks unfruitful.
//! When every vertex votes to halt at each superstep, "active next
//! superstep" ≡ "received a message" — so the *sender* can record its
//! recipient in the next superstep's worklist at send time, and the
//! selection phase disappears. It also improves load balance: the
//! worklist is split evenly across threads and every entry is guaranteed
//! runnable.
//!
//! [`Worklist`] is the bypass data structure: one shard per worker thread
//! so concurrent pushes never contend on a shared cursor. Exactly-once
//! enqueueing comes for free in the push engines (the mailbox's
//! empty→occupied transition is observed under its own synchronisation);
//! the pull engine, whose senders enqueue *out-neighbours*, deduplicates
//! with [`EpochTags`].
//!
//! Synchronisation state comes from [`crate::sync`], so the shard
//! handoff (worker-exclusive writes during a parallel region, then
//! orchestrator-exclusive drain after the barrier) is model-checked by
//! the loom suite in `tests/loom.rs`.

use crate::sync::atomic::{AtomicU32, Ordering};
use crate::sync::cell::UnsafeCell;
use crate::sync::lockorder::{classes, OrderedMutex};

use ipregel_par::CachePadded;
use ipregel_graph::VertexIndex;

/// A concurrent list of vertices to run next superstep, with one private
/// shard per pool worker thread.
///
/// The hot path — `push` from inside a parallel region — is a plain
/// `Vec::push` into the calling worker's own shard: no lock, no shared
/// cursor, no cache-line ping-pong. This matches the C original, where
/// each OpenMP thread appends to a thread-local list. Pushes from
/// outside the pool (never the engines' case) fall back to a mutex.
///
/// # Safety model
/// A shard is touched only by the worker whose pool
/// thread index owns it; `len`/`drain_to_vec`/`clear` are called by the
/// orchestrating thread strictly between parallel regions (after the
/// superstep barrier), when no pushes are in flight.
#[derive(Debug)]
pub struct Worklist {
    shards: Box<[CachePadded<UnsafeCell<Vec<VertexIndex>>>]>,
    fallback: OrderedMutex<Vec<VertexIndex>>,
}

// SAFETY: see the safety model above — shards are disjoint per worker
// thread during parallel regions, and exclusively owned between them.
unsafe impl Sync for Worklist {}
// SAFETY: moving the worklist moves plain owned Vecs; nothing is
// thread-affine.
unsafe impl Send for Worklist {}

impl Worklist {
    /// A worklist for a graph of `slots` vertices, sharded for the
    /// current thread pool (engines construct it inside their pool).
    pub fn new(slots: usize) -> Self {
        Self::with_shards(slots, ipregel_par::current_num_threads().max(1))
    }

    /// A worklist with an explicit shard count. Exposed for tests (the
    /// loom suite models the shard handoff without a thread pool); the
    /// engines use [`Worklist::new`].
    pub fn with_shards(slots: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (slots / shards).max(16);
        let shards = (0..shards)
            .map(|_| CachePadded::new(UnsafeCell::new(Vec::with_capacity(per_shard))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Worklist { shards, fallback: OrderedMutex::new(&classes::WORKLIST_FALLBACK, Vec::new()) }
    }

    /// Append `v`. Caller-side dedup (mailbox transition or epoch tags)
    /// keeps total pushes bounded by the vertex count per superstep.
    #[inline]
    pub fn push(&self, v: VertexIndex) {
        match ipregel_par::current_thread_index() {
            // SAFETY: worker `i` is the only thread that ever touches
            // shard `i` inside a parallel region (pool worker indices
            // are unique within the pool).
            Some(i) => unsafe { self.push_to_shard(i % self.shards.len(), v) },
            // lock-order(worklist.fallback)
            None => self.fallback.lock().expect("worklist fallback poisoned").push(v),
        }
    }

    /// Append `v` to a specific shard.
    ///
    /// [`Worklist::push`] derives the shard from the pool worker index;
    /// the loom suite calls this directly (one model thread per shard)
    /// so the model checker can verify the handoff protocol itself.
    ///
    /// # Safety
    /// During a parallel region a shard must be touched by exactly one
    /// thread; the caller picks the shard and therefore owns that
    /// argument. Under loom the access is tracked, so a violation fails
    /// the model instead of being undefined behaviour.
    #[inline]
    pub unsafe fn push_to_shard(&self, shard: usize, v: VertexIndex) {
        self.shards[shard % self.shards.len()].with_mut(|p| {
            // SAFETY: the fn's contract gives this thread exclusive
            // ownership of the shard for the current parallel region.
            unsafe { (*p).push(v) }
        });
    }

    /// Number of queued vertices (post-barrier).
    pub fn len(&self) -> usize {
        let sharded: usize = self
            .shards
            .iter()
            // SAFETY: called between parallel regions; no concurrent pushes.
            .map(|s| s.with(|p| unsafe { (*p).len() }))
            .sum();
        // lock-order(worklist.fallback)
        sharded + self.fallback.lock().expect("worklist fallback poisoned").len()
    }

    /// Whether nothing is queued (post-barrier).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the queued vertices (post-barrier; shard order, then
    /// fallback entries). Does not consume: pair with [`Worklist::clear`]
    /// before the next superstep, or entries would be drained twice.
    pub fn drain_to_vec(&self) -> Vec<VertexIndex> {
        let mut out = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            // SAFETY: called between parallel regions.
            s.with(|p| out.extend_from_slice(unsafe { &*p }));
        }
        // lock-order(worklist.fallback)
        out.extend_from_slice(&self.fallback.lock().expect("worklist fallback poisoned"));
        out
    }

    /// Drain into an ascending, duplicate-free active list and reset the
    /// shards (post-barrier). Enqueue order is a race artefact; sorting
    /// restores the scan's sequential memory-access pattern and gives the
    /// chunk planner ([`ipregel_graph::schedule`]) the ordered list its
    /// prefix-weight cut requires. O(active log active).
    pub fn drain_sorted(&self) -> Vec<VertexIndex> {
        use ipregel_par::prelude::*;
        let mut out = self.drain_to_vec();
        self.clear();
        out.par_sort_unstable();
        out
    }

    /// Reset to empty, keeping shard capacity for reuse (post-barrier).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            // SAFETY: called between parallel regions.
            s.with_mut(|p| unsafe { (*p).clear() });
        }
        // lock-order(worklist.fallback)
        self.fallback.lock().expect("worklist fallback poisoned").clear();
    }

    /// Current heap bytes across shards (capacity, not length;
    /// post-barrier).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            // SAFETY: called between parallel regions.
            .map(|s| s.with(|p| unsafe { (*p).capacity() }) * std::mem::size_of::<VertexIndex>())
            .sum::<usize>()
            // lock-order(worklist.fallback)
            + self.fallback.lock().expect("worklist fallback poisoned").capacity()
                * std::mem::size_of::<VertexIndex>()
            + self.shards.len() * std::mem::size_of::<CachePadded<UnsafeCell<Vec<VertexIndex>>>>()
    }
}

/// Per-vertex epoch tags granting exactly-one enqueue per superstep.
///
/// A tag holds the last epoch for which its vertex was enqueued; `claim`
/// swaps in the current epoch and reports whether the caller won. Tags
/// never need clearing between supersteps — the epoch monotonically
/// increases — which keeps bypass bookkeeping O(active), not O(V).
#[derive(Debug)]
pub struct EpochTags {
    tags: Box<[AtomicU32]>,
}

impl EpochTags {
    /// Tags for `slots` vertices, all initially unclaimed (epoch 0 is
    /// never used: epochs start at 1).
    pub fn new(slots: usize) -> Self {
        let tags = (0..slots).map(|_| AtomicU32::new(0)).collect::<Vec<_>>().into_boxed_slice();
        EpochTags { tags }
    }

    /// Attempt to claim `v` for `epoch`; true exactly once per (v, epoch).
    #[inline]
    pub fn claim(&self, v: VertexIndex, epoch: u32) -> bool {
        let tag = &self.tags[v as usize];
        // ordering(Relaxed): advisory fast path; the swap below decides
        if tag.load(Ordering::Relaxed) == epoch {
            return false;
        }
        // swap is a single RMW: the first thread to swap sees the old
        // epoch and wins; latecomers see `epoch` and lose.
        // ordering(Relaxed): the win is decided by RMW atomicity alone;
        // the enqueue it gates is published by the superstep barrier
        tag.swap(epoch, Ordering::Relaxed) != epoch
    }

    /// Bytes of the tag array.
    pub fn bytes(&self) -> usize {
        self.tags.len() * std::mem::size_of::<AtomicU32>()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ipregel_par::prelude::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn push_and_drain() {
        let wl = Worklist::new(4);
        wl.push(3);
        wl.push(1);
        assert_eq!(wl.len(), 2);
        let mut v = wl.drain_to_vec();
        v.sort();
        assert_eq!(v, vec![1, 3]);
        wl.clear();
        assert!(wl.is_empty());
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let n: u32 = if cfg!(miri) { 256 } else { 10_000 };
        let wl = Worklist::new(n as usize);
        (0..n).into_par_iter().for_each(|i| wl.push(i));
        assert_eq!(wl.len(), n as usize);
        let set: HashSet<u32> = wl.drain_to_vec().into_iter().collect();
        assert_eq!(set.len(), n as usize);
    }

    #[test]
    fn clear_then_reuse() {
        let wl = Worklist::new(8);
        wl.push(1);
        wl.clear();
        wl.push(2);
        assert_eq!(wl.drain_to_vec(), vec![2]);
    }

    #[test]
    fn fallback_pushes_merge_into_drain_exactly_once() {
        // Regression test for the mutex fallback path: pushes from
        // threads outside the thread pool must land in `fallback`, be
        // counted by `len`, appear in a drain exactly once alongside the
        // sharded entries, and be removed by `clear`.
        let wl = Worklist::new(64);
        // The orchestrating (test) thread is not a pool worker.
        assert!(ipregel_par::current_thread_index().is_none());
        wl.push(100); // fallback entry #1
        let n_pool: u32 = if cfg!(miri) { 8 } else { 32 };
        // Worker-shard entries from inside the pool.
        (0..n_pool).into_par_iter().for_each(|i| wl.push(i));
        // A plain OS thread (also not a pool worker) → fallback #2.
        std::thread::scope(|s| {
            s.spawn(|| wl.push(101));
        });
        let expected = n_pool as usize + 2;
        assert_eq!(wl.len(), expected, "fallback entries must be counted");
        let drained = wl.drain_to_vec();
        assert_eq!(drained.len(), expected);
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for v in &drained {
            *counts.entry(*v).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 1), "every entry exactly once: {counts:?}");
        assert!(counts.contains_key(&100) && counts.contains_key(&101));
        // bytes() must see the fallback vec's storage too.
        assert!(wl.bytes() >= expected * std::mem::size_of::<VertexIndex>());
        // clear() empties the fallback as well: a fresh drain is empty,
        // so nothing can ever be merged twice across supersteps.
        wl.clear();
        assert!(wl.is_empty());
        assert_eq!(wl.drain_to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn drain_sorted_orders_and_resets() {
        let wl = Worklist::new(64);
        let n: u32 = if cfg!(miri) { 64 } else { 4096 };
        (0..n).into_par_iter().for_each(|i| wl.push(i ^ 0x2a));
        let drained = wl.drain_sorted();
        assert_eq!(drained.len(), n as usize);
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
        // drain_sorted clears: nothing can be drained twice.
        assert!(wl.is_empty());
        assert_eq!(wl.drain_to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn epoch_claim_is_exactly_once() {
        let tags = EpochTags::new(8);
        assert!(tags.claim(3, 1));
        assert!(!tags.claim(3, 1));
        assert!(tags.claim(3, 2)); // new epoch, claimable again
        assert!(!tags.claim(3, 2));
        assert!(tags.claim(4, 2)); // different vertex independent
    }

    #[test]
    fn concurrent_claims_grant_one_winner() {
        let (epochs, claimers) = if cfg!(miri) { (5u32, 8) } else { (50, 64) };
        let tags = EpochTags::new(1);
        for epoch in 1..epochs {
            let winners: u32 =
                (0..claimers).into_par_iter().map(|_| u32::from(tags.claim(0, epoch))).sum();
            assert_eq!(winners, 1, "epoch {epoch} had {winners} winners");
        }
    }

    #[test]
    fn dedup_keeps_one_entry_per_vertex() {
        let slots = if cfg!(miri) { 32 } else { 256 };
        let wl = Worklist::new(slots);
        let tags = EpochTags::new(slots);
        (0..slots * 16).into_par_iter().for_each(|i| {
            let v = (i % slots) as u32;
            if tags.claim(v, 1) {
                wl.push(v);
            }
        });
        assert_eq!(wl.len(), slots);
        let set: HashSet<u32> = wl.drain_to_vec().into_iter().collect();
        assert_eq!(set.len(), slots);
    }

    #[test]
    fn bytes_reflect_storage() {
        let wl = Worklist::new(1000);
        let before = wl.bytes();
        assert!(before > 0);
        for v in 0..10_000u32 {
            wl.push(v);
        }
        assert!(wl.bytes() >= 10_000 * 4);
        let tags = EpochTags::new(100);
        assert_eq!(tags.bytes(), 400);
    }
}
