//! Active-vertex selection: scanning vs. the selection bypass (Section 4).
//!
//! Conventional frameworks iterate *all* vertices each superstep, checking
//! active state and inbox; inactive vertices make those checks unfruitful.
//! When every vertex votes to halt at each superstep, "active next
//! superstep" ≡ "received a message" — so the *sender* can record its
//! recipient in the next superstep's worklist at send time, and the
//! selection phase disappears. It also improves load balance: the
//! worklist is split evenly across threads and every entry is guaranteed
//! runnable.
//!
//! [`Worklist`] is the bypass data structure: one shard per worker thread
//! so concurrent pushes never contend on a shared cursor. Exactly-once
//! enqueueing comes for free in the push engines (the mailbox's
//! empty→occupied transition is observed under its own synchronisation);
//! the pull engine, whose senders enqueue *out-neighbours*, deduplicates
//! with [`EpochTags`].

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crossbeam::utils::CachePadded;
use ipregel_graph::VertexIndex;

/// A concurrent list of vertices to run next superstep, with one private
/// shard per rayon worker thread.
///
/// The hot path — `push` from inside a parallel region — is a plain
/// `Vec::push` into the calling worker's own shard: no lock, no shared
/// cursor, no cache-line ping-pong. This matches the C original, where
/// each OpenMP thread appends to a thread-local list. Pushes from
/// outside the pool (never the engines' case) fall back to a mutex.
///
/// # Safety model
/// A shard is touched only by the worker whose `rayon`
/// thread index owns it; `len`/`drain_to_vec`/`clear` are called by the
/// orchestrating thread strictly between parallel regions (after the
/// superstep barrier), when no pushes are in flight.
#[derive(Debug)]
pub struct Worklist {
    shards: Box<[CachePadded<UnsafeCell<Vec<VertexIndex>>>]>,
    fallback: Mutex<Vec<VertexIndex>>,
}

// SAFETY: see the safety model above — shards are disjoint per worker
// thread during parallel regions, and exclusively owned between them.
unsafe impl Sync for Worklist {}
unsafe impl Send for Worklist {}

impl Worklist {
    /// A worklist for a graph of `slots` vertices, sharded for the
    /// current rayon pool (engines construct it inside their pool).
    pub fn new(slots: usize) -> Self {
        let shards = rayon::current_num_threads().max(1);
        let per_shard = (slots / shards).max(16);
        let shards = (0..shards)
            .map(|_| CachePadded::new(UnsafeCell::new(Vec::with_capacity(per_shard))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Worklist { shards, fallback: Mutex::new(Vec::new()) }
    }

    /// Append `v`. Caller-side dedup (mailbox transition or epoch tags)
    /// keeps total pushes bounded by the vertex count per superstep.
    #[inline]
    pub fn push(&self, v: VertexIndex) {
        match rayon::current_thread_index() {
            Some(i) => {
                // SAFETY: worker `i` is the only thread that ever touches
                // shard `i` inside a parallel region.
                let shard = unsafe { &mut *self.shards[i % self.shards.len()].get() };
                shard.push(v);
            }
            None => self.fallback.lock().expect("worklist fallback poisoned").push(v),
        }
    }

    /// Number of queued vertices (post-barrier).
    pub fn len(&self) -> usize {
        // SAFETY: called between parallel regions; no concurrent pushes.
        let sharded: usize = self.shards.iter().map(|s| unsafe { (*s.get()).len() }).sum();
        sharded + self.fallback.lock().expect("worklist fallback poisoned").len()
    }

    /// Whether nothing is queued (post-barrier).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the queued vertices (post-barrier; shard order).
    pub fn drain_to_vec(&self) -> Vec<VertexIndex> {
        let mut out = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            // SAFETY: called between parallel regions.
            out.extend_from_slice(unsafe { &*s.get() });
        }
        out.extend_from_slice(&self.fallback.lock().expect("worklist fallback poisoned"));
        out
    }

    /// Reset to empty, keeping shard capacity for reuse (post-barrier).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            // SAFETY: called between parallel regions.
            unsafe { (*s.get()).clear() };
        }
        self.fallback.lock().expect("worklist fallback poisoned").clear();
    }

    /// Current heap bytes across shards (capacity, not length;
    /// post-barrier).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            // SAFETY: called between parallel regions.
            .map(|s| unsafe { (*s.get()).capacity() } * std::mem::size_of::<VertexIndex>())
            .sum::<usize>()
            + self.fallback.lock().expect("worklist fallback poisoned").capacity()
                * std::mem::size_of::<VertexIndex>()
            + self.shards.len() * std::mem::size_of::<CachePadded<UnsafeCell<Vec<VertexIndex>>>>()
    }
}

/// Per-vertex epoch tags granting exactly-one enqueue per superstep.
///
/// A tag holds the last epoch for which its vertex was enqueued; `claim`
/// swaps in the current epoch and reports whether the caller won. Tags
/// never need clearing between supersteps — the epoch monotonically
/// increases — which keeps bypass bookkeeping O(active), not O(V).
#[derive(Debug)]
pub struct EpochTags {
    tags: Box<[AtomicU32]>,
}

impl EpochTags {
    /// Tags for `slots` vertices, all initially unclaimed (epoch 0 is
    /// never used: epochs start at 1).
    pub fn new(slots: usize) -> Self {
        let tags = (0..slots).map(|_| AtomicU32::new(0)).collect::<Vec<_>>().into_boxed_slice();
        EpochTags { tags }
    }

    /// Attempt to claim `v` for `epoch`; true exactly once per (v, epoch).
    #[inline]
    pub fn claim(&self, v: VertexIndex, epoch: u32) -> bool {
        let tag = &self.tags[v as usize];
        // Fast path: already claimed by someone this epoch.
        if tag.load(Ordering::Relaxed) == epoch {
            return false;
        }
        // swap is a single RMW: the first thread to swap sees the old
        // epoch and wins; latecomers see `epoch` and lose.
        tag.swap(epoch, Ordering::Relaxed) != epoch
    }

    /// Bytes of the tag array.
    pub fn bytes(&self) -> usize {
        self.tags.len() * std::mem::size_of::<AtomicU32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn push_and_drain() {
        let wl = Worklist::new(4);
        wl.push(3);
        wl.push(1);
        assert_eq!(wl.len(), 2);
        let mut v = wl.drain_to_vec();
        v.sort();
        assert_eq!(v, vec![1, 3]);
        wl.clear();
        assert!(wl.is_empty());
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let wl = Worklist::new(10_000);
        (0..10_000u32).into_par_iter().for_each(|i| wl.push(i));
        assert_eq!(wl.len(), 10_000);
        let set: HashSet<u32> = wl.drain_to_vec().into_iter().collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn clear_then_reuse() {
        let wl = Worklist::new(8);
        wl.push(1);
        wl.clear();
        wl.push(2);
        assert_eq!(wl.drain_to_vec(), vec![2]);
    }

    #[test]
    fn epoch_claim_is_exactly_once() {
        let tags = EpochTags::new(8);
        assert!(tags.claim(3, 1));
        assert!(!tags.claim(3, 1));
        assert!(tags.claim(3, 2)); // new epoch, claimable again
        assert!(!tags.claim(3, 2));
        assert!(tags.claim(4, 2)); // different vertex independent
    }

    #[test]
    fn concurrent_claims_grant_one_winner() {
        let tags = EpochTags::new(1);
        for epoch in 1..50u32 {
            let winners: u32 =
                (0..64).into_par_iter().map(|_| u32::from(tags.claim(0, epoch))).sum();
            assert_eq!(winners, 1, "epoch {epoch} had {winners} winners");
        }
    }

    #[test]
    fn dedup_keeps_one_entry_per_vertex() {
        let slots = 256;
        let wl = Worklist::new(slots);
        let tags = EpochTags::new(slots);
        (0..slots * 16).into_par_iter().for_each(|i| {
            let v = (i % slots) as u32;
            if tags.claim(v, 1) {
                wl.push(v);
            }
        });
        assert_eq!(wl.len(), slots);
        let set: HashSet<u32> = wl.drain_to_vec().into_iter().collect();
        assert_eq!(set.len(), slots);
    }

    #[test]
    fn bytes_reflect_storage() {
        let wl = Worklist::new(1000);
        let before = wl.bytes();
        assert!(before > 0);
        for v in 0..10_000u32 {
            wl.push(v);
        }
        assert!(wl.bytes() >= 10_000 * 4);
        let tags = EpochTags::new(100);
        assert_eq!(tags.bytes(), 400);
    }
}
