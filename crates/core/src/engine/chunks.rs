//! Superstep scheduling: cutting an active list into parallel chunks.
//!
//! The paper's conclusion lists load balancing as the open problem, and
//! its follow-up (Capelli & Brown, arXiv:2010.01542) shows why: splitting
//! by vertex count strands a hub vertex's millions of edges in one task.
//! This module is the engine-side policy switch; the actual cut machinery
//! — binary searches over the CSR offsets array — lives in
//! [`ipregel_graph::schedule`].
//!
//! The flow per superstep: the engine calls [`plan`] with the active list
//! and the direction-relevant CSR (out-edges for push, in-edges for pull —
//! weight must track where the superstep's work actually is), executes one
//! pool task per returned chunk, and records per-chunk edge weights and
//! durations into [`crate::metrics::LoadStats`] so imbalance is observable
//! in `RunStats` rather than inferred from wall clock.

use std::str::FromStr;

use ipregel_graph::csr::Csr;
use ipregel_graph::schedule::{
    count_balanced, edge_balanced_list, edge_balanced_range, Chunk,
};
use ipregel_graph::VertexIndex;

/// How each superstep's active list is cut into parallel chunks.
///
/// All policies produce bit-identical results — scheduling only moves
/// vertex executions between threads, never reorders combining within a
/// mailbox — so the choice is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Equal *vertex count* per chunk — the paper's implicit policy and
    /// the default. Optimal when degrees are near-uniform; collapses on
    /// power-law graphs where one chunk inherits a hub.
    #[default]
    VertexBalanced,
    /// Equal *edge weight* per chunk (degree + 1 per vertex), cut by
    /// binary search over the CSR offsets. Bounded imbalance on skewed
    /// graphs at O(chunks · log |V|) planning cost per superstep.
    EdgeBalanced,
    /// Pick per run: edge-balanced when the graph's maximum degree is
    /// heavy enough to overflow a vertex-balanced chunk (the one O(|V|)
    /// skew probe happens once, at engine start), vertex-balanced
    /// otherwise.
    Adaptive,
}

impl Schedule {
    /// Stable lowercase label (CLI value, bench record field).
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::VertexBalanced => "vertex",
            Schedule::EdgeBalanced => "edge",
            Schedule::Adaptive => "adaptive",
        }
    }

    /// Every policy, for harness sweeps.
    pub fn all() -> [Schedule; 3] {
        [Schedule::VertexBalanced, Schedule::EdgeBalanced, Schedule::Adaptive]
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "vertex" | "vertex-balanced" => Ok(Schedule::VertexBalanced),
            "edge" | "edge-balanced" => Ok(Schedule::EdgeBalanced),
            "adaptive" => Ok(Schedule::Adaptive),
            other => Err(format!(
                "unknown schedule '{other}' (expected vertex, edge, or adaptive)"
            )),
        }
    }
}

/// Chunks to aim for per pool thread. More than 1 lets the pool's work
/// stealing absorb residual imbalance (a chunk's true cost is its edges
/// *visited*, which the planner can only approximate by degree); too many
/// wastes planning and accounting work.
pub(crate) const CHUNKS_PER_THREAD: usize = 4;

/// Extra over-partitioning multiplier for plans that expect stealing to
/// do real rebalancing — currently plans the adaptive policy resolved
/// to edge-balanced on a skew-probed graph. Finer chunks give thieves
/// more units to move; the product `CHUNKS_PER_THREAD ×
/// OVERPARTITION_FACTOR` must stay ≤ the `ipregel-par` iterator
/// facade's own chunks-per-thread cap (8) so one scope task keeps
/// mapping to one plan chunk.
pub(crate) const OVERPARTITION_FACTOR: usize = 2;

// iter.rs plans `threads × 8` scope tasks; a plan finer than that would
// coalesce chunks and break the 1 task : 1 chunk mapping.
const _: () = assert!(CHUNKS_PER_THREAD * OVERPARTITION_FACTOR <= 8);

/// How a [`Resolved`] schedule cuts the active list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cut {
    VertexBalanced,
    EdgeBalanced,
}

/// [`Schedule`] with [`Schedule::Adaptive`] collapsed to a concrete cut
/// plus the over-partitioning the resolution chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Resolved {
    pub cut: Cut,
    /// Multiplier on [`max_chunks`] when planning (1 = no
    /// over-partitioning).
    pub overpartition: usize,
}

impl Resolved {
    pub(crate) const VERTEX_BALANCED: Resolved =
        Resolved { cut: Cut::VertexBalanced, overpartition: 1 };
    pub(crate) const EDGE_BALANCED: Resolved =
        Resolved { cut: Cut::EdgeBalanced, overpartition: 1 };
}

/// Chunks to cut for the current thread pool. Engines call this inside
/// `in_pool`, so `current_num_threads` reflects `RunConfig::threads`.
pub(crate) fn max_chunks() -> usize {
    ipregel_par::current_num_threads().max(1) * CHUNKS_PER_THREAD
}

/// Collapse `schedule` against `csr` (the direction the engine walks),
/// once per run.
///
/// The adaptive probe: a vertex-balanced chunk ideally carries
/// `total_weight / max_chunks`; if the heaviest single vertex exceeds
/// twice that, a chunk containing it is guaranteed ≥ 2× ideal — exactly
/// the collapse edge-balancing prevents — so switch. The probe scans the
/// offsets once, O(|V|), amortised over the whole run.
pub(crate) fn resolve(schedule: Schedule, csr: &Csr, max_chunks: usize) -> Resolved {
    match schedule {
        Schedule::VertexBalanced => Resolved::VERTEX_BALANCED,
        Schedule::EdgeBalanced => Resolved::EDGE_BALANCED,
        Schedule::Adaptive => {
            let offsets = csr.offsets();
            let max_weight = offsets
                .windows(2)
                .map(|w| w[1] - w[0] + 1)
                .max()
                .unwrap_or(1);
            let total = csr.num_edges() + csr.num_slots() as u64;
            let ideal = (total / max_chunks.max(1) as u64).max(1);
            if max_weight > 2 * ideal {
                // The probe found real skew, which also means residual
                // imbalance after the cut (an unsplittable hub chunk):
                // over-partition so the pool's work-stealing has finer
                // chunks to rebalance with.
                Resolved { cut: Cut::EdgeBalanced, overpartition: OVERPARTITION_FACTOR }
            } else {
                Resolved::VERTEX_BALANCED
            }
        }
    }
}

/// One superstep's chunk plan: contiguous runs of positions in the active
/// list, plus each chunk's planned weight (for
/// [`crate::metrics::LoadStats`]).
#[derive(Debug)]
pub(crate) struct Plan {
    pub chunks: Vec<Chunk>,
    /// Planned weight per chunk in the cut's own unit — `degree + 1`
    /// per vertex, the same weight [`ipregel_graph::schedule`] balances
    /// — so recorded imbalance measures the planner against its own
    /// objective. (Before the work-stealing pool landed this recorded
    /// raw edge counts, which over-reported hub imbalance: an
    /// unsplittable hub chunk was compared against a mean that ignored
    /// per-vertex costs.)
    pub chunk_edges: Vec<u64>,
}

/// Cut `active` (ascending, duplicate-free slot indices — every selection
/// path produces exactly that) into chunks under `resolved`, weighing
/// vertices by their degree in `csr`.
///
/// When the active list covers *all* `slots` — superstep 0 on non-desolate
/// maps, dense supersteps — it is necessarily the identity range
/// `0..slots`, and the cut needs no per-vertex pass at all: the CSR
/// offsets array is the weight prefix, binary-searched directly.
pub(crate) fn plan(
    resolved: Resolved,
    active: &[VertexIndex],
    slots: usize,
    csr: &Csr,
    grain: Option<usize>,
) -> Plan {
    let max_chunks = max_chunks() * resolved.overpartition.max(1);
    let min_len = grain.unwrap_or(1).max(1);
    let full_range = active.len() == slots;
    let chunks = match resolved.cut {
        Cut::VertexBalanced => count_balanced(active.len(), max_chunks, min_len),
        Cut::EdgeBalanced if full_range => edge_balanced_range(csr, max_chunks, min_len),
        Cut::EdgeBalanced => {
            edge_balanced_list(active, |v| u64::from(csr.degree(v)), max_chunks, min_len)
        }
    };
    let offsets = csr.offsets();
    let chunk_edges = if full_range {
        chunks
            .iter()
            .map(|c| offsets[c.end] - offsets[c.start] + (c.end - c.start) as u64)
            .collect()
    } else {
        chunks
            .iter()
            .map(|c| active[c.start..c.end].iter().map(|&v| u64::from(csr.degree(v)) + 1).sum())
            .collect()
    };
    Plan { chunks, chunk_edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_of(degrees: &[u32]) -> Csr {
        let mut edges = Vec::new();
        let n = degrees.len() as u32;
        for (v, &d) in degrees.iter().enumerate() {
            for i in 0..d {
                edges.push((v as u32, i % n));
            }
        }
        Csr::from_edges(degrees.len(), &edges, None)
    }

    #[test]
    fn schedule_labels_round_trip() {
        for s in Schedule::all() {
            assert_eq!(s.label().parse::<Schedule>().unwrap(), s);
            assert_eq!(s.to_string(), s.label());
        }
        assert_eq!("edge-balanced".parse::<Schedule>().unwrap(), Schedule::EdgeBalanced);
        assert!("chaotic".parse::<Schedule>().is_err());
    }

    #[test]
    fn default_is_vertex_balanced() {
        assert_eq!(Schedule::default(), Schedule::VertexBalanced);
    }

    #[test]
    fn adaptive_resolves_by_skew() {
        // Near-uniform: stays vertex-balanced, no over-partitioning.
        let flat = csr_of(&[3; 64]);
        assert_eq!(resolve(Schedule::Adaptive, &flat, 8), Resolved::VERTEX_BALANCED);
        // One hub dominating the ideal chunk: switches to edge-balanced
        // *and* over-partitions so stealing can rebalance the residue.
        let mut degrees = [1u32; 64];
        degrees[10] = 1000;
        let skewed = csr_of(&degrees);
        assert_eq!(
            resolve(Schedule::Adaptive, &skewed, 8),
            Resolved { cut: Cut::EdgeBalanced, overpartition: OVERPARTITION_FACTOR }
        );
        // The explicit policies resolve to themselves regardless of shape.
        assert_eq!(resolve(Schedule::VertexBalanced, &skewed, 8), Resolved::VERTEX_BALANCED);
        assert_eq!(resolve(Schedule::EdgeBalanced, &flat, 8), Resolved::EDGE_BALANCED);
    }

    #[test]
    fn overpartitioned_plans_are_finer() {
        let mut degrees = [1u32; 512];
        degrees[40] = 4000;
        let csr = csr_of(&degrees);
        let active: Vec<u32> = (0..512).collect();
        let base = plan(Resolved::EDGE_BALANCED, &active, 512, &csr, None);
        let fine = plan(
            Resolved { cut: Cut::EdgeBalanced, overpartition: OVERPARTITION_FACTOR },
            &active,
            512,
            &csr,
            None,
        );
        assert!(fine.chunks.len() > base.chunks.len(), "{} vs {}", fine.chunks.len(), base.chunks.len());
        let total: u64 = fine.chunk_edges.iter().sum();
        assert_eq!(total, csr.num_edges() + 512, "finer plan still covers every vertex's weight");
    }

    #[test]
    fn plan_covers_active_and_counts_edges() {
        let mut degrees = [2u32; 40];
        degrees[7] = 100;
        let csr = csr_of(&degrees);
        let active: Vec<u32> = (0..40).collect();
        for resolved in [Resolved::VERTEX_BALANCED, Resolved::EDGE_BALANCED] {
            let p = plan(resolved, &active, 40, &csr, None);
            assert_eq!(p.chunks.len(), p.chunk_edges.len());
            assert_eq!(p.chunks.first().unwrap().start, 0);
            assert_eq!(p.chunks.last().unwrap().end, 40);
            // Recorded weight = edges + one unit of per-vertex cost.
            let total: u64 = p.chunk_edges.iter().sum();
            assert_eq!(total, csr.num_edges() + 40, "{resolved:?}");
        }
    }

    #[test]
    fn sparse_plan_weighs_only_active_vertices() {
        let mut degrees = [2u32; 40];
        degrees[7] = 100;
        let csr = csr_of(&degrees);
        // Active subset excludes the hub entirely.
        let active: Vec<u32> = (0..40).filter(|&v| v != 7).step_by(2).collect();
        let p = plan(Resolved::EDGE_BALANCED, &active, 40, &csr, None);
        let total: u64 = p.chunk_edges.iter().sum();
        let expect: u64 = active.iter().map(|&v| u64::from(csr.degree(v)) + 1).sum();
        assert_eq!(total, expect);
        let covered: usize = p.chunks.iter().map(|c| c.end - c.start).sum();
        assert_eq!(covered, active.len());
    }

    #[test]
    fn grain_bounds_chunk_count_in_plans() {
        let csr = csr_of(&[1; 100]);
        let active: Vec<u32> = (0..100).collect();
        let p = plan(Resolved::EDGE_BALANCED, &active, 100, &csr, Some(50));
        assert!(p.chunks.len() <= 2, "{:?}", p.chunks);
    }
}
