//! The superstep engines: shared configuration, results, and the two
//! engine shapes (push-combining and pull-combining).
//!
//! An engine owns the BSP loop of Figure 1: select active vertices, run
//! `compute` on them in parallel (the `ipregel_par` pool stands in for the paper's
//! OpenMP), deliver messages, synchronise, repeat until no vertex is
//! active and no message is in flight.

pub mod chunks;
pub mod pull;
pub mod push;
pub mod seq;

use std::time::Duration;

use ipregel_graph::{AddressMap, VertexId, VertexIndex};

pub use crate::engine::chunks::Schedule;
use crate::metrics::{FootprintReport, RunStats};

/// Knobs common to every engine version.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Enable the selection bypass of Section 4. Only sound for programs
    /// whose vertices vote to halt every superstep (Hashmin, SSSP — not
    /// PageRank); the engine trusts the caller, exactly as iPregel trusts
    /// the user's compile flag.
    pub selection_bypass: bool,
    /// Size of the thread pool; `None` uses the global default. The paper
    /// runs with 2 OpenMP threads on its 2-core EC2 instances.
    pub threads: Option<usize>,
    /// Safety cap on supersteps; `None` runs to quiescence.
    pub max_supersteps: Option<usize>,
    /// Minimum vertices per chunk on average (load-balancing grain);
    /// `None` means 1. Bounds task-scheduling overhead when supersteps
    /// run only a handful of cheap vertices.
    pub grain: Option<usize>,
    /// How each superstep's active list is cut into parallel chunks —
    /// the answer to the load-balancing problem the paper's conclusion
    /// leaves open. [`Schedule::VertexBalanced`] (the default) cuts equal
    /// vertex counts, [`Schedule::EdgeBalanced`] cuts equal edge weights
    /// by binary-searching the CSR offsets, [`Schedule::Adaptive`] probes
    /// the degree distribution once per run and picks. Scheduling never
    /// changes results, only which thread runs which vertex; per-chunk
    /// effects are reported in [`crate::metrics::LoadStats`].
    pub schedule: Schedule,
    /// Cooperative wall-clock budget for the whole run, checked at each
    /// superstep barrier (the only point where all engine state is
    /// quiescent). When the elapsed time reaches the budget the engine
    /// stops *cleanly* — no superstep is torn down mid-flight — and the
    /// fallible entry points return [`RunError::DeadlineExceeded`]
    /// carrying the [`RunStats`] of every completed superstep. `None`
    /// (the default) runs to quiescence.
    pub deadline: Option<Duration>,
    /// Observability sink (see [`crate::trace`]). `None` — the default —
    /// records nothing; so does `Some` unless the crate is built with
    /// the `trace` cargo feature, which compiles the engines' hook
    /// calls in. Shared as an `Arc` so the caller keeps a handle to
    /// drain with [`crate::trace::Tracer::take_events`] after the run.
    pub trace: Option<std::sync::Arc<crate::trace::Tracer>>,
}

/// Why a fallible run stopped before quiescence.
///
/// The engines fail *at barriers*: a panicking vertex program is caught
/// inside its chunk (the other chunks of that superstep drain normally,
/// the thread pool survives), a missed deadline is noticed at the next
/// superstep boundary, and checkpoint I/O happens only while the engine
/// is quiescent. Every variant that interrupts a run therefore carries
/// the [`RunStats`] of the supersteps that *did* complete.
#[derive(Debug)]
pub enum RunError {
    /// A vertex program panicked inside `compute` (or `combine`).
    VertexPanic {
        /// Superstep in which the panic fired.
        superstep: usize,
        /// Index of the panicking chunk within that superstep's plan.
        chunk: usize,
        /// First and last slot of the panicking chunk — the panic came
        /// from some vertex in this (inclusive) range.
        vertex_range: (VertexIndex, VertexIndex),
        /// The panic payload, if it was a string (the common case).
        message: String,
        /// Stats for every superstep that completed before the panic.
        stats: RunStats,
    },
    /// The cooperative [`RunConfig::deadline`] elapsed.
    DeadlineExceeded {
        /// The configured budget.
        deadline: Duration,
        /// The superstep that would have run next.
        superstep: usize,
        /// Stats for every completed superstep.
        stats: RunStats,
    },
    /// Writing a checkpoint failed (see [`crate::recover`]).
    Checkpoint {
        /// The superstep whose barrier state was being saved.
        superstep: usize,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Restoring from a checkpoint failed: none found, or the snapshot
    /// does not fit the graph/program it is being restored into.
    Resume(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::VertexPanic { superstep, chunk, vertex_range, message, .. } => write!(
                f,
                "vertex program panicked in superstep {superstep} (chunk {chunk}, slots \
                 {}..={}): {message}",
                vertex_range.0, vertex_range.1
            ),
            RunError::DeadlineExceeded { deadline, superstep, .. } => write!(
                f,
                "deadline of {deadline:?} exceeded before superstep {superstep}"
            ),
            RunError::Checkpoint { superstep, source } => {
                write!(f, "checkpoint at superstep {superstep} failed: {source}")
            }
            RunError::Resume(why) => write!(f, "resume failed: {why}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl RunError {
    /// The partial per-superstep stats attached to the error, when the
    /// run got far enough to have any.
    pub fn partial_stats(&self) -> Option<&RunStats> {
        match self {
            RunError::VertexPanic { stats, .. } | RunError::DeadlineExceeded { stats, .. } => {
                Some(stats)
            }
            _ => None,
        }
    }
}

/// Result type of the fallible engine entry points (`try_run*`).
pub type RunResult<V> = Result<RunOutput<V>, RunError>;

/// What a chunk's `catch_unwind` caught, before it is joined with the
/// superstep context into a [`RunError::VertexPanic`].
pub(crate) struct ChunkPanic {
    pub chunk: usize,
    pub vertex_range: (VertexIndex, VertexIndex),
    pub message: String,
}

/// Best-effort extraction of a panic payload as text.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The result of a run: final vertex values plus measurements.
#[derive(Debug, Clone)]
pub struct RunOutput<V> {
    /// Final value of every slot (desolate slots hold their initial value).
    pub values: Vec<V>,
    /// The graph's addressing, for id-keyed access.
    map: AddressMap,
    /// Per-superstep measurements.
    pub stats: RunStats,
    /// Exact byte accounting of the engine's allocations.
    pub footprint: FootprintReport,
}

impl<V> RunOutput<V> {
    /// Assemble a run result. Public so alternative engines (the
    /// sequential oracle, the naive `femtograph-sim` baseline, external
    /// experiments) can return the same type the built-in engines do.
    pub fn new(values: Vec<V>, map: AddressMap, stats: RunStats, footprint: FootprintReport) -> Self {
        RunOutput { values, map, stats, footprint }
    }

    /// Final value of the vertex with external identifier `id`.
    pub fn value_of(&self, id: VertexId) -> &V {
        &self.values[self.map.index_of(id) as usize]
    }

    /// Iterate `(external id, value)` over live vertices in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &V)> + '_ {
        self.map.live_slots().map(move |s| (self.map.id_of(s), &self.values[s as usize]))
    }

    /// Number of (live) vertices.
    pub fn num_vertices(&self) -> usize {
        self.map.num_vertices() as usize
    }
}

/// Run `f` on a dedicated pool of `threads` threads, or inline on the
/// global pool.
pub(crate) fn in_pool<R: Send>(threads: Option<usize>, f: impl FnOnce() -> R + Send) -> R {
    match threads {
        None => f(),
        Some(t) => ipregel_par::ThreadPoolBuilder::new()
            .num_threads(t.max(1))
            .build()
            .expect("failed to build thread pool")
            .install(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn run_output_accessors() {
        let map = AddressMap::desolate(1, 3);
        let out = RunOutput::new(
            vec![0u32, 10, 20, 30],
            map,
            RunStats::default(),
            FootprintReport::default(),
        );
        assert_eq!(*out.value_of(1), 10);
        assert_eq!(*out.value_of(3), 30);
        let pairs: Vec<_> = out.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(out.num_vertices(), 3);
    }

    #[test]
    fn in_pool_respects_thread_count() {
        let threads = in_pool(Some(3), ipregel_par::current_num_threads);
        assert_eq!(threads, 3);
        let _ = in_pool(None, || Duration::ZERO);
    }
}
