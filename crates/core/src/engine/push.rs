//! The push-combining engine (Section 6.1).
//!
//! Senders deliver messages straight into the recipient's single-message
//! mailbox, combining on collision under the mailbox's synchronisation
//! (mutex, spinlock, or lock-free CAS). Mailboxes are double-buffered:
//! superstep `s` reads from the *current* array while sends land in the
//! *next* one, swapped at the barrier.
//!
//! Selection is either the conventional full scan (check every vertex's
//! active flag and inbox) or the Section 4 bypass, where the sender
//! enqueues its recipient into the next worklist at send time and the
//! scan disappears.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ipregel_graph::csr::Weight;
use ipregel_graph::{Graph, VertexId, VertexIndex};
use ipregel_par::prelude::*;

use crate::engine::{
    chunks, in_pool, panic_message, ChunkPanic, RunConfig, RunError, RunOutput, RunResult,
};
use crate::mailbox::Mailbox;
use crate::metrics::{FootprintReport, LoadStats, RunStats, SuperstepStats};
use crate::program::{Context, MasterDecision, VertexProgram};
use crate::recover::DynHooks;
use crate::selection::Worklist;
use crate::sync_cell::SharedSlice;
use crate::trace::{self, TraceEvent};

/// Run `program` on `graph` with mailbox flavour `MB`.
///
/// # Panics
/// If the graph was built without out-edges (push engines route every
/// send through the out-CSR), if `compute` sends to an identifier
/// outside the graph, or on any [`RunError`] — the historical infallible
/// surface. Fault-tolerant callers use [`try_run_push`].
pub fn run_push<P, MB>(graph: &Graph, program: &P, config: &RunConfig) -> RunOutput<P::Value>
where
    P: VertexProgram,
    MB: Mailbox<P::Message>,
{
    try_run_push::<P, MB>(graph, program, config).unwrap_or_else(|e| panic!("run_push: {e}"))
}

/// Fallible [`run_push`]: vertex panics surface as
/// [`RunError::VertexPanic`], a missed [`RunConfig::deadline`] as
/// [`RunError::DeadlineExceeded`] — in both cases the thread pool
/// survives and the error carries the completed supersteps' stats.
///
/// # Panics
/// Only on misuse: a graph without out-edges, or a send to an unknown
/// identifier.
pub fn try_run_push<P, MB>(graph: &Graph, program: &P, config: &RunConfig) -> RunResult<P::Value>
where
    P: VertexProgram,
    MB: Mailbox<P::Message>,
{
    try_run_push_recoverable::<P, MB>(graph, program, config, None)
}

/// [`try_run_push`] with checkpoint/restore hooks (see
/// [`crate::recover`]): barrier state is saved when `hooks` says it is
/// due, and a pending resume state is restored before superstep 0 would
/// have run.
pub fn try_run_push_recoverable<P, MB>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
    hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value>
where
    P: VertexProgram,
    MB: Mailbox<P::Message>,
{
    assert!(
        graph.has_out_edges(),
        "push engines need out-adjacency; build the graph with NeighborMode::OutOnly or Both"
    );
    in_pool(config.threads, move || run_push_inner::<P, MB>(graph, program, config, hooks))
}

fn run_push_inner<P, MB>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
    mut hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value>
where
    P: VertexProgram,
    MB: Mailbox<P::Message>,
{
    let map = *graph.address_map();
    let slots = graph.num_slots();

    let mut values: Vec<P::Value> =
        (0..slots as u32).map(|s| program.initial_value(map.id_of(s))).collect();
    let mut halted: Vec<bool> = vec![false; slots];
    let mut cur: Vec<MB> = (0..slots).map(|_| MB::empty()).collect();
    let mut next: Vec<MB> = (0..slots).map(|_| MB::empty()).collect();

    // The bypass needs no per-vertex tags here: the mailbox's own
    // empty→occupied transition (observed under its lock) is the
    // exactly-once enqueue signal — Section 4's sender "knows that the
    // recipient vertex will have to be run".
    let bypass = config.selection_bypass.then(|| Worklist::new(slots));

    let footprint = FootprintReport {
        graph_bytes: graph.bytes(),
        values_bytes: slots * std::mem::size_of::<P::Value>(),
        mailbox_bytes: 2 * slots * (std::mem::size_of::<MB>() - MB::lock_bytes()),
        lock_bytes: 2 * slots * MB::lock_bytes(),
        flags_bytes: slots * std::mem::size_of::<bool>(),
        worklist_bytes: bypass.as_ref().map_or(0, Worklist::bytes),
    };

    let mut stats = RunStats::default();
    let mut active: Vec<VertexIndex> = map.live_slots().collect();
    let mut superstep = 0usize;
    // Selection for superstep 0 is the trivial all-vertices list.
    let mut selection_duration = Duration::ZERO;
    // Push work is proportional to out-degree; resolve the scheduling
    // policy against the out-CSR once for the whole run.
    let out_csr = graph.out_csr().expect("asserted by run_push");
    let schedule = chunks::resolve(config.schedule, out_csr, chunks::max_chunks());

    let tracer = config.trace.as_deref();
    trace::emit_sync(tracer, || TraceEvent::RunBegin {
        engine: trace::EngineKind::Push,
        slots: slots as u64,
        threads: ipregel_par::current_num_threads() as u64,
    });

    // Restore a pending checkpoint: values, flags and superstep land
    // as-is; the combined inbox re-delivers into fresh mailboxes; the
    // active list is rebuilt by this engine's own selection rule, so a
    // checkpoint written by any version restores here.
    if let Some(h) = hooks.as_deref_mut() {
        if let Some(state) = h.take_resume() {
            if state.values.len() != slots {
                return Err(RunError::Resume(format!(
                    "checkpoint has {} slots, this graph has {slots}",
                    state.values.len()
                )));
            }
            values = state.values;
            halted = state.halted;
            superstep = state.superstep;
            for (slot, m) in state.inbox.iter().enumerate() {
                if let Some(m) = *m {
                    cur[slot].deliver(m, P::combine);
                }
            }
            for (i, &(a, msgs)) in state.history.iter().enumerate() {
                stats.push(SuperstepStats {
                    superstep: i,
                    active: a,
                    messages_sent: msgs,
                    duration: Duration::ZERO,
                    selection_duration: Duration::ZERO,
                    load: None,
                });
            }
            active = if bypass.is_some() {
                // Bypass contract (§4): activity ≡ message receipt.
                (0..slots as u32).filter(|&v| state.inbox[v as usize].is_some()).collect()
            } else {
                (0..slots as u32)
                    .filter(|&v| {
                        map.is_live_slot(v)
                            && (!halted[v as usize] || state.inbox[v as usize].is_some())
                    })
                    .collect()
            };
            if active.is_empty() {
                trace::emit_sync(tracer, || TraceEvent::RunEnd {
                    supersteps: stats.num_supersteps() as u64,
                    messages: stats.total_messages(),
                    duration_ns: trace::ns(stats.total_time),
                });
                return Ok(RunOutput::new(values, map, stats, footprint));
            }
        }
    }

    let started = Instant::now();
    loop {
        // Barrier-point bookkeeping: the orchestrating thread owns all
        // state here, so checkpoints and cancellation are clean.
        if let Some(h) = hooks.as_deref_mut() {
            if h.due(superstep) {
                let ck_t0 = Instant::now();
                let inbox: Vec<Option<P::Message>> = cur.iter().map(Mailbox::snapshot).collect();
                let history: Vec<(u64, u64)> =
                    stats.supersteps.iter().map(|s| (s.active, s.messages_sent)).collect();
                h.save(superstep, &values, &halted, &inbox, &history)
                    .map_err(|source| RunError::Checkpoint { superstep, source })?;
                trace::emit_sync(tracer, || TraceEvent::CheckpointSave {
                    superstep: superstep as u64,
                    duration_ns: trace::ns(ck_t0.elapsed()),
                });
            }
        }
        if let Some(deadline) = config.deadline {
            if started.elapsed() >= deadline {
                return Err(RunError::DeadlineExceeded { deadline, superstep, stats });
            }
        }

        trace::emit_sync(tracer, || TraceEvent::SuperstepBegin { superstep: superstep as u64 });
        let t0 = Instant::now();
        let plan = chunks::plan(schedule, &active, slots, out_csr, config.grain);
        // Scheduler counters: the delta across this superstep's parallel
        // region is what the `pool` trace event and LoadStats report.
        let pool_before = ipregel_par::current_pool_stats();
        let per_chunk: Vec<Result<(u64, Duration, u64), ChunkPanic>> = {
            let values_view = SharedSlice::new(&mut values);
            let halted_view = SharedSlice::new(&mut halted);
            let next_ref: &[MB] = &next;
            let cur_ref: &[MB] = &cur;
            let wl = bypass.as_ref();
            let active_ref: &[VertexIndex] = &active;
            let chunk_edges: &[u64] = &plan.chunk_edges;
            plan.chunks
                .par_iter()
                .enumerate()
                .map(|(ci, c)| {
                    // A panicking `compute` is caught *inside* the pool
                    // task: sibling chunks drain normally and the pool
                    // survives; the failure is joined into a
                    // `RunError::VertexPanic` at the barrier.
                    catch_unwind(AssertUnwindSafe(|| {
                        let c_t0 = Instant::now();
                        let cont0 = trace::contention::snapshot();
                        let mut sent = 0u64;
                        #[cfg(feature = "chaos")]
                        crate::chaos::maybe_panic(crate::chaos::CHUNK_PANIC, superstep as u64);
                        for &v in &active_ref[c.start..c.end] {
                            let inbox = cur_ref[v as usize].take();
                            let mut ctx = PushCtx::<P, MB> {
                                superstep,
                                graph,
                                v,
                                inbox,
                                next: next_ref,
                                bypass: wl,
                                sent: 0,
                                halt_vote: false,
                            };
                            // SAFETY: the active list holds distinct slots
                            // (scan filters distinct indices; the bypass
                            // worklist dedups via epoch tags) and the chunks
                            // partition it, so access is disjoint.
                            let mut value = unsafe { values_view.get_mut(v as usize) };
                            program.compute(&mut value, &mut ctx);
                            // SAFETY: same disjointness argument, on the
                            // halted flags array.
                            unsafe { *halted_view.get_mut(v as usize) = ctx.halt_vote };
                            sent += ctx.sent;
                        }
                        let elapsed = c_t0.elapsed();
                        // Which worker ran the chunk: under stealing this
                        // is timing-dependent, so it is measured here.
                        let worker =
                            ipregel_par::current_thread_index().unwrap_or(0) as u64;
                        // Worker-side record: lands in this worker's
                        // shard, drained in chunk order at the barrier.
                        let delta = trace::contention::snapshot().delta_since(&cont0);
                        trace::emit(tracer, || TraceEvent::Chunk {
                            superstep: superstep as u64,
                            chunk: ci as u64,
                            planned_edges: chunk_edges[ci],
                            duration_ns: trace::ns(elapsed),
                            lock_acquisitions: delta.lock_acquisitions,
                            cas_retries: delta.cas_retries,
                            spin_iterations: delta.spin_iterations,
                            worker,
                        });
                        (sent, elapsed, worker)
                    }))
                    .map_err(|payload| ChunkPanic {
                        chunk: ci,
                        vertex_range: if c.end > c.start {
                            (active_ref[c.start], active_ref[c.end - 1])
                        } else {
                            (0, 0)
                        },
                        message: panic_message(payload),
                    })
                })
                .collect()
        };
        let pool_after = ipregel_par::current_pool_stats();
        let mut sent = 0u64;
        let mut chunk_durations = Vec::with_capacity(per_chunk.len());
        let mut chunk_workers = Vec::with_capacity(per_chunk.len());
        let mut first_panic: Option<ChunkPanic> = None;
        for r in per_chunk {
            match r {
                Ok((s, d, w)) => {
                    sent += s;
                    chunk_durations.push(d);
                    chunk_workers.push(w);
                }
                Err(p) if first_panic.is_none() => first_panic = Some(p),
                Err(_) => {}
            }
        }
        if let Some(p) = first_panic {
            return Err(RunError::VertexPanic {
                superstep,
                chunk: p.chunk,
                vertex_range: p.vertex_range,
                message: p.message,
                stats,
            });
        }

        stats.push(SuperstepStats {
            superstep,
            active: active.len() as u64,
            messages_sent: sent,
            duration: t0.elapsed() + selection_duration,
            selection_duration,
            load: Some(LoadStats {
                chunk_edges: plan.chunk_edges,
                chunk_durations,
                chunk_workers,
                steals: pool_after.steals - pool_before.steals,
                overflow: pool_after.overflow - pool_before.overflow,
            }),
        });

        // Barrier: drain the workers' chunk events into the log (in
        // chunk order) before closing the superstep span.
        trace::barrier(tracer, superstep);
        trace::emit_sync(tracer, || {
            let s = stats.supersteps.last().expect("pushed above");
            let load = s.load.as_ref().expect("parallel engine records load");
            TraceEvent::Pool {
                superstep: s.superstep as u64,
                steals: load.steals,
                overflow: load.overflow,
            }
        });
        trace::emit_sync(tracer, || {
            let s = stats.supersteps.last().expect("pushed above");
            TraceEvent::SuperstepEnd {
                superstep: s.superstep as u64,
                active: s.active,
                messages: s.messages_sent,
                duration_ns: trace::ns(s.duration),
                selection_ns: trace::ns(s.selection_duration),
                chunks: s.load.as_ref().map_or(0, |l| l.chunk_edges.len() as u64),
            }
        });

        // Deliveries for superstep s+1 are in `next`; make them current.
        std::mem::swap(&mut cur, &mut next);

        if program.master_compute(superstep, &values) == MasterDecision::Halt {
            break;
        }
        superstep += 1;
        if let Some(cap) = config.max_supersteps {
            if superstep >= cap {
                break;
            }
        }

        let sel_t0 = Instant::now();
        active = match &bypass {
            Some(wl) => {
                // The bypass invariant (Section 4): every vertex halts each
                // superstep, so next active ≡ message recipients ≡ worklist.
                //
                // Dense/sparse switch (an extension in the spirit of
                // Ligra): when most vertices are active anyway, rebuilding
                // the ordered list from the occupancy flags is cheaper
                // than sorting the randomly-ordered worklist; when few
                // are, the drained list avoids the O(|V|) scan entirely.
                let n_active = wl.len();
                if n_active * 8 >= map.num_vertices() as usize {
                    wl.clear();
                    let cur_ref: &[MB] = &cur;
                    (0..slots as u32)
                        .into_par_iter()
                        .filter(|&v| cur_ref[v as usize].has_message())
                        .collect()
                } else {
                    // Sorted drain: scan-order locality, and the ordered
                    // list the chunk planner's prefix-weight cut needs.
                    let drained = wl.drain_sorted();
                    // `queued` counts raw pushes (duplicates included);
                    // `drained` is the deduplicated active list for the
                    // superstep about to run (`superstep` was already
                    // advanced past the one that filled the worklist).
                    trace::emit_sync(tracer, || TraceEvent::WorklistDrain {
                        superstep: superstep as u64,
                        queued: n_active as u64,
                        drained: drained.len() as u64,
                    });
                    drained
                }
            }
            None => {
                let halted_ref: &[bool] = &halted;
                let cur_ref: &[MB] = &cur;
                (0..slots as u32)
                    .into_par_iter()
                    .filter(|&v| {
                        map.is_live_slot(v)
                            && (!halted_ref[v as usize] || cur_ref[v as usize].has_message())
                    })
                    .collect()
            }
        };
        selection_duration = sel_t0.elapsed();
        if active.is_empty() {
            break;
        }
    }

    trace::emit_sync(tracer, || TraceEvent::RunEnd {
        supersteps: stats.num_supersteps() as u64,
        messages: stats.total_messages(),
        duration_ns: trace::ns(stats.total_time),
    });
    Ok(RunOutput::new(values, map, stats, footprint))
}

/// Per-vertex-execution context for the push engine.
struct PushCtx<'a, P: VertexProgram, MB: Mailbox<P::Message>> {
    superstep: usize,
    graph: &'a Graph,
    v: VertexIndex,
    inbox: Option<P::Message>,
    next: &'a [MB],
    bypass: Option<&'a Worklist>,
    sent: u64,
    halt_vote: bool,
}

impl<P: VertexProgram, MB: Mailbox<P::Message>> PushCtx<'_, P, MB> {
    #[inline]
    fn deliver_to_slot(&mut self, slot: VertexIndex, msg: P::Message) {
        let first = self.next[slot as usize].deliver(msg, P::combine);
        if first {
            if let Some(wl) = self.bypass {
                wl.push(slot);
            }
        }
        self.sent += 1;
    }
}

impl<P: VertexProgram, MB: Mailbox<P::Message>> Context for PushCtx<'_, P, MB> {
    type Message = P::Message;

    fn superstep(&self) -> usize {
        self.superstep
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn id(&self) -> VertexId {
        self.graph.id_of(self.v)
    }

    fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.v)
    }

    fn next_message(&mut self) -> Option<P::Message> {
        self.inbox.take()
    }

    fn send(&mut self, to: VertexId, msg: P::Message) {
        assert!(
            self.graph.address_map().contains(to),
            "send to unknown vertex id {to} (graph holds ids {}..{})",
            self.graph.address_map().base(),
            u64::from(self.graph.address_map().base()) + self.graph.num_vertices() as u64,
        );
        self.deliver_to_slot(self.graph.index_of(to), msg);
    }

    fn broadcast(&mut self, msg: P::Message) {
        // `graph` outlives `self`, so the neighbour slice can be copied
        // out before the mutable sends.
        let neighbors: &[VertexIndex] = self.graph.out_neighbors(self.v);
        for &n in neighbors {
            self.deliver_to_slot(n, msg);
        }
    }

    fn vote_to_halt(&mut self) {
        self.halt_vote = true;
    }

    fn for_each_out_edge(&mut self, f: &mut dyn FnMut(VertexId, Weight)) {
        let neighbors = self.graph.out_neighbors(self.v);
        match self.graph.out_weights(self.v) {
            Some(ws) => {
                for (&n, &w) in neighbors.iter().zip(ws) {
                    f(self.graph.id_of(n), w);
                }
            }
            None => {
                for &n in neighbors {
                    f(self.graph.id_of(n), 1);
                }
            }
        }
    }
}
