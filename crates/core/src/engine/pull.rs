//! The pull-combining ("broadcast") engine (Section 6.2).
//!
//! A mirrored design for applications whose only communication is
//! neighbour broadcast: a sender buffers its single broadcast value in an
//! *outbox*; at the next superstep each vertex iterates its in-neighbours,
//! fetches any buffered broadcasts, and combines them into a local inbox
//! variable. Inter-vertex interaction is read-only, writes stay
//! intra-vertex — **no locks, no data races by construction**, and the
//! data-race-protection footprint is zero.
//!
//! The costs the paper calls out: every vertex visits all of its
//! in-neighbours each superstep (so a low active ratio wastes fetches),
//! and cost scales with in-degree. Both effects are visible in the
//! Figure 7 reproduction.
//!
//! Outboxes are double-buffered like push mailboxes. With the selection
//! bypass, a broadcasting vertex enqueues all its out-neighbours, so only
//! potential receivers gather next superstep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ipregel_graph::csr::Weight;
use ipregel_graph::{Graph, VertexId, VertexIndex};
use ipregel_par::prelude::*;

use crate::engine::{
    chunks, in_pool, panic_message, ChunkPanic, RunConfig, RunError, RunOutput, RunResult,
};
use crate::metrics::{FootprintReport, LoadStats, RunStats, SuperstepStats};
use crate::program::{Context, MasterDecision, VertexProgram};
use crate::recover::DynHooks;
use crate::selection::{EpochTags, Worklist};
use crate::sync_cell::SharedSlice;
use crate::trace::{self, TraceEvent};

/// What one chunk reports back to the barrier: messages sent, vertices
/// left unhalted, vertices run, measured duration, and the pool worker
/// that executed it (timing-dependent under work-stealing).
type ChunkOutcome = (u64, u64, u64, Duration, u64);

/// Run `program` on `graph` with the pull-based combiner.
///
/// # Panics
/// * if the graph was built without in-adjacency (the gather needs it);
/// * if the selection bypass is enabled on a graph without out-adjacency
///   (the sender must know its out-neighbours to enqueue them — this is
///   exactly the extra memory the paper observed for "broadcast with
///   selection bypass" in Section 7.4.1);
/// * if `compute` calls `send` — the pull design supports broadcasts only;
/// * on any [`RunError`] — the historical infallible surface.
///   Fault-tolerant callers use [`try_run_pull`].
pub fn run_pull<P>(graph: &Graph, program: &P, config: &RunConfig) -> RunOutput<P::Value>
where
    P: VertexProgram,
{
    try_run_pull(graph, program, config).unwrap_or_else(|e| panic!("run_pull: {e}"))
}

/// Fallible [`run_pull`]: vertex panics surface as
/// [`RunError::VertexPanic`], a missed [`RunConfig::deadline`] as
/// [`RunError::DeadlineExceeded`] — in both cases the thread pool
/// survives and the error carries the completed supersteps' stats.
///
/// # Panics
/// Only on misuse — the graph-shape and broadcast-only contracts listed
/// on [`run_pull`].
pub fn try_run_pull<P>(graph: &Graph, program: &P, config: &RunConfig) -> RunResult<P::Value>
where
    P: VertexProgram,
{
    try_run_pull_recoverable(graph, program, config, None)
}

/// [`try_run_pull`] with checkpoint/restore hooks (see
/// [`crate::recover`]). A checkpoint stores the *combined inbox* — the
/// gather's result, engine-neutral — so a pull checkpoint restores into
/// push engines and vice versa; on resume the first superstep consumes
/// the restored inbox in place of its gather.
pub fn try_run_pull_recoverable<P>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
    hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value>
where
    P: VertexProgram,
{
    assert!(
        graph.has_in_edges(),
        "the pull engine gathers from in-neighbours; build the graph with NeighborMode::InOnly or Both"
    );
    if config.selection_bypass {
        assert!(
            graph.has_out_edges(),
            "pull + selection bypass needs out-adjacency too (NeighborMode::Both): \
             senders enqueue their out-neighbours"
        );
    }
    in_pool(config.threads, move || run_pull_inner(graph, program, config, hooks))
}

fn run_pull_inner<P>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
    mut hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value>
where
    P: VertexProgram,
{
    let map = *graph.address_map();
    let slots = graph.num_slots();

    let mut values: Vec<P::Value> =
        (0..slots as u32).map(|s| program.initial_value(map.id_of(s))).collect();
    let mut halted: Vec<bool> = vec![false; slots];
    // Double-buffered outboxes: read broadcasts of superstep s-1, write
    // broadcasts of superstep s.
    let mut outbox_read: Vec<Option<P::Message>> = vec![None; slots];
    let mut outbox_write: Vec<Option<P::Message>> = vec![None; slots];
    // Who wrote each buffer, so clearing is O(writers), not O(V).
    let mut writers_read = Worklist::new(slots);
    let mut writers_write = Worklist::new(slots);

    let bypass = config.selection_bypass.then(|| (Worklist::new(slots), EpochTags::new(slots)));

    let footprint = FootprintReport {
        graph_bytes: graph.bytes(),
        values_bytes: slots * std::mem::size_of::<P::Value>(),
        mailbox_bytes: 2 * slots * std::mem::size_of::<Option<P::Message>>()
            + writers_read.bytes()
            + writers_write.bytes(),
        lock_bytes: 0, // the race-free design: no data-race protection at all
        flags_bytes: slots * std::mem::size_of::<bool>(),
        worklist_bytes: bypass.as_ref().map_or(0, |(wl, t)| wl.bytes() + t.bytes()),
    };

    let mut stats = RunStats::default();
    let mut active: Vec<VertexIndex> = map.live_slots().collect();
    let mut superstep = 0usize;
    let mut selection_duration = Duration::ZERO;
    // Pull work is dominated by the gather over in-neighbours; resolve
    // the scheduling policy against the in-CSR once for the whole run.
    let in_csr = graph.in_csr().expect("asserted by run_pull");
    let schedule = chunks::resolve(config.schedule, in_csr, chunks::max_chunks());

    let tracer = config.trace.as_deref();
    trace::emit_sync(tracer, || TraceEvent::RunBegin {
        engine: trace::EngineKind::Pull,
        slots: slots as u64,
        threads: ipregel_par::current_num_threads() as u64,
    });

    // Restore a pending checkpoint. The snapshot's combined inbox stands
    // in for the first resumed superstep's gather (the outboxes that fed
    // it died with the old process); everything downstream — broadcasts,
    // writer lists, epoch tags — regenerates naturally from there.
    let mut restored_inbox: Option<Vec<Option<P::Message>>> = None;
    if let Some(h) = hooks.as_deref_mut() {
        if let Some(state) = h.take_resume() {
            if state.values.len() != slots {
                return Err(RunError::Resume(format!(
                    "checkpoint has {} slots, this graph has {slots}",
                    state.values.len()
                )));
            }
            values = state.values;
            halted = state.halted;
            superstep = state.superstep;
            for (i, &(a, msgs)) in state.history.iter().enumerate() {
                stats.push(SuperstepStats {
                    superstep: i,
                    active: a,
                    messages_sent: msgs,
                    duration: Duration::ZERO,
                    selection_duration: Duration::ZERO,
                    load: None,
                });
            }
            active = if bypass.is_some() {
                // The bypass enqueues exactly the out-neighbours of
                // broadcasters ≡ the slots whose gather is non-empty.
                (0..slots as u32).filter(|&v| state.inbox[v as usize].is_some()).collect()
            } else {
                // Scan semantics: every live vertex is checked; the
                // halted-and-empty ones skip inside the superstep.
                map.live_slots().collect()
            };
            restored_inbox = Some(state.inbox);
            if active.is_empty() {
                trace::emit_sync(tracer, || TraceEvent::RunEnd {
                    supersteps: stats.num_supersteps() as u64,
                    messages: stats.total_messages(),
                    duration_ns: trace::ns(stats.total_time),
                });
                return Ok(RunOutput::new(values, map, stats, footprint));
            }
        }
    }

    let started = Instant::now();
    loop {
        // Barrier-point bookkeeping (see the push engine). The inbox a
        // checkpoint stores is the *gather's result* for this superstep,
        // computed here sequentially in the same in-neighbour CSR order
        // the vertices would use — bit-identical by construction.
        if let Some(h) = hooks.as_deref_mut() {
            if h.due(superstep) {
                debug_assert!(
                    restored_inbox.is_none(),
                    "due() never fires at the resume floor, so the restored inbox is consumed"
                );
                let ck_t0 = Instant::now();
                let inbox: Vec<Option<P::Message>> = (0..slots as u32)
                    .map(|v| {
                        let mut acc: Option<P::Message> = None;
                        for &u in graph.in_neighbors(v) {
                            if let Some(m) = outbox_read[u as usize] {
                                match acc.as_mut() {
                                    Some(old) => P::combine(old, m),
                                    None => acc = Some(m),
                                }
                            }
                        }
                        acc
                    })
                    .collect();
                let history: Vec<(u64, u64)> =
                    stats.supersteps.iter().map(|s| (s.active, s.messages_sent)).collect();
                h.save(superstep, &values, &halted, &inbox, &history)
                    .map_err(|source| RunError::Checkpoint { superstep, source })?;
                trace::emit_sync(tracer, || TraceEvent::CheckpointSave {
                    superstep: superstep as u64,
                    duration_ns: trace::ns(ck_t0.elapsed()),
                });
            }
        }
        if let Some(deadline) = config.deadline {
            if started.elapsed() >= deadline {
                return Err(RunError::DeadlineExceeded { deadline, superstep, stats });
            }
        }

        trace::emit_sync(tracer, || TraceEvent::SuperstepBegin { superstep: superstep as u64 });
        let t0 = Instant::now();
        let epoch = superstep as u32 + 1;
        let plan = chunks::plan(schedule, &active, slots, in_csr, config.grain);
        // Scheduler counters: the delta across this superstep's parallel
        // region is what the `pool` trace event and LoadStats report.
        let pool_before = ipregel_par::current_pool_stats();
        let per_chunk: Vec<Result<ChunkOutcome, ChunkPanic>> = {
            let values_view = SharedSlice::new(&mut values);
            let halted_view = SharedSlice::new(&mut halted);
            let read_view = SharedSlice::new(&mut outbox_read);
            let write_view = SharedSlice::new(&mut outbox_write);
            let wl_tags = bypass.as_ref().map(|(wl, tags)| (wl, tags));
            let writers_ref = &writers_write;
            let gather = superstep > 0;
            let restored_ref: Option<&[Option<P::Message>]> = restored_inbox.as_deref();
            let active_ref: &[VertexIndex] = &active;
            let chunk_edges: &[u64] = &plan.chunk_edges;
            plan.chunks
                .par_iter()
                .enumerate()
                .map(|(ci, c)| {
                    // Panic isolation, as in the push engine: caught
                    // inside the pool task, joined at the barrier.
                    catch_unwind(AssertUnwindSafe(|| {
                        let c_t0 = Instant::now();
                        let cont0 = trace::contention::snapshot();
                        let (mut sent, mut not_halted, mut ran) = (0u64, 0u64, 0u64);
                        #[cfg(feature = "chaos")]
                        crate::chaos::maybe_panic(crate::chaos::CHUNK_PANIC, superstep as u64);
                        for &v in &active_ref[c.start..c.end] {
                            // Gather: combine in-neighbour broadcasts
                            // locally — the only inter-vertex interaction,
                            // and it is a read. A resumed superstep takes
                            // its checkpointed inbox instead.
                            let mut inbox: Option<P::Message> = match restored_ref {
                                Some(r) => r[v as usize],
                                None => {
                                    let mut acc: Option<P::Message> = None;
                                    if gather {
                                        for &u in graph.in_neighbors(v) {
                                            // SAFETY: read buffer was written last
                                            // superstep; no writers exist this phase.
                                            if let Some(m) = unsafe { read_view.get(u as usize) } {
                                                match acc.as_mut() {
                                                    Some(old) => P::combine(old, *m),
                                                    None => acc = Some(*m),
                                                }
                                            }
                                        }
                                    }
                                    acc
                                }
                            };
                            // SAFETY: distinct slots (scan indices distinct;
                            // the bypass worklist dedups; chunks partition
                            // the list); writers to this flag run later in
                            // this same vertex execution, never concurrently
                            // on another thread.
                            let was_halted = unsafe { *halted_view.get(v as usize) };
                            if was_halted && inbox.is_none() {
                                // Unfruitful check — the cost §6.2 factor (1)
                                // describes. The vertex does not run.
                                continue;
                            }
                            let mut ctx = PullCtx::<P> {
                                superstep,
                                graph,
                                v,
                                inbox: inbox.take(),
                                outbox: &write_view,
                                writers: writers_ref,
                                wrote: false,
                                bypass: wl_tags,
                                epoch,
                                sent: 0,
                                halt_vote: false,
                            };
                            // SAFETY: distinct slots, as above.
                            let mut value = unsafe { values_view.get_mut(v as usize) };
                            program.compute(&mut value, &mut ctx);
                            // SAFETY: distinct slots, as above.
                            unsafe { *halted_view.get_mut(v as usize) = ctx.halt_vote };
                            sent += ctx.sent;
                            not_halted += u64::from(!ctx.halt_vote);
                            ran += 1;
                        }
                        let elapsed = c_t0.elapsed();
                        // Which worker ran the chunk: under stealing this
                        // is timing-dependent, so it is measured here.
                        let worker =
                            ipregel_par::current_thread_index().unwrap_or(0) as u64;
                        // Worker-side record: lands in this worker's
                        // shard, drained in chunk order at the barrier.
                        let delta = trace::contention::snapshot().delta_since(&cont0);
                        trace::emit(tracer, || TraceEvent::Chunk {
                            superstep: superstep as u64,
                            chunk: ci as u64,
                            planned_edges: chunk_edges[ci],
                            duration_ns: trace::ns(elapsed),
                            lock_acquisitions: delta.lock_acquisitions,
                            cas_retries: delta.cas_retries,
                            spin_iterations: delta.spin_iterations,
                            worker,
                        });
                        (sent, not_halted, ran, elapsed, worker)
                    }))
                    .map_err(|payload| ChunkPanic {
                        chunk: ci,
                        vertex_range: if c.end > c.start {
                            (active_ref[c.start], active_ref[c.end - 1])
                        } else {
                            (0, 0)
                        },
                        message: panic_message(payload),
                    })
                })
                .collect()
        };
        restored_inbox = None;
        let pool_after = ipregel_par::current_pool_stats();
        let mut totals = (0u64, 0u64, 0u64);
        let mut chunk_durations = Vec::with_capacity(per_chunk.len());
        let mut chunk_workers = Vec::with_capacity(per_chunk.len());
        let mut first_panic: Option<ChunkPanic> = None;
        for r in per_chunk {
            match r {
                Ok((s, nh, rn, d, w)) => {
                    totals.0 += s;
                    totals.1 += nh;
                    totals.2 += rn;
                    chunk_durations.push(d);
                    chunk_workers.push(w);
                }
                Err(p) if first_panic.is_none() => first_panic = Some(p),
                Err(_) => {}
            }
        }
        if let Some(p) = first_panic {
            return Err(RunError::VertexPanic {
                superstep,
                chunk: p.chunk,
                vertex_range: p.vertex_range,
                message: p.message,
                stats,
            });
        }
        let (sent, not_halted, ran) = totals;

        stats.push(SuperstepStats {
            superstep,
            // Executed vertices, not checked ones: the scan's unfruitful
            // checks are time, not activity.
            active: ran,
            messages_sent: sent,
            duration: t0.elapsed() + selection_duration,
            selection_duration,
            load: Some(LoadStats {
                chunk_edges: plan.chunk_edges,
                chunk_durations,
                chunk_workers,
                steals: pool_after.steals - pool_before.steals,
                overflow: pool_after.overflow - pool_before.overflow,
            }),
        });

        // Barrier: drain the workers' chunk events into the log (in
        // chunk order) before closing the superstep span.
        trace::barrier(tracer, superstep);
        trace::emit_sync(tracer, || {
            let s = stats.supersteps.last().expect("pushed above");
            let load = s.load.as_ref().expect("parallel engine records load");
            TraceEvent::Pool {
                superstep: s.superstep as u64,
                steals: load.steals,
                overflow: load.overflow,
            }
        });
        trace::emit_sync(tracer, || {
            let s = stats.supersteps.last().expect("pushed above");
            TraceEvent::SuperstepEnd {
                superstep: s.superstep as u64,
                active: s.active,
                messages: s.messages_sent,
                duration_ns: trace::ns(s.duration),
                selection_ns: trace::ns(s.selection_duration),
                chunks: s.load.as_ref().map_or(0, |l| l.chunk_edges.len() as u64),
            }
        });

        // Recycle the read buffer: clear only slots its writers touched,
        // then swap read/write roles.
        {
            let read_view = SharedSlice::new(&mut outbox_read);
            let writers = writers_read.drain_to_vec();
            writers.par_iter().for_each(|&v| {
                // SAFETY: writer lists are duplicate-free per buffer cycle.
                unsafe { *read_view.get_mut(v as usize) = None };
            });
        }
        writers_read.clear();
        std::mem::swap(&mut outbox_read, &mut outbox_write);
        // The writer lists must track their buffers through the swap.
        std::mem::swap(&mut writers_read, &mut writers_write);

        if program.master_compute(superstep, &values) == MasterDecision::Halt {
            break;
        }
        superstep += 1;
        if let Some(cap) = config.max_supersteps {
            if superstep >= cap {
                break;
            }
        }

        let sel_t0 = Instant::now();
        active = match &bypass {
            Some((wl, _)) => {
                // Dense/sparse switch (see the push engine): when the
                // enqueued set is large, checking everyone in slot order
                // beats sorting a huge randomly-ordered list. The gather
                // re-derives each vertex's inbox either way.
                let n_active = wl.len();
                if n_active * 8 >= map.num_vertices() as usize {
                    wl.clear();
                    map.live_slots().collect()
                } else {
                    // Sorted drain (see push engine): locality plus the
                    // ordered list the chunk planner needs.
                    let drained = wl.drain_sorted();
                    // `queued` counts epoch-claimed pushes; `drained` is
                    // the deduplicated active list for the superstep
                    // about to run (`superstep` was already advanced).
                    trace::emit_sync(tracer, || TraceEvent::WorklistDrain {
                        superstep: superstep as u64,
                        queued: n_active as u64,
                        drained: drained.len() as u64,
                    });
                    drained
                }
            }
            None => {
                // No broadcasts pending and every vertex halted → done.
                if sent == 0 && not_halted == 0 {
                    Vec::new()
                } else {
                    // All vertices are *checked* every superstep — the
                    // pull engine's structural cost.
                    map.live_slots().collect()
                }
            }
        };
        selection_duration = sel_t0.elapsed();
        if active.is_empty() {
            break;
        }
    }

    trace::emit_sync(tracer, || TraceEvent::RunEnd {
        supersteps: stats.num_supersteps() as u64,
        messages: stats.total_messages(),
        duration_ns: trace::ns(stats.total_time),
    });
    Ok(RunOutput::new(values, map, stats, footprint))
}

/// Per-vertex-execution context for the pull engine.
struct PullCtx<'a, P: VertexProgram> {
    superstep: usize,
    graph: &'a Graph,
    v: VertexIndex,
    inbox: Option<P::Message>,
    outbox: &'a SharedSlice<'a, Option<P::Message>>,
    writers: &'a Worklist,
    wrote: bool,
    bypass: Option<(&'a Worklist, &'a EpochTags)>,
    epoch: u32,
    sent: u64,
    halt_vote: bool,
}

impl<P: VertexProgram> Context for PullCtx<'_, P> {
    type Message = P::Message;

    fn superstep(&self) -> usize {
        self.superstep
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn id(&self) -> VertexId {
        self.graph.id_of(self.v)
    }

    fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.v)
    }

    fn next_message(&mut self) -> Option<P::Message> {
        self.inbox.take()
    }

    fn send(&mut self, to: VertexId, _msg: P::Message) {
        panic!(
            "pull-based combiner supports neighbour broadcasts only (Section 6.2); \
             point-to-point send to {to} requires a push version"
        );
    }

    fn broadcast(&mut self, msg: P::Message) {
        // SAFETY: slot `v` belongs to this vertex; vertices run at most
        // once per superstep, so the write is exclusive.
        let mut slot = unsafe { self.outbox.get_mut(self.v as usize) };
        match slot.as_mut() {
            Some(old) => P::combine(old, msg),
            None => *slot = Some(msg),
        }
        if !self.wrote {
            self.writers.push(self.v);
            self.wrote = true;
        }
        self.sent += u64::from(self.graph.out_degree(self.v));
        if let Some((wl, tags)) = self.bypass {
            for &n in self.graph.out_neighbors(self.v) {
                if tags.claim(n, self.epoch) {
                    wl.push(n);
                }
            }
        }
    }

    fn vote_to_halt(&mut self) {
        self.halt_vote = true;
    }

    fn for_each_out_edge(&mut self, _f: &mut dyn FnMut(VertexId, Weight)) {
        panic!("for_each_out_edge is a push-engine feature; the pull combiner is broadcast-only");
    }
}
