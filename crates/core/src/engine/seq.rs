//! A deliberately simple single-threaded reference engine.
//!
//! Not one of the paper's versions: this engine exists as a *differential
//! oracle*. It implements BSP semantics with the most obvious possible
//! data structures (two `Vec<Option<M>>` buffers, a linear scan, no
//! locks, no worklists), so its behaviour is easy to audit by eye. The
//! test suites run every optimised version against it on randomised
//! inputs; any divergence convicts the optimisation, not the program.
//!
//! It is also the only engine with a guaranteed deterministic message
//! arrival order (ascending sender slot), which makes it useful for
//! debugging user programs whose combine is accidentally order-sensitive.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ipregel_graph::csr::Weight;
use ipregel_graph::{Graph, VertexId, VertexIndex};

use crate::engine::{panic_message, RunConfig, RunError, RunOutput, RunResult};
use crate::metrics::{FootprintReport, LoadStats, RunStats, SuperstepStats};
use crate::program::{Context, MasterDecision, VertexProgram};
use crate::recover::DynHooks;
use crate::trace::{self, TraceEvent};

/// Run `program` on `graph` single-threaded with scan selection.
///
/// `config.threads` and `config.selection_bypass` are ignored (this
/// engine is the plain baseline); `config.max_supersteps` is honoured.
///
/// # Panics
/// On a graph without out-edges, a send to an unknown identifier, or any
/// [`RunError`] — the historical infallible surface. Fault-tolerant
/// callers use [`try_run_sequential`].
pub fn run_sequential<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
) -> RunOutput<P::Value> {
    try_run_sequential(graph, program, config).unwrap_or_else(|e| panic!("run_sequential: {e}"))
}

/// Fallible [`run_sequential`]: vertex panics surface as
/// [`RunError::VertexPanic`] (the whole superstep is one chunk here), a
/// missed [`RunConfig::deadline`] as [`RunError::DeadlineExceeded`].
pub fn try_run_sequential<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
) -> RunResult<P::Value> {
    try_run_sequential_recoverable(graph, program, config, None)
}

/// [`try_run_sequential`] with checkpoint/restore hooks (see
/// [`crate::recover`]). The baseline's inbox buffer already *is* the
/// checkpoint's inbox shape, so save and restore are direct copies.
pub fn try_run_sequential_recoverable<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
    mut hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value> {
    assert!(graph.has_out_edges(), "the sequential engine routes sends through out-adjacency");
    let map = *graph.address_map();
    let slots = graph.num_slots();

    let mut values: Vec<P::Value> =
        (0..slots as u32).map(|s| program.initial_value(map.id_of(s))).collect();
    let mut halted = vec![false; slots];
    let mut cur: Vec<Option<P::Message>> = vec![None; slots];
    let mut next: Vec<Option<P::Message>> = vec![None; slots];

    let footprint = FootprintReport {
        graph_bytes: graph.bytes(),
        values_bytes: slots * std::mem::size_of::<P::Value>(),
        mailbox_bytes: 2 * slots * std::mem::size_of::<Option<P::Message>>(),
        lock_bytes: 0,
        flags_bytes: slots,
        worklist_bytes: 0,
    };

    let mut stats = RunStats::default();
    let mut superstep = 0usize;

    let tracer = config.trace.as_deref();
    trace::emit_sync(tracer, || TraceEvent::RunBegin {
        engine: trace::EngineKind::Seq,
        slots: slots as u64,
        threads: 1,
    });

    // Restore a pending checkpoint: this engine's inbox buffer has the
    // checkpoint's exact shape, so the state drops straight in.
    if let Some(h) = hooks.as_deref_mut() {
        if let Some(state) = h.take_resume() {
            if state.values.len() != slots {
                return Err(RunError::Resume(format!(
                    "checkpoint has {} slots, this graph has {slots}",
                    state.values.len()
                )));
            }
            values = state.values;
            halted = state.halted;
            cur = state.inbox;
            superstep = state.superstep;
            for (i, &(a, msgs)) in state.history.iter().enumerate() {
                stats.push(SuperstepStats {
                    superstep: i,
                    active: a,
                    messages_sent: msgs,
                    duration: Duration::ZERO,
                    selection_duration: Duration::ZERO,
                    load: None,
                });
            }
        }
    }

    let started = Instant::now();
    loop {
        if let Some(h) = hooks.as_deref_mut() {
            if h.due(superstep) {
                let ck_t0 = Instant::now();
                let history: Vec<(u64, u64)> =
                    stats.supersteps.iter().map(|s| (s.active, s.messages_sent)).collect();
                h.save(superstep, &values, &halted, &cur, &history)
                    .map_err(|source| RunError::Checkpoint { superstep, source })?;
                trace::emit_sync(tracer, || TraceEvent::CheckpointSave {
                    superstep: superstep as u64,
                    duration_ns: trace::ns(ck_t0.elapsed()),
                });
            }
        }
        if let Some(deadline) = config.deadline {
            if started.elapsed() >= deadline {
                return Err(RunError::DeadlineExceeded { deadline, superstep, stats });
            }
        }

        trace::emit_sync(tracer, || TraceEvent::SuperstepBegin { superstep: superstep as u64 });
        let t0 = Instant::now();
        // One implicit chunk: catch a panicking `compute` and surface it
        // as the same `VertexPanic` the parallel engines produce.
        let step = catch_unwind(AssertUnwindSafe(|| {
            let mut sent = 0u64;
            let mut active = 0u64;
            let mut edges = 0u64;
            #[cfg(feature = "chaos")]
            crate::chaos::maybe_panic(crate::chaos::CHUNK_PANIC, superstep as u64);
            for v in map.live_slots() {
                let inbox = cur[v as usize].take();
                if halted[v as usize] && inbox.is_none() {
                    continue;
                }
                active += 1;
                edges += u64::from(graph.out_degree(v));
                let mut ctx = SeqCtx::<P> {
                    superstep,
                    graph,
                    v,
                    inbox,
                    next: &mut next,
                    sent: 0,
                    halt_vote: false,
                };
                // `values[v]` and the context borrow disjoint state.
                let mut value = values[v as usize].clone();
                program.compute(&mut value, &mut ctx);
                sent += ctx.sent;
                halted[v as usize] = ctx.halt_vote;
                values[v as usize] = value;
            }
            (sent, active, edges)
        }));
        let (sent, active, edges) = match step {
            Ok(t) => t,
            Err(payload) => {
                return Err(RunError::VertexPanic {
                    superstep,
                    chunk: 0,
                    vertex_range: (0, (slots as u32).saturating_sub(1)),
                    message: panic_message(payload),
                    stats,
                })
            }
        };
        let duration = t0.elapsed();
        stats.push(SuperstepStats {
            superstep,
            active,
            messages_sent: sent,
            duration,
            // The baseline fuses its check into the vertex loop; no
            // separable selection phase exists to time.
            selection_duration: std::time::Duration::ZERO,
            // Single-threaded: the whole superstep is one chunk, the
            // trivial (and trivially balanced) case of the schedulers.
            // Weight matches the parallel planners' unit: edges visited
            // plus one per active vertex.
            load: Some(LoadStats {
                chunk_edges: vec![edges + active],
                chunk_durations: vec![duration],
                // No pool involved: the one chunk runs on the caller.
                chunk_workers: vec![0],
                steals: 0,
                overflow: 0,
            }),
        });
        // Single-threaded: the orchestrator emits the whole span itself
        // (one implicit chunk; barrier still samples RSS on cadence).
        trace::emit_sync(tracer, || TraceEvent::Chunk {
            superstep: superstep as u64,
            chunk: 0,
            planned_edges: edges + active,
            duration_ns: trace::ns(duration),
            lock_acquisitions: 0,
            cas_retries: 0,
            spin_iterations: 0,
            worker: 0,
        });
        trace::barrier(tracer, superstep);
        trace::emit_sync(tracer, || TraceEvent::SuperstepEnd {
            superstep: superstep as u64,
            active,
            messages: sent,
            duration_ns: trace::ns(duration),
            selection_ns: 0,
            chunks: 1,
        });
        std::mem::swap(&mut cur, &mut next);

        if program.master_compute(superstep, &values) == MasterDecision::Halt {
            break;
        }
        superstep += 1;
        if let Some(cap) = config.max_supersteps {
            if superstep >= cap {
                break;
            }
        }
        let any_pending = map
            .live_slots()
            .any(|v| !halted[v as usize] || cur[v as usize].is_some());
        if !any_pending {
            break;
        }
    }

    trace::emit_sync(tracer, || TraceEvent::RunEnd {
        supersteps: stats.num_supersteps() as u64,
        messages: stats.total_messages(),
        duration_ns: trace::ns(stats.total_time),
    });
    Ok(RunOutput::new(values, map, stats, footprint))
}

struct SeqCtx<'a, P: VertexProgram> {
    superstep: usize,
    graph: &'a Graph,
    v: VertexIndex,
    inbox: Option<P::Message>,
    next: &'a mut [Option<P::Message>],
    sent: u64,
    halt_vote: bool,
}

impl<P: VertexProgram> SeqCtx<'_, P> {
    fn deliver(&mut self, slot: VertexIndex, msg: P::Message) {
        match self.next[slot as usize].as_mut() {
            Some(old) => P::combine(old, msg),
            None => self.next[slot as usize] = Some(msg),
        }
        self.sent += 1;
    }
}

impl<P: VertexProgram> Context for SeqCtx<'_, P> {
    type Message = P::Message;

    fn superstep(&self) -> usize {
        self.superstep
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn id(&self) -> VertexId {
        self.graph.id_of(self.v)
    }

    fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.v)
    }

    fn next_message(&mut self) -> Option<P::Message> {
        self.inbox.take()
    }

    fn send(&mut self, to: VertexId, msg: P::Message) {
        assert!(self.graph.address_map().contains(to), "send to unknown vertex id {to}");
        self.deliver(self.graph.index_of(to), msg);
    }

    fn broadcast(&mut self, msg: P::Message) {
        let neighbors: &[VertexIndex] = self.graph.out_neighbors(self.v);
        for &n in neighbors {
            self.deliver(n, msg);
        }
    }

    fn vote_to_halt(&mut self) {
        self.halt_vote = true;
    }

    fn for_each_out_edge(&mut self, f: &mut dyn FnMut(VertexId, Weight)) {
        let neighbors = self.graph.out_neighbors(self.v);
        match self.graph.out_weights(self.v) {
            Some(ws) => {
                for (&n, &w) in neighbors.iter().zip(ws) {
                    f(self.graph.id_of(n), w);
                }
            }
            None => {
                for &n in neighbors {
                    f(self.graph.id_of(n), 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::push::run_push;
    use crate::mailbox::SpinMailbox;
    use ipregel_graph::{GraphBuilder, NeighborMode};

    struct Flood;
    impl VertexProgram for Flood {
        type Value = u32;
        type Message = u32;
        fn initial_value(&self, _id: u32) -> u32 {
            u32::MAX
        }
        fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
            let mut best = ctx.id();
            while let Some(m) = ctx.next_message() {
                best = best.min(m);
            }
            if best < *value {
                *value = best;
                ctx.broadcast(best);
            }
            ctx.vote_to_halt();
        }
        fn combine(old: &mut u32, new: u32) {
            if new < *old {
                *old = new;
            }
        }
    }

    #[test]
    fn sequential_matches_parallel() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 0..40u32 {
            b.add_edge(i, (i * 7 + 1) % 40);
            b.add_edge((i * 3 + 2) % 40, i);
        }
        let g = b.build().unwrap();
        let seq = run_sequential(&g, &Flood, &RunConfig::default());
        let par = run_push::<Flood, SpinMailbox<u32>>(&g, &Flood, &RunConfig::default());
        assert_eq!(seq.values, par.values);
        assert_eq!(seq.stats.total_messages(), par.stats.total_messages());
    }

    #[test]
    fn sequential_is_deterministic() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 0..20u32 {
            b.add_edge(i, (i + 1) % 20);
        }
        let g = b.build().unwrap();
        let a = run_sequential(&g, &Flood, &RunConfig::default());
        let b2 = run_sequential(&g, &Flood, &RunConfig::default());
        assert_eq!(a.values, b2.values);
        assert_eq!(a.stats.supersteps.len(), b2.stats.supersteps.len());
    }

    #[test]
    fn honours_superstep_cap() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        struct Chatty;
        impl VertexProgram for Chatty {
            type Value = u64;
            type Message = u64;
            fn initial_value(&self, _id: u32) -> u64 {
                0
            }
            fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
                *value += 1;
                ctx.broadcast(1);
            }
            fn combine(old: &mut u64, new: u64) {
                *old += new;
            }
        }
        let out = run_sequential(&g, &Chatty, &RunConfig { max_supersteps: Some(5), ..RunConfig::default() });
        assert_eq!(out.stats.num_supersteps(), 5);
        assert_eq!(*out.value_of(0), 5);
    }
}
