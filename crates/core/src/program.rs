//! The user-facing programming model: the paper's Figures 3 and 4.
//!
//! A vertex-centric application implements [`VertexProgram`], providing
//! the two user-defined functions of Figure 4 — `compute` and `combine` —
//! plus an initial value per vertex. Inside `compute`, the vertex talks to
//! the framework through a [`Context`], which exposes exactly the
//! functions of Figure 3 (`IP_get_next_message`, `IP_send_message`,
//! `IP_broadcast`, `IP_vote_to_halt`, `IP_get_superstep`,
//! `IP_is_first_superstep`, `IP_get_vertices_count`).
//!
//! The same program runs unmodified on every engine version, mirroring
//! the paper's promise that users "write their code once, and see it
//! adapted to any module version" (Section 3.1.2).

use ipregel_graph::csr::Weight;
use ipregel_graph::VertexId;

/// A vertex-centric application: the paper's user-defined functions.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state (the `val` member of the user's vertex struct).
    type Value: Send + Sync + Clone;
    /// Message type exchanged between vertices. Combiners keep at most one
    /// per mailbox (Section 6.3), so it must be `Copy` and cheap.
    type Message: Copy + Send + Sync;

    /// Initial value of the vertex with external identifier `id`, set
    /// before superstep 0 (e.g. `UINT_MAX` in the paper's SSSP).
    fn initial_value(&self, id: VertexId) -> Self::Value;

    /// The code run on each active vertex at each superstep (Figure 4's
    /// `IP_compute`).
    fn compute<C: Context<Message = Self::Message>>(&self, value: &mut Self::Value, ctx: &mut C);

    /// Combine an incoming message into the one already in the mailbox
    /// (Figure 4's `IP_combine`). Must be commutative and associative —
    /// delivery order is unspecified under parallelism.
    fn combine(old: &mut Self::Message, new: Self::Message);

    /// Master-side hook run between supersteps (our extension, in the
    /// spirit of Pregel's master compute; the paper lists load-balancing
    /// and control extensions as future work). Returning
    /// [`MasterDecision::Halt`] stops the run after this superstep.
    fn master_compute(&self, superstep: usize, values: &[Self::Value]) -> MasterDecision {
        let _ = (superstep, values);
        MasterDecision::Continue
    }
}

/// Verdict of [`VertexProgram::master_compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterDecision {
    /// Keep running.
    Continue,
    /// Stop after the current superstep even if vertices remain active.
    Halt,
}

/// The framework functions available inside `compute` (Figure 3).
///
/// One context exists per vertex execution; methods that name "the
/// vertex" refer to the vertex currently being computed.
pub trait Context {
    /// Message type of the running program.
    type Message: Copy;

    /// Current superstep number, starting at 0 (`IP_get_superstep`).
    fn superstep(&self) -> usize;

    /// Whether this is superstep 0 (`IP_is_first_superstep`).
    fn is_first_superstep(&self) -> bool {
        self.superstep() == 0
    }

    /// Total number of vertices in the graph (`IP_get_vertices_count`).
    fn num_vertices(&self) -> usize;

    /// External identifier of the vertex.
    fn id(&self) -> VertexId;

    /// Number of out-neighbours of the vertex (the `out_neighbours_count`
    /// member used by the paper's PageRank).
    fn out_degree(&self) -> u32;

    /// Pop the next message from the vertex's inbox
    /// (`IP_get_next_message`). Combiners guarantee at most one message
    /// per superstep, so this returns `Some` at most once per execution.
    fn next_message(&mut self) -> Option<Self::Message>;

    /// Send `msg` to the vertex with external identifier `to`
    /// (`IP_send_message`).
    ///
    /// # Panics
    /// On the pull-based (broadcast) engine, which by design supports only
    /// neighbour broadcasts (Section 6.2).
    fn send(&mut self, to: VertexId, msg: Self::Message);

    /// Send `msg` to every out-neighbour (`IP_broadcast`).
    fn broadcast(&mut self, msg: Self::Message);

    /// Halt this vertex; it re-activates only on message receipt
    /// (`IP_vote_to_halt`).
    fn vote_to_halt(&mut self);

    /// Visit every out-edge as `(neighbour id, weight)`; weight is 1 for
    /// unweighted graphs. Extension used by weighted SSSP; broadcast-only
    /// applications never call it.
    ///
    /// # Panics
    /// On the pull-based engine (point-to-point edge traversal is a
    /// push-engine feature).
    fn for_each_out_edge(&mut self, f: &mut dyn FnMut(VertexId, Weight));
}

/// Check a combine function for the algebraic laws the engines assume.
///
/// Delivery order is unspecified under parallelism and the pull engine
/// re-associates freely, so `combine` must be **commutative** and
/// **associative** over the message domain. This helper exercises both
/// laws over every pair/triple of `samples` and returns the first
/// violation as a human-readable message — call it from a unit test of
/// your vertex program:
///
/// ```
/// use ipregel::program::check_combiner;
///
/// fn min(old: &mut u32, new: u32) {
///     if new < *old { *old = new; }
/// }
/// assert_eq!(check_combiner(min, &[0, 1, 5, 7, u32::MAX]), Ok(()));
/// ```
pub fn check_combiner<M: Copy + PartialEq + std::fmt::Debug>(
    combine: fn(&mut M, M),
    samples: &[M],
) -> Result<(), String> {
    let apply = |a: M, b: M| {
        let mut x = a;
        combine(&mut x, b);
        x
    };
    for &a in samples {
        for &b in samples {
            let ab = apply(a, b);
            let ba = apply(b, a);
            if ab != ba {
                return Err(format!(
                    "not commutative: combine({a:?}, {b:?}) = {ab:?} but combine({b:?}, {a:?}) = {ba:?}"
                ));
            }
            for &c in samples {
                let left = apply(apply(a, b), c);
                let right = apply(a, apply(b, c));
                if left != right {
                    return Err(format!(
                        "not associative on ({a:?}, {b:?}, {c:?}): {left:?} vs {right:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Ready-made combine functions for common reductions.
pub mod combiners {
    /// Keep the minimum (Hashmin, SSSP).
    pub fn min<T: Ord + Copy>(old: &mut T, new: T) {
        if new < *old {
            *old = new;
        }
    }

    /// Keep the maximum.
    pub fn max<T: Ord + Copy>(old: &mut T, new: T) {
        if new > *old {
            *old = new;
        }
    }

    /// Sum (PageRank).
    pub fn sum_f64(old: &mut f64, new: f64) {
        *old += new;
    }

    /// Sum for integer counters.
    pub fn sum_u64(old: &mut u64, new: u64) {
        *old += new;
    }
}

#[cfg(test)]
mod tests {
    use super::{check_combiner, combiners};

    #[test]
    fn law_checker_accepts_lattice_combiners() {
        assert_eq!(check_combiner(combiners::min::<u32>, &[0, 3, 9, u32::MAX]), Ok(()));
        assert_eq!(check_combiner(combiners::max::<i64>, &[-5, 0, 7]), Ok(()));
        assert_eq!(check_combiner(combiners::sum_u64, &[0, 1, 10, 1 << 40]), Ok(()));
        fn or(old: &mut u64, new: u64) {
            *old |= new;
        }
        assert_eq!(check_combiner(or, &[0b01, 0b10, 0b110]), Ok(()));
    }

    #[test]
    fn law_checker_rejects_subtraction() {
        fn sub(old: &mut i32, new: i32) {
            *old -= new;
        }
        let err = check_combiner(sub, &[1, 2, 3]).unwrap_err();
        assert!(err.contains("not commutative") || err.contains("not associative"), "{err}");
    }

    #[test]
    fn law_checker_rejects_overwrite() {
        fn last_wins(old: &mut u32, new: u32) {
            *old = new;
        }
        let err = check_combiner(last_wins, &[1, 2]).unwrap_err();
        assert!(err.contains("not commutative"), "{err}");
    }

    #[test]
    fn min_keeps_smaller() {
        let mut m = 10u32;
        combiners::min(&mut m, 12);
        assert_eq!(m, 10);
        combiners::min(&mut m, 3);
        assert_eq!(m, 3);
    }

    #[test]
    fn max_keeps_larger() {
        let mut m = 5i64;
        combiners::max(&mut m, 2);
        assert_eq!(m, 5);
        combiners::max(&mut m, 9);
        assert_eq!(m, 9);
    }

    #[test]
    fn sums_accumulate() {
        let mut f = 1.5f64;
        combiners::sum_f64(&mut f, 2.25);
        assert_eq!(f, 3.75);
        let mut u = 7u64;
        combiners::sum_u64(&mut u, 3);
        assert_eq!(u, 10);
    }
}
