//! # iPregel — a combiner-based in-memory shared-memory vertex-centric framework
//!
//! A Rust reproduction of *iPregel* (Capelli, Hu, Zakian — ICPP 2018): a
//! single-node, in-memory, shared-memory Pregel implementing the paper's
//! three core optimisations:
//!
//! 1. **Selection bypass** ([`selection`], Section 4) — senders enqueue
//!    recipients at send time, eliminating the per-superstep active scan
//!    for programs whose vertices halt every superstep.
//! 2. **Efficient vertex addressing** (in `ipregel-graph`, Section 5) —
//!    identifiers double as array locations (direct / offset / desolate
//!    memory), no hashmap layer.
//! 3. **Combiners everywhere** ([`mailbox`], Section 6) — single-message
//!    mailboxes under a block-waiting mutex, a 1-byte busy-waiting
//!    spinlock, a race-free pull design, or (our extension) a lock-free
//!    CAS slot.
//!
//! Where the C original selects module versions via compile flags, this
//! crate monomorphises an engine per version and exposes the sweep
//! through [`Version`] — the user program is written once against
//! [`VertexProgram`]/[`Context`] and runs on every version unchanged.
//!
//! ## Example: the paper's SSSP (Figure 5)
//!
//! ```
//! use ipregel::{run, Context, RunConfig, Version, CombinerKind, VertexProgram};
//! use ipregel_graph::{GraphBuilder, NeighborMode};
//!
//! struct Sssp { source: u32 }
//!
//! impl VertexProgram for Sssp {
//!     type Value = u32;
//!     type Message = u32;
//!
//!     fn initial_value(&self, _id: u32) -> u32 {
//!         u32::MAX
//!     }
//!
//!     fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
//!         let mut reference = if ctx.id() == self.source { 0 } else { u32::MAX };
//!         while let Some(m) = ctx.next_message() {
//!             reference = reference.min(m);
//!         }
//!         if reference < *value {
//!             *value = reference;
//!             ctx.broadcast(*value + 1);
//!         }
//!         ctx.vote_to_halt();
//!     }
//!
//!     fn combine(old: &mut u32, new: u32) {
//!         if new < *old {
//!             *old = new;
//!         }
//!     }
//! }
//!
//! let mut b = GraphBuilder::new(NeighborMode::OutOnly);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let g = b.build().unwrap();
//!
//! let version = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
//! let out = run(&g, &Sssp { source: 0 }, version, &RunConfig::default());
//! assert_eq!(*out.value_of(2), 2);
//! ```

pub mod aggregate;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod engine;
pub mod json;
pub mod mailbox;
pub mod metrics;
pub mod program;
pub mod recover;
pub mod selection;
pub mod sync;
pub mod sync_cell;
pub mod trace;
pub mod version;

pub use engine::pull::{run_pull, try_run_pull};
pub use engine::push::{run_push, try_run_push};
pub use engine::seq::{run_sequential, try_run_sequential};
pub use engine::{RunConfig, RunError, RunOutput, RunResult, Schedule};
pub use mailbox::{AtomicMailbox, Mailbox, MutexMailbox, PackMessage, SpinGuard, SpinLock, SpinMailbox};
pub use metrics::{FootprintReport, LoadStats, RunStats, SuperstepStats};
pub use program::{check_combiner, combiners, Context, MasterDecision, VertexProgram};
pub use recover::{CheckpointConfig, Persist, ResumeState};
pub use trace::{EngineKind, TraceEvent, Tracer};
pub use version::{run, run_packed, try_run, try_run_packed, CombinerKind, Version};
