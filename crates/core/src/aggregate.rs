//! Parallel reductions over vertex values (aggregator support).
//!
//! Pregel's aggregators let the master observe global state between
//! supersteps. The paper's applications don't need them, but its
//! conclusion lists richer control as future work; this module provides
//! the building block: an associative parallel reduction over the value
//! array, usable inside [`crate::VertexProgram::master_compute`] to
//! implement convergence tests, global minima, counts, etc.

use ipregel_par::prelude::*;

/// Reduce `values` with `map` then the associative `fold` (identity-less;
/// returns `None` on empty input).
pub fn aggregate<V, T, M, F>(values: &[V], map: M, fold: F) -> Option<T>
where
    V: Sync,
    T: Send,
    M: Fn(&V) -> T + Sync,
    F: Fn(T, T) -> T + Sync,
{
    values.par_iter().map(&map).reduce_with(&fold)
}

/// Sum of `map(value)` over all values.
pub fn sum_by<V: Sync, M: Fn(&V) -> f64 + Sync>(values: &[V], map: M) -> f64 {
    values.par_iter().map(&map).sum()
}

/// Number of values satisfying `pred`.
pub fn count_by<V: Sync, P: Fn(&V) -> bool + Sync>(values: &[V], pred: P) -> u64 {
    values.par_iter().filter(|v| pred(v)).count() as u64
}

/// Minimum of `map(value)` under `Ord`.
pub fn min_by<V: Sync, T: Ord + Send, M: Fn(&V) -> T + Sync>(values: &[V], map: M) -> Option<T> {
    aggregate(values, map, std::cmp::min)
}

/// Maximum of `map(value)` under `Ord`.
pub fn max_by<V: Sync, T: Ord + Send, M: Fn(&V) -> T + Sync>(values: &[V], map: M) -> Option<T> {
    aggregate(values, map, std::cmp::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_count_min_max() {
        let vals = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(sum_by(&vals, |&v| f64::from(v)), 31.0);
        assert_eq!(count_by(&vals, |&v| v > 3), 4);
        assert_eq!(min_by(&vals, |&v| v), Some(1));
        assert_eq!(max_by(&vals, |&v| v), Some(9));
    }

    #[test]
    fn empty_input_yields_none() {
        let vals: Vec<u32> = Vec::new();
        assert_eq!(min_by(&vals, |&v| v), None);
        assert_eq!(sum_by(&vals, |&v| f64::from(v)), 0.0);
        assert_eq!(count_by(&vals, |_| true), 0);
    }

    #[test]
    fn aggregate_is_order_insensitive_for_assoc_ops() {
        let vals: Vec<u64> = (0..10_000).collect();
        let total = aggregate(&vals, |&v| v, |a, b| a + b).unwrap();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }
}
