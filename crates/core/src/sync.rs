//! Synchronisation shim: `std` primitives normally, [loom] under
//! `--cfg loom`.
//!
//! Every atomic, lock, and interior-mutability cell used by the
//! concurrency core (the spinlock, the three mailboxes, the worklist)
//! is imported from this module rather than from `std` directly. A
//! normal build re-exports the `std` types at zero cost; compiling the
//! workspace with `RUSTFLAGS="--cfg loom"` swaps in loom's
//! model-checked doubles, and `crates/core/tests/loom.rs` then
//! exhaustively explores the interleavings of the key protocols
//! (spinlock mutual exclusion, the mailbox empty→occupied transition
//! the selection bypass relies on, worklist shard handoff).
//!
//! Two deliberate deviations from a plain re-export:
//!
//! * [`cell::UnsafeCell`] exposes loom's closure-based `with` /
//!   `with_mut` API in both modes, because loom tracks each access and
//!   therefore cannot offer `std`'s bare `get()`. The std version is
//!   `#[repr(transparent)]` and compiles to the same code as a raw
//!   `std::cell::UnsafeCell` access.
//! * `sync_cell::SharedSlice` is *not* expressed in terms of this
//!   module's cell: it is built by viewing a `&mut [T]` in place, and
//!   loom's `UnsafeCell` is not layout-compatible with `T`. It uses a
//!   raw-pointer representation instead (sound under Stacked Borrows,
//!   compiles unchanged under loom) and is covered by the
//!   `check-disjoint` dynamic checker plus Miri/TSan rather than by
//!   loom.
//!
//! [loom]: https://docs.rs/loom

/// Atomic integer and boolean types plus memory orderings.
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Atomic integer and boolean types plus memory orderings (loom doubles).
#[cfg(loom)]
pub mod atomic {
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

#[cfg(not(loom))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard};

/// Busy-wait hinting.
pub mod hint {
    /// Emit a spin-loop hint; under loom this yields to the model's
    /// scheduler instead (a tight spin would never let the model make
    /// progress on the other thread).
    #[inline]
    pub fn spin_loop() {
        #[cfg(not(loom))]
        std::hint::spin_loop();
        #[cfg(loom)]
        loom::thread::yield_now();
    }
}

/// Interior mutability with loom-compatible access tracking.
pub mod cell {
    /// An [`std::cell::UnsafeCell`] (or loom's checked double) behind
    /// loom's closure-based access API.
    ///
    /// `with` grants a read pointer, `with_mut` a write pointer; the
    /// pointer must not escape the closure. Dereferencing is still
    /// `unsafe` — the caller owns the no-concurrent-conflicting-access
    /// argument — but under loom every `with`/`with_mut` is recorded,
    /// so an unsound argument fails the model instead of being UB.
    #[cfg(not(loom))]
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(loom))]
    impl<T> UnsafeCell<T> {
        /// A new cell owning `data`.
        pub const fn new(data: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Run `f` with a read pointer to the contents.
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Run `f` with a write pointer to the contents.
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }

    /// Loom's checked cell behind the same API.
    #[cfg(loom)]
    #[derive(Debug)]
    pub struct UnsafeCell<T>(loom::cell::UnsafeCell<T>);

    #[cfg(loom)]
    impl<T> UnsafeCell<T> {
        /// A new cell owning `data`.
        pub fn new(data: T) -> Self {
            UnsafeCell(loom::cell::UnsafeCell::new(data))
        }

        /// Run `f` with a read pointer to the contents (tracked).
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            self.0.with(f)
        }

        /// Run `f` with a write pointer to the contents (tracked).
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            self.0.with_mut(f)
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::atomic::{AtomicU32, Ordering};
    use super::cell::UnsafeCell;

    #[test]
    fn shim_atomics_are_std_atomics() {
        let a = AtomicU32::new(1);
        a.store(7, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert_eq!(std::mem::size_of::<AtomicU32>(), 4);
    }

    #[test]
    fn cell_with_and_with_mut_round_trip() {
        let c = UnsafeCell::new(5u64);
        // SAFETY: single-threaded test; no concurrent access exists.
        c.with_mut(|p| unsafe { *p += 1 });
        // SAFETY: as above.
        assert_eq!(c.with(|p| unsafe { *p }), 6);
    }

    #[test]
    fn cell_is_layout_transparent() {
        // SharedSlice-style code may rely on the std cell being free;
        // the wrapper must not add size or alignment.
        assert_eq!(std::mem::size_of::<UnsafeCell<u64>>(), std::mem::size_of::<u64>());
        assert_eq!(std::mem::align_of::<UnsafeCell<u64>>(), std::mem::align_of::<u64>());
    }

    #[test]
    fn spin_loop_hint_is_callable() {
        super::hint::spin_loop();
    }
}
