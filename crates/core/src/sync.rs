//! Synchronisation shim: `std` primitives normally, [loom] under
//! `--cfg loom`.
//!
//! Every atomic, lock, and interior-mutability cell used by the
//! concurrency core (the spinlock, the three mailboxes, the worklist)
//! is imported from this module rather than from `std` directly. A
//! normal build re-exports the `std` types at zero cost; compiling the
//! workspace with `RUSTFLAGS="--cfg loom"` swaps in loom's
//! model-checked doubles, and `crates/core/tests/loom.rs` then
//! exhaustively explores the interleavings of the key protocols
//! (spinlock mutual exclusion, the mailbox empty→occupied transition
//! the selection bypass relies on, worklist shard handoff).
//!
//! Two deliberate deviations from a plain re-export:
//!
//! * [`cell::UnsafeCell`] exposes loom's closure-based `with` /
//!   `with_mut` API in both modes, because loom tracks each access and
//!   therefore cannot offer `std`'s bare `get()`. The std version is
//!   `#[repr(transparent)]` and compiles to the same code as a raw
//!   `std::cell::UnsafeCell` access.
//! * `sync_cell::SharedSlice` is *not* expressed in terms of this
//!   module's cell: it is built by viewing a `&mut [T]` in place, and
//!   loom's `UnsafeCell` is not layout-compatible with `T`. It uses a
//!   raw-pointer representation instead (sound under Stacked Borrows,
//!   compiles unchanged under loom) and is covered by the
//!   `check-disjoint` dynamic checker plus Miri/TSan rather than by
//!   loom.
//!
//! [loom]: https://docs.rs/loom

/// Atomic integer and boolean types plus memory orderings.
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Atomic integer and boolean types plus memory orderings (loom doubles).
#[cfg(loom)]
pub mod atomic {
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

#[cfg(not(loom))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard};

/// Busy-wait hinting.
pub mod hint {
    /// Emit a spin-loop hint; under loom this yields to the model's
    /// scheduler instead (a tight spin would never let the model make
    /// progress on the other thread).
    #[inline]
    pub fn spin_loop() {
        #[cfg(not(loom))]
        std::hint::spin_loop();
        #[cfg(loom)]
        loom::thread::yield_now();
    }
}

/// Interior mutability with loom-compatible access tracking.
pub mod cell {
    /// An [`std::cell::UnsafeCell`] (or loom's checked double) behind
    /// loom's closure-based access API.
    ///
    /// `with` grants a read pointer, `with_mut` a write pointer; the
    /// pointer must not escape the closure. Dereferencing is still
    /// `unsafe` — the caller owns the no-concurrent-conflicting-access
    /// argument — but under loom every `with`/`with_mut` is recorded,
    /// so an unsound argument fails the model instead of being UB.
    #[cfg(not(loom))]
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(loom))]
    impl<T> UnsafeCell<T> {
        /// A new cell owning `data`.
        pub const fn new(data: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Run `f` with a read pointer to the contents.
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Run `f` with a write pointer to the contents.
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }

    /// Loom's checked cell behind the same API.
    #[cfg(loom)]
    #[derive(Debug)]
    pub struct UnsafeCell<T>(loom::cell::UnsafeCell<T>);

    #[cfg(loom)]
    impl<T> UnsafeCell<T> {
        /// A new cell owning `data`.
        pub fn new(data: T) -> Self {
            UnsafeCell(loom::cell::UnsafeCell::new(data))
        }

        /// Run `f` with a read pointer to the contents (tracked).
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            self.0.with(f)
        }

        /// Run `f` with a write pointer to the contents (tracked).
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            self.0.with_mut(f)
        }
    }
}

/// Lock-hierarchy instrumentation: this crate's lock classes plus an
/// [`OrderedMutex`](lockorder::OrderedMutex) over the *shim* mutex, so
/// loom models of mutex-based protocols keep working unchanged.
///
/// The detector itself lives in `ipregel_par::lockorder` (the lowest
/// layer — pool locks rank below everything here); this module
/// re-exports its API and declares the classes of every lock the core
/// crate owns. The full hierarchy is mirrored in
/// `crates/lint/src/manifest.rs` (`LOCK_HIERARCHY`) and `ipregel-lint`
/// cross-checks the two, so rank edits cannot drift past the manifest.
pub mod lockorder {
    pub use ipregel_par::lockorder::{acquire, acquire_try, held_count, Held, LockClass};

    /// Whether the runtime lock-order detector is compiled in. Lets
    /// downstream crates (which see this crate's resolved features, not
    /// their own) skip size assertions the detector's bookkeeping
    /// fields would invalidate.
    pub const fn armed() -> bool {
        cfg!(feature = "lock-order")
    }

    /// Every lock class the workspace declares, pool classes included.
    pub mod classes {
        pub use ipregel_par::lockorder::classes::{
            POOL_DEQUE, POOL_LATCH, POOL_OVERFLOW, POOL_PANIC, POOL_RESULT, POOL_STATE,
        };

        use super::LockClass;

        /// Serialises the chaos unit tests around the process-global
        /// plan (test-only; ranks just below `chaos.active` because its
        /// holder arms/evaluates the plan).
        pub const CHAOS_TEST: LockClass = LockClass::new(33, "chaos.test");
        /// The chaos registry's active-plan slot (`chaos::ACTIVE`).
        pub const CHAOS_ACTIVE: LockClass = LockClass::new(35, "chaos.active");
        /// The worklist's off-pool fallback vec (`Worklist::fallback`).
        pub const WORKLIST_FALLBACK: LockClass = LockClass::new(40, "worklist.fallback");
        /// A tracer's per-worker event shard (`Tracer::shards`).
        pub const TRACER_SHARD: LockClass = LockClass::new(50, "tracer.shard");
        /// A tracer's main event log (`Tracer::log`). Ranks above the
        /// shards: `barrier`/`take_events` drain shard → log.
        pub const TRACER_LOG: LockClass = LockClass::new(60, "tracer.log");
        /// A `MutexMailbox` message slot (`MutexMailbox::slot`).
        pub const MAILBOX_SLOT: LockClass = LockClass::new(70, "mailbox.slot");
        /// A `SpinMailbox` spinlock (`mailbox::spin::SpinLock`).
        /// Mailbox classes rank highest: a vertex program may send
        /// (locking a mailbox) from inside any engine context, so no
        /// other lock may ever be taken *under* a mailbox lock.
        pub const MAILBOX_SPIN: LockClass = LockClass::new(80, "mailbox.spin");
    }

    /// The shim-mutex counterpart of
    /// [`ipregel_par::lockorder::OrderedMutex`]: same hierarchy check,
    /// but wrapping [`crate::sync::Mutex`] so that under `--cfg loom`
    /// the inner lock is loom's model-checked double.
    pub struct OrderedMutex<T> {
        inner: super::Mutex<T>,
        #[cfg(feature = "lock-order")]
        class: &'static LockClass,
    }

    impl<T> OrderedMutex<T> {
        /// A new unlocked mutex of the given class.
        #[cfg(not(loom))]
        pub const fn new(class: &'static LockClass, value: T) -> Self {
            #[cfg(not(feature = "lock-order"))]
            let _ = class;
            OrderedMutex {
                inner: super::Mutex::new(value),
                #[cfg(feature = "lock-order")]
                class,
            }
        }

        /// A new unlocked mutex of the given class (loom's constructor
        /// is not `const`).
        #[cfg(loom)]
        pub fn new(class: &'static LockClass, value: T) -> Self {
            #[cfg(not(feature = "lock-order"))]
            let _ = class;
            OrderedMutex {
                inner: super::Mutex::new(value),
                #[cfg(feature = "lock-order")]
                class,
            }
        }

        /// Blocking lock; checks the hierarchy before blocking.
        pub fn lock(&self) -> std::sync::LockResult<OrderedGuard<'_, T>> {
            #[cfg(feature = "lock-order")]
            let held = acquire(self.class);
            #[cfg(not(feature = "lock-order"))]
            let held = no_op_token();
            match self.inner.lock() {
                Ok(inner) => Ok(OrderedGuard { _held: held, inner }),
                Err(poisoned) => Err(std::sync::PoisonError::new(OrderedGuard {
                    _held: held,
                    inner: poisoned.into_inner(),
                })),
            }
        }

        /// Non-blocking lock; records but (being unable to deadlock)
        /// does not enforce the hierarchy.
        pub fn try_lock(&self) -> std::sync::TryLockResult<OrderedGuard<'_, T>> {
            use std::sync::{PoisonError, TryLockError};
            #[cfg(feature = "lock-order")]
            let held = acquire_try(self.class);
            #[cfg(not(feature = "lock-order"))]
            let held = no_op_token();
            match self.inner.try_lock() {
                Ok(inner) => Ok(OrderedGuard { _held: held, inner }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(poisoned)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(OrderedGuard {
                        _held: held,
                        inner: poisoned.into_inner(),
                    })))
                }
            }
        }
    }

    impl<T> std::fmt::Debug for OrderedMutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let mut d = f.debug_struct("OrderedMutex");
            #[cfg(feature = "lock-order")]
            d.field("class", &self.class.name());
            d.finish_non_exhaustive()
        }
    }

    /// The feature-off [`Held`] token (zero-sized; `acquire` is not
    /// called so the detector's thread-local stays untouched).
    #[cfg(not(feature = "lock-order"))]
    fn no_op_token() -> Held {
        // acquire() with the feature off is an inlined no-op returning
        // the empty token; routing through it keeps `Held` construction
        // in one place.
        acquire(&classes::MAILBOX_SPIN)
    }

    /// Guard of an [`OrderedMutex`]: the shim guard plus the hierarchy
    /// token, released together.
    #[derive(Debug)]
    pub struct OrderedGuard<'a, T> {
        _held: Held,
        inner: super::MutexGuard<'a, T>,
    }

    impl<T> std::ops::Deref for OrderedGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::atomic::{AtomicU32, Ordering};
    use super::cell::UnsafeCell;

    #[test]
    fn shim_atomics_are_std_atomics() {
        let a = AtomicU32::new(1);
        // ordering(Release): smoke test of the shim's re-export only
        a.store(7, Ordering::Release);
        // ordering(Acquire): pairs with the Release store above
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert_eq!(std::mem::size_of::<AtomicU32>(), 4);
    }

    #[test]
    fn cell_with_and_with_mut_round_trip() {
        let c = UnsafeCell::new(5u64);
        // SAFETY: single-threaded test; no concurrent access exists.
        c.with_mut(|p| unsafe { *p += 1 });
        // SAFETY: as above.
        assert_eq!(c.with(|p| unsafe { *p }), 6);
    }

    #[test]
    fn cell_is_layout_transparent() {
        // SharedSlice-style code may rely on the std cell being free;
        // the wrapper must not add size or alignment.
        assert_eq!(std::mem::size_of::<UnsafeCell<u64>>(), std::mem::size_of::<u64>());
        assert_eq!(std::mem::align_of::<UnsafeCell<u64>>(), std::mem::align_of::<u64>());
    }

    #[test]
    fn spin_loop_hint_is_callable() {
        super::hint::spin_loop();
    }
}
