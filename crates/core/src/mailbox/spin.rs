//! Busy-waiting push combiner (Section 6.1).
//!
//! Combiner critical sections are tiny — typically one compare-and-replace
//! — so the paper argues for busy-waiting: no park/unpark overhead, and a
//! lock that is a single byte of state instead of a queue-bearing mutex
//! (4 bytes vs 40 in the paper's gcc; one lock per vertex makes that a
//! 90% cut of the data-race-protection footprint).
//!
//! The spinlock follows the construction in *Rust Atomics and Locks*
//! (ch. 4): `compare_exchange_weak` acquire to lock, a `spin_loop` hint
//! while contended, release store to unlock.

use std::cell::UnsafeCell;
use std::hint::spin_loop;
use std::sync::atomic::{AtomicBool, Ordering};

use super::Mailbox;

/// A minimal test-and-set spinlock: the busy-waiting synchronisation of
/// Section 6.1.
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// A new, unlocked lock.
    pub const fn new() -> Self {
        SpinLock { locked: AtomicBool::new(false) }
    }

    /// Busy-wait until the lock is acquired.
    #[inline]
    pub fn lock(&self) {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Spin on a plain load first: cheaper than hammering CAS on a
            // contended line (test-and-test-and-set).
            while self.locked.load(Ordering::Relaxed) {
                spin_loop();
            }
        }
    }

    /// Try to acquire without waiting.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Release the lock.
    ///
    /// # Safety-adjacent contract
    /// Must only be called by the thread that holds the lock; this type
    /// does not track ownership (it is one byte, like the paper's).
    #[inline]
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// A single-message mailbox protected by a [`SpinLock`].
#[derive(Debug)]
pub struct SpinMailbox<M> {
    lock: SpinLock,
    has: AtomicBool,
    slot: UnsafeCell<Option<M>>,
}

// SAFETY: `slot` is only touched while `lock` is held; M: Send suffices.
unsafe impl<M: Copy + Send> Sync for SpinMailbox<M> {}
unsafe impl<M: Copy + Send> Send for SpinMailbox<M> {}

impl<M: Copy + Send> Mailbox<M> for SpinMailbox<M> {
    fn empty() -> Self {
        SpinMailbox { lock: SpinLock::new(), has: AtomicBool::new(false), slot: UnsafeCell::new(None) }
    }

    fn deliver(&self, msg: M, combine: fn(&mut M, M)) -> bool {
        self.lock.lock();
        // SAFETY: lock held.
        let slot = unsafe { &mut *self.slot.get() };
        let first = match slot.as_mut() {
            Some(old) => {
                combine(old, msg);
                false
            }
            None => {
                *slot = Some(msg);
                self.has.store(true, Ordering::Relaxed);
                true
            }
        };
        self.lock.unlock();
        first
    }

    fn take(&self) -> Option<M> {
        self.lock.lock();
        // SAFETY: lock held.
        let m = unsafe { (*self.slot.get()).take() };
        if m.is_some() {
            self.has.store(false, Ordering::Relaxed);
        }
        self.lock.unlock();
        m
    }

    fn has_message(&self) -> bool {
        self.has.load(Ordering::Relaxed)
    }

    fn lock_bytes() -> usize {
        std::mem::size_of::<SpinLock>()
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn spinlock_excludes() {
        // Two threads increment a shared counter under the lock; no lost
        // updates means mutual exclusion held.
        let lock = SpinLock::new();
        let counter = UnsafeCell::new(0u64);
        struct Shared<'a>(&'a SpinLock, &'a UnsafeCell<u64>);
        unsafe impl Sync for Shared<'_> {}
        let shared = Shared(&lock, &counter);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sh = &shared;
                s.spawn(move || {
                    for _ in 0..50_000 {
                        sh.0.lock();
                        unsafe { *sh.1.get() += 1 };
                        sh.0.unlock();
                    }
                });
            }
        });
        assert_eq!(unsafe { *counter.get() }, 200_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn spinlock_is_one_byte() {
        // The §6.1 size argument: busy-waiting locks are fundamentally
        // lighter. Ours is a single byte (gcc's spinlock is 4).
        assert_eq!(std::mem::size_of::<SpinLock>(), 1);
        assert!(<SpinMailbox<u32> as Mailbox<u32>>::lock_bytes() < MutexLockBytes::get());
    }

    struct MutexLockBytes;
    impl MutexLockBytes {
        fn get() -> usize {
            std::mem::size_of::<std::sync::Mutex<()>>()
        }
    }

    #[test]
    fn empty_then_fill() {
        conformance::empty_then_fill::<SpinMailbox<u32>>();
    }

    #[test]
    fn combines_on_occupied() {
        conformance::combines_on_occupied::<SpinMailbox<u32>>();
    }

    #[test]
    fn concurrent_delivery_is_linearizable() {
        conformance::concurrent_delivery_is_linearizable::<SpinMailbox<u32>>();
    }

    #[test]
    fn concurrent_sum_loses_nothing() {
        conformance::concurrent_sum_loses_nothing::<SpinMailbox<u32>>();
    }
}
