//! Busy-waiting push combiner (Section 6.1).
//!
//! Combiner critical sections are tiny — typically one compare-and-replace
//! — so the paper argues for busy-waiting: no park/unpark overhead, and a
//! lock that is a single byte of state instead of a queue-bearing mutex
//! (4 bytes vs 40 in the paper's gcc; one lock per vertex makes that a
//! 90% cut of the data-race-protection footprint).
//!
//! The spinlock follows the construction in *Rust Atomics and Locks*
//! (ch. 4): `compare_exchange_weak` acquire to lock, a `spin_loop` hint
//! while contended, release store to unlock. Ownership is enforced by a
//! guard: [`SpinLock::lock`] returns a [`SpinGuard`] whose drop performs
//! the release, so a non-owning thread cannot unlock by accident — the
//! raw [`SpinLock::unlock`] escape hatch is `unsafe`.
//!
//! All synchronisation state comes from [`crate::sync`], so the loom
//! suite (`tests/loom.rs`) model-checks mutual exclusion and
//! release/acquire visibility over every interleaving.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::cell::UnsafeCell;
use crate::sync::hint::spin_loop;
use crate::sync::lockorder::{self, classes, Held, LockClass};

use super::Mailbox;

/// A minimal test-and-set spinlock: the busy-waiting synchronisation of
/// Section 6.1.
///
/// Under the `lock-order` feature the lock carries its hierarchy class
/// (default [`classes::MAILBOX_SPIN`]) and every acquisition is checked
/// against the calling thread's held-lock stack; with the feature off
/// the class field vanishes and the lock is the §6.1 single byte again.
#[derive(Debug)]
pub struct SpinLock {
    locked: AtomicBool,
    #[cfg(feature = "lock-order")]
    class: &'static LockClass,
}

impl Default for SpinLock {
    fn default() -> Self {
        Self::new()
    }
}

impl SpinLock {
    /// A new, unlocked lock of the default mailbox class.
    #[cfg(not(loom))]
    pub const fn new() -> Self {
        Self::with_class(&classes::MAILBOX_SPIN)
    }

    /// A new, unlocked lock (loom's atomics are not const-constructible).
    #[cfg(loom)]
    pub fn new() -> Self {
        Self::with_class(&classes::MAILBOX_SPIN)
    }

    /// A new, unlocked lock of an explicit hierarchy class (ignored —
    /// and free — unless the `lock-order` feature is on).
    #[cfg(not(loom))]
    pub const fn with_class(class: &'static LockClass) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = class;
        SpinLock {
            locked: AtomicBool::new(false),
            #[cfg(feature = "lock-order")]
            class,
        }
    }

    /// A new, unlocked lock of an explicit hierarchy class (loom's
    /// atomics are not const-constructible).
    #[cfg(loom)]
    pub fn with_class(class: &'static LockClass) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = class;
        SpinLock {
            locked: AtomicBool::new(false),
            #[cfg(feature = "lock-order")]
            class,
        }
    }

    /// The detector token for an acquisition of this lock. A no-op
    /// returning a zero-sized token unless `lock-order` is enabled.
    #[inline(always)]
    fn acquire_token(&self, blocking: bool) -> Held {
        #[cfg(feature = "lock-order")]
        {
            if blocking {
                lockorder::acquire(self.class)
            } else {
                lockorder::acquire_try(self.class)
            }
        }
        #[cfg(not(feature = "lock-order"))]
        {
            let _ = blocking;
            lockorder::acquire(&classes::MAILBOX_SPIN)
        }
    }

    /// Busy-wait until the lock is acquired; the returned guard releases
    /// it on drop.
    #[inline]
    pub fn lock(&self) -> SpinGuard<'_> {
        // Hierarchy check happens *before* the busy-wait, so an
        // inversion panics deterministically instead of spinning forever.
        let held = self.acquire_token(true);
        // Spin accounting exists only in `trace` builds; `cfg!` keeps a
        // single code path while the counter increments compile away.
        let mut spins = 0u64;
        while self
            .locked
            // ordering(Acquire): lock acquisition; pairs with the
            // Release store in `unlock` so the slot writes of the
            // previous holder are visible. ordering(Relaxed): on the
            // failure load — a failed CAS publishes nothing
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Spin on a plain load first: cheaper than hammering CAS on a
            // contended line (test-and-test-and-set). Under loom the hint
            // yields to the model scheduler so the owner can progress.
            // ordering(Relaxed): advisory contention peek; the Acquire
            // CAS above is what synchronizes
            while self.locked.load(Ordering::Relaxed) {
                if cfg!(feature = "trace") {
                    spins += 1;
                }
                spin_loop();
            }
        }
        crate::trace::contention::note_spin_iterations(spins);
        crate::trace::contention::note_lock_acquisition();
        SpinGuard { lock: self, _held: held }
    }

    /// Try to acquire without waiting; `Some(guard)` on success.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinGuard<'_>> {
        // ordering(Acquire): lock acquisition, pairs with `unlock`'s
        // Release store; ordering(Relaxed): on failure, as nothing was
        // acquired
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(SpinGuard { lock: self, _held: self.acquire_token(false) })
        } else {
            None
        }
    }

    /// Release the lock without a guard.
    ///
    /// # Safety
    /// The calling thread must currently own the lock (obtained via a
    /// guard it has [`std::mem::forget`]ten, or through FFI-style manual
    /// management). Unlocking a lock someone else holds destroys mutual
    /// exclusion. Prefer dropping the [`SpinGuard`].
    #[inline]
    pub unsafe fn unlock(&self) {
        // ordering(Release): lock release; pairs with the Acquire CAS in
        // `lock`/`try_lock`, publishing the critical section's writes
        self.locked.store(false, Ordering::Release);
    }
}

/// Ownership token for a held [`SpinLock`]; releases the lock on drop.
///
/// Carries the lock-order [`Held`] token (zero-sized with the feature
/// off), so the detector's recorded hold window matches the real one.
/// `mem::forget`ting a guard leaks the token along with the lock — raw
/// [`SpinLock::unlock`] management is invisible to the detector.
#[derive(Debug)]
#[must_use = "dropping the guard is what releases the lock"]
pub struct SpinGuard<'a> {
    lock: &'a SpinLock,
    _held: Held,
}

impl Drop for SpinGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: a guard exists only while its thread owns the lock,
        // and drop runs at most once — this is the owning release.
        unsafe { self.lock.unlock() };
    }
}

/// A single-message mailbox protected by a [`SpinLock`].
#[derive(Debug)]
pub struct SpinMailbox<M> {
    lock: SpinLock,
    has: AtomicBool,
    slot: UnsafeCell<Option<M>>,
}

// SAFETY: `slot` is only touched while `lock` is held; M: Send suffices.
unsafe impl<M: Copy + Send> Sync for SpinMailbox<M> {}
// SAFETY: moving the mailbox moves the M by value; M: Send suffices.
unsafe impl<M: Copy + Send> Send for SpinMailbox<M> {}

impl<M: Copy + Send> Mailbox<M> for SpinMailbox<M> {
    fn empty() -> Self {
        SpinMailbox { lock: SpinLock::new(), has: AtomicBool::new(false), slot: UnsafeCell::new(None) }
    }

    fn deliver(&self, msg: M, combine: fn(&mut M, M)) -> bool {
        // lock-order(mailbox.spin)
        let _guard = self.lock.lock();
        self.slot.with_mut(|p| {
            // SAFETY: the spinlock guard is held for the whole closure;
            // every other slot access also runs under the lock.
            let slot = unsafe { &mut *p };
            match slot.as_mut() {
                Some(old) => {
                    combine(old, msg);
                    false
                }
                None => {
                    *slot = Some(msg);
                    // ordering(Relaxed): advisory occupancy shadow,
                    // written under the spinlock; scan selection reads
                    // it only after the superstep barrier
                    self.has.store(true, Ordering::Relaxed);
                    true
                }
            }
        })
    }

    fn take(&self) -> Option<M> {
        // lock-order(mailbox.spin)
        let _guard = self.lock.lock();
        self.slot.with_mut(|p| {
            // SAFETY: lock held, as in `deliver`.
            let m = unsafe { (*p).take() };
            if m.is_some() {
                // ordering(Relaxed): advisory occupancy shadow, written
                // in the exclusive read phase
                self.has.store(false, Ordering::Relaxed);
            }
            m
        })
    }

    fn has_message(&self) -> bool {
        // ordering(Relaxed): advisory peek; the barrier between deliver
        // and selection publishes the flag
        self.has.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Option<M> {
        // lock-order(mailbox.spin)
        let _guard = self.lock.lock();
        // SAFETY: lock held, as in `deliver`.
        self.slot.with_mut(|p| unsafe { *p })
    }

    fn lock_bytes() -> usize {
        // The synchronisation state proper is the one atomic byte; the
        // `lock-order` detector's class pointer (when armed) is
        // diagnostic bookkeeping, not part of the §6 memory story.
        std::mem::size_of::<crate::sync::atomic::AtomicU8>()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn spinlock_excludes() {
        // Threads increment a shared counter under the lock; no lost
        // updates means mutual exclusion held. (The loom suite proves
        // this over all interleavings; this is the full-speed version.)
        let (threads, iters) = if cfg!(miri) { (2u32, 100u64) } else { (4, 50_000) };
        let lock = SpinLock::new();
        let counter = UnsafeCell::new(0u64);
        struct Shared<'a>(&'a SpinLock, &'a UnsafeCell<u64>);
        // SAFETY: the cell is only dereferenced while the lock is held.
        unsafe impl Sync for Shared<'_> {}
        let shared = Shared(&lock, &counter);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let sh = &shared;
                s.spawn(move || {
                    for _ in 0..iters {
                        // lock-order(mailbox.spin)
                        let _guard = sh.0.lock();
                        // SAFETY: guard held for the increment.
                        sh.1.with_mut(|p| unsafe { *p += 1 });
                    }
                });
            }
        });
        // SAFETY: all threads joined; no concurrent access remains.
        let total = counter.with(|p| unsafe { *p });
        assert_eq!(total, u64::from(threads) * iters);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new();
        // lock-order(mailbox.spin)
        let g = lock.try_lock();
        assert!(g.is_some());
        // lock-order(mailbox.spin)
        assert!(lock.try_lock().is_none());
        drop(g);
        // lock-order(mailbox.spin)
        let g2 = lock.try_lock();
        assert!(g2.is_some());
        drop(g2);
    }

    #[test]
    fn guard_drop_releases() {
        let lock = SpinLock::new();
        {
            // lock-order(mailbox.spin)
            let _guard = lock.lock();
            // lock-order(mailbox.spin)
            assert!(lock.try_lock().is_none());
        }
        // Guard dropped → lock free again.
        // lock-order(mailbox.spin)
        assert!(lock.try_lock().is_some());
    }

    // `mem::forget`ting the guard would leak the detector's held-lock
    // token (the raw-unlock escape hatch is documented as invisible to
    // the detector), so this test only runs disarmed.
    #[cfg(not(feature = "lock-order"))]
    #[test]
    fn raw_unlock_is_available_to_owners() {
        let lock = SpinLock::new();
        // lock-order(mailbox.spin)
        let guard = lock.lock();
        std::mem::forget(guard);
        // SAFETY: this thread owns the lock (guard forgotten above).
        unsafe { lock.unlock() };
        // lock-order(mailbox.spin)
        assert!(lock.try_lock().is_some());
    }

    // The class pointer the `lock-order` feature adds widens the lock;
    // the byte-size claim is about the shipping (disarmed) layout.
    #[cfg(not(feature = "lock-order"))]
    #[test]
    fn spinlock_is_one_byte() {
        // The §6.1 size argument: busy-waiting locks are fundamentally
        // lighter. Ours is a single byte (gcc's spinlock is 4).
        assert_eq!(std::mem::size_of::<SpinLock>(), 1);
        assert!(<SpinMailbox<u32> as Mailbox<u32>>::lock_bytes() < MutexLockBytes::get());
    }

    #[cfg(not(feature = "lock-order"))]
    struct MutexLockBytes;
    #[cfg(not(feature = "lock-order"))]
    impl MutexLockBytes {
        fn get() -> usize {
            std::mem::size_of::<crate::sync::Mutex<()>>()
        }
    }

    #[test]
    fn empty_then_fill() {
        conformance::empty_then_fill::<SpinMailbox<u32>>();
    }

    #[test]
    fn combines_on_occupied() {
        conformance::combines_on_occupied::<SpinMailbox<u32>>();
    }

    #[test]
    fn concurrent_delivery_is_linearizable() {
        conformance::concurrent_delivery_is_linearizable::<SpinMailbox<u32>>();
    }

    #[test]
    fn concurrent_sum_loses_nothing() {
        conformance::concurrent_sum_loses_nothing::<SpinMailbox<u32>>();
    }
}
