//! Single-message mailboxes and their synchronisation variants.
//!
//! Section 6.3: with combiners, a mailbox holds *at most one* message —
//! an incoming message either fills an empty mailbox or is combined with
//! the occupant. No dynamically-resizable inbox exists anywhere, which is
//! a large part of iPregel's memory story.
//!
//! Three push-combiner synchronisation strategies are provided:
//!
//! * [`MutexMailbox`] — block-waiting (Section 6.1's pthread mutex);
//! * [`SpinMailbox`] — busy-waiting on a hand-built 1-byte spinlock
//!   (Section 6.1's GNU99 spinlock, 10× lighter than the mutex);
//! * [`AtomicMailbox`] — a lock-free CAS loop over a packed 64-bit slot;
//!   an ablation extension beyond the paper quantifying what the spinlock
//!   leaves on the table.
//!
//! The pull-based combiner (Section 6.2) needs no mailbox locking at all;
//! it lives in the pull engine, not here.
//!
//! Engines keep **two** mailbox arrays and swap them every superstep:
//! vertices read superstep `s` messages from the *current* array while
//! sends for superstep `s + 1` land in the *next* array, realising BSP
//! delivery semantics without per-message buffering.

mod atomic;
mod mutex;
mod spin;

pub use atomic::{AtomicMailbox, PackMessage};
pub use mutex::MutexMailbox;
pub use spin::{SpinGuard, SpinLock, SpinMailbox};

/// A single-message, concurrently-deliverable mailbox.
pub trait Mailbox<M: Copy>: Send + Sync {
    /// A fresh, empty mailbox.
    fn empty() -> Self;

    /// Deliver `msg`, combining with any occupant via `combine`. Safe to
    /// call from many threads concurrently — this is the §6.1 hotspot.
    ///
    /// Returns whether the mailbox was empty (this was the superstep's
    /// first delivery) — the signal the selection bypass uses to enqueue
    /// the recipient exactly once without any extra synchronisation
    /// (Section 4: the sender already knows, it holds the inbox).
    fn deliver(&self, msg: M, combine: fn(&mut M, M)) -> bool;

    /// Remove and return the occupant. Called in the read phase, where the
    /// engine guarantees no concurrent `deliver` on the same buffer.
    fn take(&self) -> Option<M>;

    /// Cheap occupancy peek used by scan selection.
    fn has_message(&self) -> bool;

    /// Copy out the occupant without removing it. Called only at the
    /// superstep barrier (checkpointing — see [`crate::recover`]), where
    /// the engine guarantees no concurrent `deliver` or `take`.
    fn snapshot(&self) -> Option<M>;

    /// Bytes of synchronisation state per mailbox (the paper's 40-byte
    /// mutex vs 4-byte spinlock comparison); 0 for lock-free mailboxes.
    fn lock_bytes() -> usize;
}

#[cfg(all(test, not(loom)))]
pub(crate) mod conformance {
    //! Shared conformance suite run against every mailbox implementation.

    use super::Mailbox;
    use crate::sync::atomic::{AtomicU64, Ordering};

    fn min32(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }

    pub fn empty_then_fill<MB: Mailbox<u32>>() {
        let mb = MB::empty();
        assert!(!mb.has_message());
        assert_eq!(mb.snapshot(), None);
        assert_eq!(mb.take(), None);
        assert!(mb.deliver(5, min32));
        assert!(mb.has_message());
        assert_eq!(mb.snapshot(), Some(5));
        assert!(mb.has_message(), "snapshot must not consume the occupant");
        assert_eq!(mb.take(), Some(5));
        assert!(!mb.has_message());
        assert_eq!(mb.snapshot(), None);
        assert_eq!(mb.take(), None);
    }

    pub fn combines_on_occupied<MB: Mailbox<u32>>() {
        let mb = MB::empty();
        assert!(mb.deliver(5, min32));
        assert!(!mb.deliver(9, min32));
        assert!(!mb.deliver(2, min32));
        assert_eq!(mb.take(), Some(2));
    }

    pub fn concurrent_delivery_is_linearizable<MB: Mailbox<u32>>() {
        // 8 threads × 1000 deliveries of a min-combined stream; the final
        // occupant must be the global minimum, and exactly one delivery
        // may observe the empty mailbox (the bypass-enqueue signal).
        // (Scaled down under Miri, which executes threads interpretively.)
        let (threads, iters) = if cfg!(miri) { (2u32, 50u32) } else { (8, 1000) };
        let mb = MB::empty();
        let min_seen = AtomicU64::new(u64::MAX);
        let firsts = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let mb = &mb;
                let min_seen = &min_seen;
                let firsts = &firsts;
                s.spawn(move || {
                    // Simple deterministic per-thread pseudo-random stream.
                    let mut x = 0x9e3779b9u32 ^ t.wrapping_mul(0x85eb_ca6b);
                    for _ in 0..iters {
                        x ^= x << 13;
                        x ^= x >> 17;
                        x ^= x << 5;
                        let v = x | 1; // avoid 0 to keep u64::MAX sentinel free
                        // ordering(Relaxed): test tally; thread join synchronizes
                        min_seen.fetch_min(u64::from(v), Ordering::Relaxed);
                        if mb.deliver(v, min32) {
                            // ordering(Relaxed): test tally; thread join synchronizes
                            firsts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // ordering(Relaxed): read after all threads joined
        assert_eq!(mb.take(), Some(min_seen.load(Ordering::Relaxed) as u32));
        // ordering(Relaxed): read after all threads joined
        assert_eq!(firsts.load(Ordering::Relaxed), 1, "exactly one first delivery");
    }

    pub fn concurrent_sum_loses_nothing<MB: Mailbox<u32>>() {
        // Sum-combining from many threads: total must be exact — this
        // catches lost updates under racy delivery.
        fn add(old: &mut u32, new: u32) {
            *old += new;
        }
        let (threads, iters) = if cfg!(miri) { (2u32, 50u32) } else { (8, 10_000) };
        let mb = MB::empty();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let mb = &mb;
                s.spawn(move || {
                    for _ in 0..iters {
                        mb.deliver(1, add);
                    }
                });
            }
        });
        assert_eq!(mb.take(), Some(threads * iters));
    }
}
