//! Block-waiting push combiner (Section 6.1).
//!
//! The paper's baseline synchronisation: a heavyweight OS-backed lock per
//! inbox. Threads that lose the race are put to sleep and queued — good
//! CPU citizenship, but the lock structure is an order of magnitude
//! heavier than a spinlock (40 bytes vs 4 in the paper's gcc measurement)
//! and pays park/unpark latency on a critical section that is typically a
//! single compare-and-replace.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::lockorder::{classes, OrderedMutex};

use super::Mailbox;

/// A single-message mailbox protected by a blocking mutex (the shim's
/// `Mutex` behind the lock-order wrapper).
///
/// Occupancy is shadowed in a relaxed [`AtomicBool`] so scan selection can
/// peek without acquiring the lock; the flag is only ever written while
/// the lock is held (or during the exclusive read phase), so it can never
/// claim a message that isn't there once deliveries have quiesced.
#[derive(Debug)]
pub struct MutexMailbox<M> {
    slot: OrderedMutex<Option<M>>,
    has: AtomicBool,
}

impl<M: Copy + Send> Mailbox<M> for MutexMailbox<M> {
    fn empty() -> Self {
        MutexMailbox {
            slot: OrderedMutex::new(&classes::MAILBOX_SLOT, None),
            has: AtomicBool::new(false),
        }
    }

    fn deliver(&self, msg: M, combine: fn(&mut M, M)) -> bool {
        // lock-order(mailbox.slot)
        let mut guard = self.slot.lock().expect("mailbox lock poisoned");
        crate::trace::contention::note_lock_acquisition();
        match guard.as_mut() {
            Some(old) => {
                combine(old, msg);
                false
            }
            None => {
                *guard = Some(msg);
                // ordering(Relaxed): advisory occupancy shadow; written
                // under the slot lock, read by scan selection only after
                // deliveries quiesce at the superstep barrier
                self.has.store(true, Ordering::Relaxed);
                true
            }
        }
    }

    fn take(&self) -> Option<M> {
        // The read phase has no concurrent writers, but taking the lock
        // keeps this correct under any interleaving.
        // lock-order(mailbox.slot)
        let mut guard = self.slot.lock().expect("mailbox lock poisoned");
        let m = guard.take();
        if m.is_some() {
            // ordering(Relaxed): advisory occupancy shadow, written in
            // the exclusive read phase
            self.has.store(false, Ordering::Relaxed);
        }
        m
    }

    fn has_message(&self) -> bool {
        // ordering(Relaxed): advisory peek; the barrier between deliver
        // and selection publishes the flag
        self.has.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Option<M> {
        // lock-order(mailbox.slot)
        *self.slot.lock().expect("mailbox lock poisoned")
    }

    fn lock_bytes() -> usize {
        std::mem::size_of::<crate::sync::Mutex<()>>()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn empty_then_fill() {
        conformance::empty_then_fill::<MutexMailbox<u32>>();
    }

    #[test]
    fn combines_on_occupied() {
        conformance::combines_on_occupied::<MutexMailbox<u32>>();
    }

    #[test]
    fn concurrent_delivery_is_linearizable() {
        conformance::concurrent_delivery_is_linearizable::<MutexMailbox<u32>>();
    }

    #[test]
    fn concurrent_sum_loses_nothing() {
        conformance::concurrent_sum_loses_nothing::<MutexMailbox<u32>>();
    }

    #[test]
    fn reports_nonzero_lock_bytes() {
        assert!(<MutexMailbox<u32> as Mailbox<u32>>::lock_bytes() > 0);
    }
}
