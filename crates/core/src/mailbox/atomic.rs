//! Lock-free push combiner (ablation extension beyond the paper).
//!
//! The paper stops at the 4-byte spinlock; for message types that pack
//! into 64 bits we can go further and make the mailbox itself an atomic
//! word, combining with a `compare_exchange` loop. This removes the lock
//! *and* the `Option` discriminant — the mailbox is exactly 8 bytes — at
//! the cost of reserving one bit pattern as the empty sentinel and of
//! re-running the combine on CAS failure (combines must be pure).
//!
//! The benchmark suite uses this to quantify how much of the spinlock
//! version's remaining cost is synchronisation.

use crate::sync::atomic::{AtomicU64, Ordering};

use super::Mailbox;

/// Sentinel bit pattern meaning "mailbox empty".
const EMPTY: u64 = u64::MAX;

/// Messages that pack losslessly into a `u64` whose value is never
/// `u64::MAX`.
///
/// The sentinel restriction is innocuous in practice: for `u32` distances
/// the paper's `UINT_MAX` never travels (it is the *initial* value, not a
/// message), and for `f64` the pattern is a specific quiet NaN no real
/// computation produces.
pub trait PackMessage: Copy {
    /// Encode into a non-sentinel `u64`.
    fn pack(self) -> u64;
    /// Decode; inverse of [`PackMessage::pack`].
    fn unpack(bits: u64) -> Self;
}

impl PackMessage for u32 {
    fn pack(self) -> u64 {
        u64::from(self)
    }
    fn unpack(bits: u64) -> Self {
        bits as u32
    }
}

impl PackMessage for u64 {
    fn pack(self) -> u64 {
        debug_assert_ne!(self, EMPTY, "u64::MAX is the empty sentinel");
        self
    }
    fn unpack(bits: u64) -> Self {
        bits
    }
}

impl PackMessage for f64 {
    fn pack(self) -> u64 {
        let bits = self.to_bits();
        debug_assert_ne!(bits, EMPTY, "the all-ones NaN is the empty sentinel");
        bits
    }
    fn unpack(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl PackMessage for f32 {
    fn pack(self) -> u64 {
        u64::from(self.to_bits())
    }
    fn unpack(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl PackMessage for (u32, u32) {
    fn pack(self) -> u64 {
        let bits = (u64::from(self.0) << 32) | u64::from(self.1);
        debug_assert_ne!(bits, EMPTY, "(u32::MAX, u32::MAX) is the empty sentinel");
        bits
    }
    fn unpack(bits: u64) -> Self {
        ((bits >> 32) as u32, bits as u32)
    }
}

/// A lock-free single-message mailbox: one atomic 64-bit slot.
#[derive(Debug)]
pub struct AtomicMailbox<M> {
    state: AtomicU64,
    _marker: std::marker::PhantomData<M>,
}

impl<M: PackMessage + Send + Sync> Mailbox<M> for AtomicMailbox<M> {
    fn empty() -> Self {
        AtomicMailbox { state: AtomicU64::new(EMPTY), _marker: std::marker::PhantomData }
    }

    fn deliver(&self, msg: M, combine: fn(&mut M, M)) -> bool {
        // ordering(Relaxed): optimistic first read; the CAS below
        // validates it and supplies the synchronization
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let proposed = if cur == EMPTY {
                msg.pack()
            } else {
                let mut old = M::unpack(cur);
                combine(&mut old, msg);
                old.pack()
            };
            // ordering(AcqRel): a successful install must be ordered
            // against the combine read above and publish the message for
            // the reader; ordering(Acquire): on failure, so the retry
            // combines against the freshly observed occupant
            match self.state.compare_exchange_weak(cur, proposed, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return cur == EMPTY,
                Err(now) => {
                    crate::trace::contention::note_cas_retry();
                    cur = now;
                }
            }
        }
    }

    fn take(&self) -> Option<M> {
        // ordering(Acquire): pairs with the AcqRel install in `deliver`
        // so the packed message's provenance is visible to the reader
        let bits = self.state.swap(EMPTY, Ordering::Acquire);
        (bits != EMPTY).then(|| M::unpack(bits))
    }

    fn has_message(&self) -> bool {
        // ordering(Relaxed): advisory peek; the barrier between deliver
        // and selection publishes the slot
        self.state.load(Ordering::Relaxed) != EMPTY
    }

    fn snapshot(&self) -> Option<M> {
        // ordering(Acquire): pairs with the AcqRel install in `deliver`;
        // called at the barrier where deliveries have quiesced
        let bits = self.state.load(Ordering::Acquire);
        (bits != EMPTY).then(|| M::unpack(bits))
    }

    fn lock_bytes() -> usize {
        0 // lock-free: the §6 data-race-protection overhead vanishes
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn pack_round_trips() {
        assert_eq!(u32::unpack(7u32.pack()), 7);
        assert_eq!(u64::unpack(123u64.pack()), 123);
        assert_eq!(f64::unpack(2.5f64.pack()), 2.5);
        assert_eq!(f32::unpack(1.25f32.pack()), 1.25);
        assert_eq!(<(u32, u32)>::unpack((3, 9).pack()), (3, 9));
    }

    #[test]
    fn mailbox_is_exactly_eight_bytes() {
        assert_eq!(std::mem::size_of::<AtomicMailbox<u32>>(), 8);
        assert_eq!(<AtomicMailbox<u32> as Mailbox<u32>>::lock_bytes(), 0);
    }

    #[test]
    fn empty_then_fill() {
        conformance::empty_then_fill::<AtomicMailbox<u32>>();
    }

    #[test]
    fn combines_on_occupied() {
        conformance::combines_on_occupied::<AtomicMailbox<u32>>();
    }

    #[test]
    fn concurrent_delivery_is_linearizable() {
        conformance::concurrent_delivery_is_linearizable::<AtomicMailbox<u32>>();
    }

    #[test]
    fn concurrent_sum_loses_nothing() {
        conformance::concurrent_sum_loses_nothing::<AtomicMailbox<u32>>();
    }

    #[test]
    fn f64_sum_delivery_is_exact_for_integers() {
        // f64 CAS-combining must not lose deliveries (values chosen so
        // addition is exact).
        fn add(old: &mut f64, new: f64) {
            *old += new;
        }
        let (threads, iters) = if cfg!(miri) { (2u32, 50u32) } else { (4, 10_000) };
        let mb = <AtomicMailbox<f64> as Mailbox<f64>>::empty();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let mb = &mb;
                s.spawn(move || {
                    for _ in 0..iters {
                        mb.deliver(1.0, add);
                    }
                });
            }
        });
        assert_eq!(mb.take(), Some(f64::from(threads * iters)));
    }
}
