//! Deterministic fault injection (the `chaos` cargo feature).
//!
//! Every injection site in the workspace is a *named point* that asks
//! this module "do I fail now?" with a site-specific key (the superstep,
//! usually). Failures are driven by an explicit [`ChaosPlan`] — a seed
//! plus a list of [`Trigger`]s — so every failure is replayable: the
//! same plan against the same workload fires at exactly the same
//! evaluation. With no plan armed (the default, and always when the
//! feature is off) every site is a no-op.
//!
//! The catalogue of points lives with the sites themselves and in
//! `docs/INTERNALS.md` ("Fault tolerance"):
//!
//! * [`CHUNK_PANIC`] — a chunk of the superstep keyed by the trigger
//!   panics inside compute (engines: push, pull, sequential);
//! * [`CHECKPOINT_TRUNCATE`] — the checkpoint write at the keyed
//!   superstep is torn in half under its final name
//!   (`ipregel::recover`), exercising checksum fallback on resume;
//! * [`GRAPHD_READ`] — an edge-streaming read in `graphd-sim` returns
//!   [`std::io::ErrorKind::Interrupted`], exercising bounded retry.
//!
//! The plan is process-global (injection sites must be reachable with
//! zero plumbing, including from pool workers), so tests that arm a
//! plan serialise themselves — see `tests/fault_injection.rs`.

use std::sync::PoisonError;

use crate::sync::lockorder::classes;
// par's OrderedMutex (over a std mutex) rather than the shim's: the
// plan registry is a `static`, and only the std mutex is
// const-constructible in every build mode.
use ipregel_par::lockorder::{OrderedGuard, OrderedMutex};

use ipregel_graph::checksum::fnv1a64;

/// Panic inside an engine chunk. Key: superstep.
pub const CHUNK_PANIC: &str = "engine.chunk_panic";
/// Tear a checkpoint write in half. Key: superstep.
pub const CHECKPOINT_TRUNCATE: &str = "recover.checkpoint_truncate";
/// Fail a graphd edge read with `ErrorKind::Interrupted`. Key: unused (0).
pub const GRAPHD_READ: &str = "graphd.read_transient";

/// One armed failure: fire at `point` when the site's key matches, up
/// to `limit` times, with probability `probability` per matching
/// evaluation (seeded — deterministic across runs of the same plan).
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Which injection point this trigger arms.
    pub point: &'static str,
    /// Site key to match (`None` matches any).
    pub key: Option<u64>,
    /// Maximum number of firings.
    pub limit: u64,
    /// Per-evaluation firing probability in `[0, 1]`; `1.0` fires on
    /// every matching evaluation (until `limit`).
    pub probability: f64,
}

impl Trigger {
    /// Fire exactly once, at the evaluation whose key is `key`.
    pub fn at(point: &'static str, key: u64) -> Trigger {
        Trigger { point, key: Some(key), limit: 1, probability: 1.0 }
    }

    /// Fire on the first `limit` matching evaluations, any key.
    pub fn times(point: &'static str, limit: u64) -> Trigger {
        Trigger { point, key: None, limit, probability: 1.0 }
    }
}

/// A seeded, replayable failure schedule.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed for probabilistic triggers; irrelevant for deterministic
    /// (`probability: 1.0`) plans but always recorded so a failure
    /// report names the full plan.
    pub seed: u64,
    /// The armed failures.
    pub triggers: Vec<Trigger>,
}

struct Armed {
    plan: ChaosPlan,
    fired: Vec<u64>,
    evals: u64,
}

static ACTIVE: OrderedMutex<Option<Armed>> = OrderedMutex::new(&classes::CHAOS_ACTIVE, None);

/// Arm `plan` process-wide. Replaces any armed plan.
pub fn set_plan(plan: ChaosPlan) {
    let fired = vec![0; plan.triggers.len()];
    *lock() = Some(Armed { plan, fired, evals: 0 });
}

/// Disarm fault injection.
pub fn clear_plan() {
    *lock() = None;
}

/// Evaluate injection point `point` with the site's `key`. Mutates the
/// armed plan's counters; returns whether the site must fail now.
pub fn fires(point: &str, key: u64) -> bool {
    let mut guard = lock();
    let Some(armed) = guard.as_mut() else { return false };
    armed.evals += 1;
    for (i, t) in armed.plan.triggers.iter().enumerate() {
        if t.point != point || armed.fired[i] >= t.limit {
            continue;
        }
        if let Some(k) = t.key {
            if k != key {
                continue;
            }
        }
        let roll = t.probability >= 1.0 || {
            let x = splitmix64(armed.plan.seed ^ fnv1a64(point.as_bytes()) ^ armed.evals);
            (x as f64 / u64::MAX as f64) < t.probability
        };
        if roll {
            armed.fired[i] += 1;
            return true;
        }
    }
    false
}

/// Panic (with a recognisable message) if `point` fires. The engines'
/// `catch_unwind` turns this into
/// [`crate::engine::RunError::VertexPanic`].
pub fn maybe_panic(point: &'static str, key: u64) {
    if fires(point, key) {
        panic!("chaos: injected failure at {point} (key {key})");
    }
}

fn lock() -> OrderedGuard<'static, Option<Armed>> {
    // The plan mutex guards only plain counters; a panicking holder
    // (impossible today — no user code runs under it) would still leave
    // them usable, so poison is shrugged off.
    // lock-order(chaos.active)
    ACTIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// SplitMix64: the standard 64-bit finaliser-style mixer; full-period,
/// dependency-free, and plenty for choosing *which* evaluation fails.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    // Tests share the process-global plan; serialise them. The lock is
    // held around `fires`/`set_plan` calls, so it ranks just below
    // `chaos.active` in the hierarchy.
    static TEST_LOCK: OrderedMutex<()> = OrderedMutex::new(&classes::CHAOS_TEST, ());
    fn exclusive() -> OrderedGuard<'static, ()> {
        // lock-order(chaos.test)
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_points_never_fire() {
        let _x = exclusive();
        clear_plan();
        assert!(!fires(CHUNK_PANIC, 0));
        assert!(!fires(GRAPHD_READ, 7));
        maybe_panic(CHUNK_PANIC, 0); // must not panic
    }

    #[test]
    fn keyed_trigger_fires_once_at_its_key() {
        let _x = exclusive();
        set_plan(ChaosPlan { seed: 1, triggers: vec![Trigger::at(CHUNK_PANIC, 3)] });
        assert!(!fires(CHUNK_PANIC, 0));
        assert!(!fires(CHUNK_PANIC, 2));
        assert!(!fires(GRAPHD_READ, 3), "other points unaffected");
        assert!(fires(CHUNK_PANIC, 3));
        assert!(!fires(CHUNK_PANIC, 3), "limit 1 exhausted");
        clear_plan();
    }

    #[test]
    fn limited_trigger_fires_exactly_n_times() {
        let _x = exclusive();
        set_plan(ChaosPlan { seed: 1, triggers: vec![Trigger::times(GRAPHD_READ, 2)] });
        assert!(fires(GRAPHD_READ, 0));
        assert!(fires(GRAPHD_READ, 0));
        assert!(!fires(GRAPHD_READ, 0));
        clear_plan();
    }

    #[test]
    fn probabilistic_firing_is_replayable() {
        let _x = exclusive();
        let plan = ChaosPlan {
            seed: 42,
            triggers: vec![Trigger {
                point: CHUNK_PANIC,
                key: None,
                limit: u64::MAX,
                probability: 0.5,
            }],
        };
        let observe = || -> Vec<bool> {
            set_plan(plan.clone());
            (0..64).map(|k| fires(CHUNK_PANIC, k)).collect()
        };
        let first = observe();
        let second = observe();
        assert_eq!(first, second, "same plan, same workload, same failures");
        let fired = first.iter().filter(|&&b| b).count();
        assert!(fired > 8 && fired < 56, "p=0.5 should fire sometimes ({fired}/64)");
        clear_plan();
    }

    #[test]
    fn injected_panic_carries_the_point_name() {
        let _x = exclusive();
        set_plan(ChaosPlan { seed: 0, triggers: vec![Trigger::at(CHUNK_PANIC, 5)] });
        let caught = std::panic::catch_unwind(|| maybe_panic(CHUNK_PANIC, 5));
        clear_plan();
        let message = crate::engine::panic_message(caught.unwrap_err());
        assert!(message.contains(CHUNK_PANIC), "{message}");
    }
}
