//! Structured superstep tracing: typed events, sharded collection, and
//! two sinks (versioned JSONL, Prometheus text).
//!
//! The paper's evaluation (§7) is entirely about *where time and memory
//! go* — per-superstep runtime, combiner contention, footprint — and
//! this module makes those quantities observable without perturbing
//! them. The engines thread an optional [`Tracer`] through
//! [`crate::RunConfig`] and report through the [`emit`] wrapper, whose
//! body is compiled out entirely unless the `trace` cargo feature is
//! enabled: with the feature off, every hook is a no-op taking no
//! arguments' worth of work (the event-constructing closure is never
//! called), so the hot paths are byte-for-byte the unchanged defaults.
//!
//! # Collection model
//!
//! Workers inside a parallel region record into per-thread shards
//! (cache-padded, one `try_lock` per event — uncontended in the common
//! one-worker-per-shard case and *safe* in every other case, unlike a
//! bare `UnsafeCell` shard, because a [`Tracer`] is user-visible through
//! `RunConfig` and may legally be shared across concurrent runs).
//! Orchestrator-side events go straight to the main log. At each
//! superstep barrier the engine calls [`Tracer::barrier`], which drains
//! the shards in chunk order into the log and takes a periodic RSS
//! sample — so the per-superstep event order in the final trace is
//! always `superstep_begin, chunk*, [rss], [pool], superstep_end` (the
//! `pool` scheduler-counter event is orchestrator-side, recorded after
//! the barrier). Shards are
//! bounded; events beyond the bound are counted in
//! [`Tracer::dropped_events`] rather than allocating without limit.
//!
//! # Wire format
//!
//! One JSON object per line; the first line is a meta header pinning
//! [`SCHEMA_VERSION`]. Field names and order are part of the schema and
//! pinned by `tests/trace_schema.rs` against a committed fixture. The
//! codec is hand-rolled (std-only) so it works in dependency-free
//! builds and tools.

use std::time::Duration;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::lockorder::{classes, OrderedMutex};

use ipregel_par::CachePadded;

/// Version of the JSONL trace schema. Bump when an event gains, loses,
/// or reorders a field; `tests/trace_schema.rs` pins the byte-level
/// encoding of the current version. History:
///
/// - **1** — initial schema (PR 4).
/// - **2** — `chunk` gains a trailing `worker` field (which pool worker
///   executed the chunk — under work-stealing this is no longer implied
///   by the chunk index), and the `pool` event reports per-superstep
///   steal/overflow counters. The decoder still reads version-1 files:
///   `worker` defaults to 0 and `pool` events simply never appear. The
///   default is gated on the file's declared version — a chunk line
///   missing `worker` in a schema-2 file is malformed, not worker 0.
pub const SCHEMA_VERSION: u32 = 2;

/// Oldest schema version [`decode_line`] accepts.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Cap on events buffered per worker shard between barriers. A chunk
/// event is ~64 bytes and supersteps rarely plan more than a few
/// thousand chunks, so this bounds memory without realistic drops.
const SHARD_CAPACITY: usize = 1 << 16;

/// Which engine produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The parallel push-combining engine.
    Push,
    /// The parallel pull-combining (broadcast) engine.
    Pull,
    /// The sequential oracle.
    Seq,
    /// The out-of-core simulation in `crates/graphd`.
    Ooc,
}

impl EngineKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Push => "push",
            EngineKind::Pull => "pull",
            EngineKind::Seq => "seq",
            EngineKind::Ooc => "ooc",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "push" => Some(EngineKind::Push),
            "pull" => Some(EngineKind::Pull),
            "seq" => Some(EngineKind::Seq),
            "ooc" => Some(EngineKind::Ooc),
            _ => None,
        }
    }
}

/// A typed observation. Variant and field declaration order define the
/// JSONL field order (schema version [`SCHEMA_VERSION`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A run started.
    RunBegin {
        /// Which engine.
        engine: EngineKind,
        /// Slot count of the graph (desolate slots included).
        slots: u64,
        /// Worker threads in the pool (1 for seq/ooc).
        threads: u64,
    },
    /// A superstep's parallel region is about to start.
    SuperstepBegin {
        /// Superstep number, 0-based.
        superstep: u64,
    },
    /// One scheduled chunk finished: planned weight vs measured cost,
    /// plus the mailbox contention the worker saw while running it.
    Chunk {
        /// Superstep the chunk ran in.
        superstep: u64,
        /// Index of the chunk within the superstep's plan.
        chunk: u64,
        /// Weight the scheduler assigned to the chunk (degree + 1 per
        /// vertex from schema 2 on; raw edge counts in schema-1 files —
        /// the wire key keeps its original name for compatibility).
        planned_edges: u64,
        /// Measured wall-clock of the chunk body.
        duration_ns: u64,
        /// Mailbox lock acquisitions during the chunk (mutex + spin).
        lock_acquisitions: u64,
        /// Lock-free mailbox CAS retries during the chunk.
        cas_retries: u64,
        /// Spinlock busy-wait iterations during the chunk.
        spin_iterations: u64,
        /// Pool worker index the chunk body ran on. With work-stealing
        /// this is timing-dependent (any worker may run any chunk), so
        /// it is recorded rather than inferred. 0 in schema-1 files and
        /// for the sequential engine.
        worker: u64,
    },
    /// Work-stealing scheduler counters for one superstep's parallel
    /// region: the delta of the pool's cumulative counters across the
    /// region (see `ipregel_par::current_pool_stats`). Zero under the
    /// rayon backend, which does not expose its scheduler.
    Pool {
        /// Superstep the region belonged to.
        superstep: u64,
        /// Chunks executed by a worker other than the one whose deque
        /// held them.
        steals: u64,
        /// Jobs routed through the overflow injector.
        overflow: u64,
    },
    /// A superstep completed (mirror of [`crate::SuperstepStats`]).
    SuperstepEnd {
        /// Superstep number, 0-based.
        superstep: u64,
        /// Vertices that ran.
        active: u64,
        /// Messages sent.
        messages: u64,
        /// Wall-clock of the whole superstep.
        duration_ns: u64,
        /// Time spent selecting the next active set.
        selection_ns: u64,
        /// Chunks the superstep was cut into.
        chunks: u64,
    },
    /// The selection bypass drained the worklist (sparse path).
    WorklistDrain {
        /// Superstep whose selection this was.
        superstep: u64,
        /// Entries queued across shards before the drain (duplicates
        /// included).
        queued: u64,
        /// Entries in the drained, deduplicated active list.
        drained: u64,
    },
    /// A checkpoint was written at a barrier.
    CheckpointSave {
        /// Superstep whose barrier state was saved.
        superstep: u64,
        /// Wall-clock of encode + write + rename.
        duration_ns: u64,
    },
    /// A checkpoint was read back during resume.
    CheckpointRestore {
        /// Superstep the snapshot resumes from.
        superstep: u64,
        /// Wall-clock of read + decode + verify.
        duration_ns: u64,
    },
    /// A periodic resident-set sample (see [`Tracer::set_rss_sampler`]).
    Rss {
        /// Superstep at whose barrier the sample was taken.
        superstep: u64,
        /// Resident set size in bytes.
        bytes: u64,
    },
    /// Out-of-core I/O for one superstep (mirror of `graphd::IoTrace`).
    Io {
        /// Superstep number, 0-based.
        superstep: u64,
        /// Bytes read from the simulated disk.
        bytes_read: u64,
        /// Seeks issued.
        seeks: u64,
        /// Transient-failure retries.
        retries: u64,
    },
    /// A run finished (totals mirror [`crate::RunStats`]).
    RunEnd {
        /// Supersteps executed.
        supersteps: u64,
        /// Total messages sent.
        messages: u64,
        /// Total wall-clock across supersteps.
        duration_ns: u64,
    },
}

impl TraceEvent {
    /// Stable wire name of the variant.
    pub fn type_name(&self) -> &'static str {
        match self {
            TraceEvent::RunBegin { .. } => "run_begin",
            TraceEvent::SuperstepBegin { .. } => "superstep_begin",
            TraceEvent::Chunk { .. } => "chunk",
            TraceEvent::Pool { .. } => "pool",
            TraceEvent::SuperstepEnd { .. } => "superstep_end",
            TraceEvent::WorklistDrain { .. } => "worklist_drain",
            TraceEvent::CheckpointSave { .. } => "checkpoint_save",
            TraceEvent::CheckpointRestore { .. } => "checkpoint_restore",
            TraceEvent::Rss { .. } => "rss",
            TraceEvent::Io { .. } => "io",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    fn chunk_order(&self) -> u64 {
        match self {
            TraceEvent::Chunk { chunk, .. } => *chunk,
            _ => u64::MAX,
        }
    }
}

/// Saturating nanosecond conversion for wire durations.
pub fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

/// Collects [`TraceEvent`]s from workers and orchestrator.
///
/// Constructed by the caller (usually the CLI), shared with the engine
/// through [`crate::RunConfig::trace`] as an `Arc`, and drained with
/// [`Tracer::take_events`] after the run. All methods are safe under
/// arbitrary sharing: worker shards are per-thread by worker index but
/// guarded by `try_lock`, so a surprising topology degrades to
/// contention, never to undefined behaviour.
pub struct Tracer {
    shards: Box<[CachePadded<OrderedMutex<Vec<TraceEvent>>>]>,
    log: OrderedMutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    rss_sampler: Option<fn() -> Option<u64>>,
    rss_every: usize,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("shards", &self.shards.len())
            .field("rss_every", &self.rss_every)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer sharded for the current thread pool (engines running on
    /// their own pool still map in via modulo; see [`Tracer::record`]).
    pub fn new() -> Self {
        Self::with_shards(ipregel_par::current_num_threads().max(1))
    }

    /// A tracer with an explicit shard count (exposed for tests).
    pub fn with_shards(shards: usize) -> Self {
        let shards = (0..shards.max(1))
            .map(|_| CachePadded::new(OrderedMutex::new(&classes::TRACER_SHARD, Vec::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Tracer {
            shards,
            log: OrderedMutex::new(&classes::TRACER_LOG, Vec::new()),
            dropped: AtomicU64::new(0),
            rss_sampler: None,
            rss_every: 0,
        }
    }

    /// Install a resident-set sampler called every `every` supersteps at
    /// the barrier (0 disables sampling). The tracer takes a plain `fn`
    /// so `crates/core` needs no dependency on the crate that knows how
    /// to read RSS (`ipregel-mem` depends on us, not vice versa).
    pub fn set_rss_sampler(&mut self, sampler: fn() -> Option<u64>, every: usize) {
        self.rss_sampler = Some(sampler);
        self.rss_every = every;
    }

    /// Record one event. Callable from anywhere: pool workers land in
    /// their own shard (one uncontended `try_lock`), everything else —
    /// including a worker whose shard is momentarily contended — goes to
    /// the main log.
    pub fn record(&self, event: TraceEvent) {
        if let Some(i) = ipregel_par::current_thread_index() {
            let shard = &self.shards[i % self.shards.len()];
            // lock-order(tracer.shard)
            if let Ok(mut v) = shard.try_lock() {
                if v.len() < SHARD_CAPACITY {
                    v.push(event);
                } else {
                    // ordering(Relaxed): monotone drop counter, read only
                    // after the run quiesces
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        // lock-order(tracer.log)
        match self.log.lock() {
            Ok(mut log) => log.push(event),
            Err(_) => {
                // ordering(Relaxed): monotone drop counter, read only
                // after the run quiesces
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record one event directly into the main log, preserving program
    /// order. Orchestrator-side events (run/superstep spans, selection,
    /// checkpoints) use this: the orchestrating closure itself runs on a
    /// pool worker when the engine owns its pool, so routing by thread
    /// index would misfile them into a chunk shard.
    pub fn record_sync(&self, event: TraceEvent) {
        // lock-order(tracer.log)
        match self.log.lock() {
            Ok(mut log) => log.push(event),
            Err(_) => {
                // ordering(Relaxed): monotone drop counter, read only
                // after the run quiesces
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Superstep barrier hook: drain worker shards into the log in
    /// chunk-index order and take a periodic RSS sample. Engines call
    /// this strictly between parallel regions, after recording the
    /// superstep's worker events and before [`TraceEvent::SuperstepEnd`].
    pub fn barrier(&self, superstep: usize) {
        let mut staged: Vec<TraceEvent> = Vec::new();
        for shard in self.shards.iter() {
            // lock-order(tracer.shard)
            if let Ok(mut v) = shard.lock() {
                staged.append(&mut v);
            }
        }
        staged.sort_by_key(|e| e.chunk_order());
        // lock-order(tracer.log)
        if let Ok(mut log) = self.log.lock() {
            log.append(&mut staged);
        }
        if let Some(sampler) = self.rss_sampler {
            if self.rss_every > 0 && superstep.is_multiple_of(self.rss_every) {
                if let Some(bytes) = sampler() {
                    // Straight to the log: the barrier runs on the
                    // orchestrating thread (which has a worker index when
                    // the engine owns its pool), and a shard-routed
                    // sample would only surface at the *next* barrier.
                    self.record_sync(TraceEvent::Rss { superstep: superstep as u64, bytes });
                }
            }
        }
    }

    /// Drain everything collected so far (shards first, then in log
    /// order). The tracer is reusable afterwards.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        // A final drain in case the engine never reached a barrier.
        let mut tail: Vec<TraceEvent> = Vec::new();
        for shard in self.shards.iter() {
            // lock-order(tracer.shard)
            if let Ok(mut v) = shard.lock() {
                tail.append(&mut v);
            }
        }
        tail.sort_by_key(|e| e.chunk_order());
        // lock-order(tracer.log)
        let mut out = match self.log.lock() {
            Ok(mut log) => std::mem::take(&mut *log),
            Err(_) => Vec::new(),
        };
        out.append(&mut tail);
        out
    }

    /// Events discarded because a shard hit its bound.
    pub fn dropped_events(&self) -> u64 {
        // ordering(Relaxed): monotone counter; callers read post-run
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Record an event iff tracing is compiled in *and* a tracer is
/// attached. With the `trace` feature off this compiles to nothing: the
/// closure is never called, so hook sites pay no construction cost.
#[inline(always)]
pub fn emit(tracer: Option<&Tracer>, make: impl FnOnce() -> TraceEvent) {
    #[cfg(feature = "trace")]
    if let Some(t) = tracer {
        t.record(make());
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (tracer, make);
    }
}

/// [`emit`] for orchestrator-side events: records into the main log in
/// program order via [`Tracer::record_sync`] instead of routing by
/// worker thread index. Same no-op guarantee with the feature off.
#[inline(always)]
pub fn emit_sync(tracer: Option<&Tracer>, make: impl FnOnce() -> TraceEvent) {
    #[cfg(feature = "trace")]
    if let Some(t) = tracer {
        t.record_sync(make());
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (tracer, make);
    }
}

/// Barrier hook mirror of [`emit`]: forwards to [`Tracer::barrier`] only
/// when tracing is compiled in.
#[inline(always)]
pub fn barrier(tracer: Option<&Tracer>, superstep: usize) {
    #[cfg(feature = "trace")]
    if let Some(t) = tracer {
        t.barrier(superstep);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (tracer, superstep);
    }
}

// ---------------------------------------------------------------------------
// Contention counters
// ---------------------------------------------------------------------------

/// Thread-local mailbox contention counters.
///
/// The mailboxes call the `note_*` functions from their hot paths; with
/// the `trace` feature off each call is an empty `#[inline(always)]`
/// function, with it on a thread-local `Cell` increment. Workers take a
/// [`snapshot`] before and after a chunk body and attach the delta to
/// the chunk's event — per-thread counters mean concurrent traced runs
/// in one process never cross-contaminate (each worker only ever reads
/// its own deltas).
pub mod contention {
    /// Point-in-time values of the calling thread's counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct ContentionSnapshot {
        /// Mailbox lock acquisitions (mutex slot locks + spinlock locks).
        pub lock_acquisitions: u64,
        /// Lock-free mailbox CAS retries (failed `compare_exchange`).
        pub cas_retries: u64,
        /// Spinlock busy-wait loop iterations.
        pub spin_iterations: u64,
    }

    impl ContentionSnapshot {
        /// Counter increments between `earlier` and `self` (wrapping).
        pub fn delta_since(&self, earlier: &ContentionSnapshot) -> ContentionSnapshot {
            ContentionSnapshot {
                lock_acquisitions: self.lock_acquisitions.wrapping_sub(earlier.lock_acquisitions),
                cas_retries: self.cas_retries.wrapping_sub(earlier.cas_retries),
                spin_iterations: self.spin_iterations.wrapping_sub(earlier.spin_iterations),
            }
        }
    }

    #[cfg(feature = "trace")]
    thread_local! {
        static LOCK_ACQUISITIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        static CAS_RETRIES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        static SPIN_ITERATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Count one mailbox lock acquisition on this thread.
    #[inline(always)]
    pub fn note_lock_acquisition() {
        #[cfg(feature = "trace")]
        LOCK_ACQUISITIONS.with(|c| c.set(c.get().wrapping_add(1)));
    }

    /// Count one failed CAS in the lock-free mailbox on this thread.
    #[inline(always)]
    pub fn note_cas_retry() {
        #[cfg(feature = "trace")]
        CAS_RETRIES.with(|c| c.set(c.get().wrapping_add(1)));
    }

    /// Count `n` spinlock busy-wait iterations on this thread.
    #[inline(always)]
    pub fn note_spin_iterations(n: u64) {
        #[cfg(feature = "trace")]
        SPIN_ITERATIONS.with(|c| c.set(c.get().wrapping_add(n)));
        #[cfg(not(feature = "trace"))]
        let _ = n;
    }

    /// Current values of this thread's counters (all zero with the
    /// `trace` feature off).
    pub fn snapshot() -> ContentionSnapshot {
        #[cfg(feature = "trace")]
        {
            ContentionSnapshot {
                lock_acquisitions: LOCK_ACQUISITIONS.with(std::cell::Cell::get),
                cas_retries: CAS_RETRIES.with(std::cell::Cell::get),
                spin_iterations: SPIN_ITERATIONS.with(std::cell::Cell::get),
            }
        }
        #[cfg(not(feature = "trace"))]
        ContentionSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// JSONL codec (schema version 2; reads 1..=2)
// ---------------------------------------------------------------------------

/// The meta header line opening every trace file.
pub fn encode_meta() -> String {
    format!("{{\"type\":\"meta\",\"schema\":{SCHEMA_VERSION}}}")
}

/// Encode one event as a single JSON line (no trailing newline). Field
/// order follows the variant's declaration order, `type` first.
pub fn encode_event(e: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"type\":\"");
    s.push_str(e.type_name());
    s.push('"');
    let num = |s: &mut String, k: &str, v: u64| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":");
        s.push_str(&v.to_string());
    };
    match *e {
        TraceEvent::RunBegin { engine, slots, threads } => {
            s.push_str(",\"engine\":\"");
            s.push_str(engine.as_str());
            s.push('"');
            num(&mut s, "slots", slots);
            num(&mut s, "threads", threads);
        }
        TraceEvent::SuperstepBegin { superstep } => {
            num(&mut s, "superstep", superstep);
        }
        TraceEvent::Chunk {
            superstep,
            chunk,
            planned_edges,
            duration_ns,
            lock_acquisitions,
            cas_retries,
            spin_iterations,
            worker,
        } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "chunk", chunk);
            num(&mut s, "planned_edges", planned_edges);
            num(&mut s, "duration_ns", duration_ns);
            num(&mut s, "lock_acquisitions", lock_acquisitions);
            num(&mut s, "cas_retries", cas_retries);
            num(&mut s, "spin_iterations", spin_iterations);
            num(&mut s, "worker", worker);
        }
        TraceEvent::Pool { superstep, steals, overflow } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "steals", steals);
            num(&mut s, "overflow", overflow);
        }
        TraceEvent::SuperstepEnd { superstep, active, messages, duration_ns, selection_ns, chunks } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "active", active);
            num(&mut s, "messages", messages);
            num(&mut s, "duration_ns", duration_ns);
            num(&mut s, "selection_ns", selection_ns);
            num(&mut s, "chunks", chunks);
        }
        TraceEvent::WorklistDrain { superstep, queued, drained } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "queued", queued);
            num(&mut s, "drained", drained);
        }
        TraceEvent::CheckpointSave { superstep, duration_ns } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "duration_ns", duration_ns);
        }
        TraceEvent::CheckpointRestore { superstep, duration_ns } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "duration_ns", duration_ns);
        }
        TraceEvent::Rss { superstep, bytes } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "bytes", bytes);
        }
        TraceEvent::Io { superstep, bytes_read, seeks, retries } => {
            num(&mut s, "superstep", superstep);
            num(&mut s, "bytes_read", bytes_read);
            num(&mut s, "seeks", seeks);
            num(&mut s, "retries", retries);
        }
        TraceEvent::RunEnd { supersteps, messages, duration_ns } => {
            num(&mut s, "supersteps", supersteps);
            num(&mut s, "messages", messages);
            num(&mut s, "duration_ns", duration_ns);
        }
    }
    s.push('}');
    s
}

/// Encode a whole trace: meta header plus one line per event, trailing
/// newline included.
pub fn encode_trace(events: &[TraceEvent]) -> String {
    let mut out = encode_meta();
    out.push('\n');
    for e in events {
        out.push_str(&encode_event(e));
        out.push('\n');
    }
    out
}

/// A value in a flat trace-line object.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonVal {
    Str(String),
    Num(u64),
}

/// Parse one flat JSON object (`{"k":v,...}`, values strings or u64).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let bytes = line.trim().as_bytes();
    let err = |what: &str, at: usize| format!("{what} at byte {at} in {line:?}");
    let mut i = 0usize;
    let mut fields = Vec::new();
    if bytes.first() != Some(&b'{') {
        return Err(err("expected '{'", 0));
    }
    i += 1;
    if bytes.get(i) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        // Key.
        if bytes.get(i) != Some(&b'"') {
            return Err(err("expected '\"' opening a key", i));
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(err("unterminated key", key_start));
        }
        let key = std::str::from_utf8(&bytes[key_start..i])
            .map_err(|_| err("non-utf8 key", key_start))?
            .to_string();
        i += 1;
        if bytes.get(i) != Some(&b':') {
            return Err(err("expected ':'", i));
        }
        i += 1;
        // Value: string or unsigned integer.
        let val = match bytes.get(i) {
            Some(&b'"') => {
                i += 1;
                let mut v = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            // Minimal escapes: \" and \\ (the encoder
                            // emits neither, but be tolerant).
                            match bytes.get(i + 1) {
                                Some(&c @ (b'"' | b'\\')) => {
                                    v.push(c as char);
                                    i += 2;
                                }
                                _ => return Err(err("unsupported escape", i)),
                            }
                        }
                        Some(&c) => {
                            v.push(c as char);
                            i += 1;
                        }
                        None => return Err(err("unterminated string", i)),
                    }
                }
                JsonVal::Str(v)
            }
            Some(c) if c.is_ascii_digit() => {
                let num_start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[num_start..i]).expect("ascii digits");
                JsonVal::Num(text.parse::<u64>().map_err(|_| err("integer out of range", num_start))?)
            }
            _ => return Err(err("expected a string or unsigned integer value", i)),
        };
        fields.push((key, val));
        match bytes.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => {
                i += 1;
                break;
            }
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
    if i != bytes.len() {
        return Err(err("trailing bytes after object", i));
    }
    Ok(fields)
}

struct Fields<'a> {
    line: &'a str,
    fields: Vec<(String, JsonVal)>,
}

impl Fields<'_> {
    fn num(&self, key: &str) -> Result<u64, String> {
        match self.fields.iter().find(|(k, _)| k == key) {
            Some((_, JsonVal::Num(n))) => Ok(*n),
            Some((_, JsonVal::Str(_))) => Err(format!("field {key:?} is a string in {:?}", self.line)),
            None => Err(format!("missing field {key:?} in {:?}", self.line)),
        }
    }

    /// A numeric field that older schema versions did not carry.
    fn num_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.fields.iter().find(|(k, _)| k == key) {
            Some((_, JsonVal::Num(n))) => Ok(*n),
            Some((_, JsonVal::Str(_))) => Err(format!("field {key:?} is a string in {:?}", self.line)),
            None => Ok(default),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.fields.iter().find(|(k, _)| k == key) {
            Some((_, JsonVal::Str(s))) => Ok(s),
            Some((_, JsonVal::Num(_))) => Err(format!("field {key:?} is a number in {:?}", self.line)),
            None => Err(format!("missing field {key:?} in {:?}", self.line)),
        }
    }
}

/// Decode one trace line. `Ok(None)` means the line was a meta header
/// (validated against [`SCHEMA_VERSION`]).
///
/// A standalone line carries no meta context, so it is held to the
/// *current* schema: fields that older versions lacked are required.
/// [`decode_trace`] instead threads each file's declared schema version
/// into every line, which is what lets version-1 files omit them.
pub fn decode_line(line: &str) -> Result<Option<TraceEvent>, String> {
    match decode_line_at(line, SCHEMA_VERSION)? {
        Decoded::Meta(_) => Ok(None),
        Decoded::Event(e) => Ok(Some(e)),
    }
}

/// One successfully decoded trace line.
enum Decoded {
    /// A meta header declaring the file's schema version (validated
    /// against the supported range).
    Meta(u32),
    Event(TraceEvent),
}

/// Decode one line under the schema version `schema` declared by the
/// file's meta header. Version-gated defaults live here: a `chunk`
/// line may omit `worker` only in schema-1 files — in schema ≥ 2 the
/// field is part of the wire format and its absence is malformed, not
/// "worker 0".
fn decode_line_at(line: &str, schema: u32) -> Result<Decoded, String> {
    let f = Fields { line, fields: parse_flat_object(line)? };
    let ty = f.str("type")?;
    let e = match ty {
        "meta" => {
            let declared = f.num("schema")?;
            if declared < u64::from(MIN_SCHEMA_VERSION) || declared > u64::from(SCHEMA_VERSION) {
                return Err(format!(
                    "unsupported trace schema {declared} (this build reads \
                     {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
                ));
            }
            return Ok(Decoded::Meta(u32::try_from(declared).expect("validated range fits u32")));
        }
        "run_begin" => TraceEvent::RunBegin {
            engine: EngineKind::parse(f.str("engine")?)
                .ok_or_else(|| format!("unknown engine in {line:?}"))?,
            slots: f.num("slots")?,
            threads: f.num("threads")?,
        },
        "superstep_begin" => TraceEvent::SuperstepBegin { superstep: f.num("superstep")? },
        "chunk" => TraceEvent::Chunk {
            superstep: f.num("superstep")?,
            chunk: f.num("chunk")?,
            planned_edges: f.num("planned_edges")?,
            duration_ns: f.num("duration_ns")?,
            lock_acquisitions: f.num("lock_acquisitions")?,
            cas_retries: f.num("cas_retries")?,
            spin_iterations: f.num("spin_iterations")?,
            // Absent in schema-1 files, where worker == chunk-owner was
            // the (implicit) pre-stealing behaviour, recorded as 0; a
            // schema-2 chunk without it is malformed.
            worker: if schema >= 2 { f.num("worker")? } else { f.num_or("worker", 0)? },
        },
        "pool" => TraceEvent::Pool {
            superstep: f.num("superstep")?,
            steals: f.num("steals")?,
            overflow: f.num("overflow")?,
        },
        "superstep_end" => TraceEvent::SuperstepEnd {
            superstep: f.num("superstep")?,
            active: f.num("active")?,
            messages: f.num("messages")?,
            duration_ns: f.num("duration_ns")?,
            selection_ns: f.num("selection_ns")?,
            chunks: f.num("chunks")?,
        },
        "worklist_drain" => TraceEvent::WorklistDrain {
            superstep: f.num("superstep")?,
            queued: f.num("queued")?,
            drained: f.num("drained")?,
        },
        "checkpoint_save" => TraceEvent::CheckpointSave {
            superstep: f.num("superstep")?,
            duration_ns: f.num("duration_ns")?,
        },
        "checkpoint_restore" => TraceEvent::CheckpointRestore {
            superstep: f.num("superstep")?,
            duration_ns: f.num("duration_ns")?,
        },
        "rss" => TraceEvent::Rss { superstep: f.num("superstep")?, bytes: f.num("bytes")? },
        "io" => TraceEvent::Io {
            superstep: f.num("superstep")?,
            bytes_read: f.num("bytes_read")?,
            seeks: f.num("seeks")?,
            retries: f.num("retries")?,
        },
        "run_end" => TraceEvent::RunEnd {
            supersteps: f.num("supersteps")?,
            messages: f.num("messages")?,
            duration_ns: f.num("duration_ns")?,
        },
        other => return Err(format!("unknown event type {other:?} in {line:?}")),
    };
    Ok(Decoded::Event(e))
}

/// Decode a whole trace file. The first non-empty line must be a meta
/// header with a supported schema version; that declared version then
/// governs every event line, so version-gated defaults (the schema-1
/// `worker` field) apply only to files that actually declare the old
/// version.
pub fn decode_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    let mut schema: Option<u32> = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match decode_line_at(line, schema.unwrap_or(SCHEMA_VERSION))? {
            Decoded::Meta(declared) => schema = Some(declared),
            Decoded::Event(e) => {
                if schema.is_none() {
                    return Err("trace does not start with a meta header line".to_string());
                }
                events.push(e);
            }
        }
    }
    if schema.is_none() {
        return Err("trace has no meta header line".to_string());
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Prometheus text sink
// ---------------------------------------------------------------------------

/// Render a Prometheus text-format snapshot of a trace: run totals as
/// counters, the latest RSS sample as a gauge. Deterministic metric
/// order; durations in (float) seconds per Prometheus convention.
pub fn render_prometheus(events: &[TraceEvent], dropped: u64) -> String {
    let mut supersteps = 0u64;
    let mut messages = 0u64;
    let mut run_ns = 0u64;
    let mut chunks = 0u64;
    let mut chunk_ns = 0u64;
    let mut lock_acquisitions = 0u64;
    let mut cas_retries = 0u64;
    let mut spin_iterations = 0u64;
    let mut worklist_drained = 0u64;
    let mut ckpt_saves = 0u64;
    let mut ckpt_save_ns = 0u64;
    let mut ckpt_restores = 0u64;
    let mut ckpt_restore_ns = 0u64;
    let mut io_bytes = 0u64;
    let mut io_seeks = 0u64;
    let mut io_retries = 0u64;
    let mut pool_steals = 0u64;
    let mut pool_overflow = 0u64;
    let mut last_rss: Option<u64> = None;
    for e in events {
        match *e {
            TraceEvent::SuperstepEnd { messages: m, duration_ns, .. } => {
                supersteps += 1;
                messages += m;
                run_ns += duration_ns;
            }
            TraceEvent::Chunk {
                duration_ns,
                lock_acquisitions: la,
                cas_retries: cr,
                spin_iterations: si,
                ..
            } => {
                chunks += 1;
                chunk_ns += duration_ns;
                lock_acquisitions += la;
                cas_retries += cr;
                spin_iterations += si;
            }
            TraceEvent::WorklistDrain { drained, .. } => worklist_drained += drained,
            TraceEvent::CheckpointSave { duration_ns, .. } => {
                ckpt_saves += 1;
                ckpt_save_ns += duration_ns;
            }
            TraceEvent::CheckpointRestore { duration_ns, .. } => {
                ckpt_restores += 1;
                ckpt_restore_ns += duration_ns;
            }
            TraceEvent::Rss { bytes, .. } => last_rss = Some(bytes),
            TraceEvent::Io { bytes_read, seeks, retries, .. } => {
                io_bytes += bytes_read;
                io_seeks += seeks;
                io_retries += retries;
            }
            TraceEvent::Pool { steals, overflow, .. } => {
                pool_steals += steals;
                pool_overflow += overflow;
            }
            TraceEvent::RunBegin { .. }
            | TraceEvent::SuperstepBegin { .. }
            | TraceEvent::RunEnd { .. } => {}
        }
    }
    let secs = |ns: u64| ns as f64 / 1e9;
    let mut out = String::new();
    let counter = |out: &mut String, name: &str, help: &str, value: String| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
    };
    counter(&mut out, "ipregel_supersteps_total", "Supersteps completed.", supersteps.to_string());
    counter(&mut out, "ipregel_messages_total", "Messages sent.", messages.to_string());
    counter(&mut out, "ipregel_run_seconds_total", "Superstep wall-clock.", format!("{}", secs(run_ns)));
    counter(&mut out, "ipregel_chunks_total", "Scheduled chunks executed.", chunks.to_string());
    counter(&mut out, "ipregel_chunk_seconds_total", "Chunk body wall-clock.", format!("{}", secs(chunk_ns)));
    counter(
        &mut out,
        "ipregel_mailbox_lock_acquisitions_total",
        "Mailbox lock acquisitions.",
        lock_acquisitions.to_string(),
    );
    counter(&mut out, "ipregel_mailbox_cas_retries_total", "Lock-free mailbox CAS retries.", cas_retries.to_string());
    counter(
        &mut out,
        "ipregel_mailbox_spin_iterations_total",
        "Spinlock busy-wait iterations.",
        spin_iterations.to_string(),
    );
    counter(
        &mut out,
        "ipregel_worklist_drained_total",
        "Vertices drained through the selection bypass.",
        worklist_drained.to_string(),
    );
    counter(&mut out, "ipregel_checkpoint_saves_total", "Checkpoints written.", ckpt_saves.to_string());
    counter(
        &mut out,
        "ipregel_checkpoint_save_seconds_total",
        "Checkpoint write wall-clock.",
        format!("{}", secs(ckpt_save_ns)),
    );
    counter(&mut out, "ipregel_checkpoint_restores_total", "Checkpoints restored.", ckpt_restores.to_string());
    counter(
        &mut out,
        "ipregel_checkpoint_restore_seconds_total",
        "Checkpoint restore wall-clock.",
        format!("{}", secs(ckpt_restore_ns)),
    );
    counter(&mut out, "ipregel_io_bytes_read_total", "Out-of-core bytes read.", io_bytes.to_string());
    counter(&mut out, "ipregel_io_seeks_total", "Out-of-core seeks.", io_seeks.to_string());
    counter(&mut out, "ipregel_io_retries_total", "Out-of-core transient retries.", io_retries.to_string());
    counter(&mut out, "ipregel_pool_steals_total", "Chunks executed via work-stealing.", pool_steals.to_string());
    counter(
        &mut out,
        "ipregel_pool_overflow_total",
        "Jobs routed through the pool's overflow injector.",
        pool_overflow.to_string(),
    );
    counter(&mut out, "ipregel_trace_events_dropped_total", "Trace events dropped at shard bound.", dropped.to_string());
    if let Some(rss) = last_rss {
        out.push_str(&format!(
            "# HELP ipregel_rss_bytes Last sampled resident set size.\n# TYPE ipregel_rss_bytes gauge\nipregel_rss_bytes {rss}\n"
        ));
    }
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunBegin { engine: EngineKind::Push, slots: 24, threads: 2 },
            TraceEvent::SuperstepBegin { superstep: 0 },
            TraceEvent::Chunk {
                superstep: 0,
                chunk: 1,
                planned_edges: 17,
                duration_ns: 1234,
                lock_acquisitions: 3,
                cas_retries: 1,
                spin_iterations: 9,
                worker: 1,
            },
            TraceEvent::Pool { superstep: 0, steals: 2, overflow: 4 },
            TraceEvent::WorklistDrain { superstep: 0, queued: 7, drained: 5 },
            TraceEvent::SuperstepEnd {
                superstep: 0,
                active: 24,
                messages: 48,
                duration_ns: 5678,
                selection_ns: 90,
                chunks: 2,
            },
            TraceEvent::CheckpointSave { superstep: 0, duration_ns: 11 },
            TraceEvent::CheckpointRestore { superstep: 0, duration_ns: 22 },
            TraceEvent::Rss { superstep: 0, bytes: 1 << 20 },
            TraceEvent::Io { superstep: 0, bytes_read: 4096, seeks: 2, retries: 0 },
            TraceEvent::RunEnd { supersteps: 1, messages: 48, duration_ns: 5678 },
        ]
    }

    #[test]
    fn codec_round_trips_every_variant() {
        let events = one_of_each();
        let text = encode_trace(&events);
        let back = decode_trace(&text).expect("decode");
        assert_eq!(back, events);
    }

    #[test]
    fn codec_round_trips_extreme_numbers() {
        let e = TraceEvent::Rss { superstep: u64::MAX, bytes: u64::MAX };
        let line = encode_event(&e);
        assert_eq!(decode_line(&line).unwrap(), Some(e));
    }

    #[test]
    fn decoder_rejects_malformed_input() {
        assert!(decode_trace("not json\n").is_err());
        assert!(decode_trace("{\"type\":\"rss\",\"superstep\":0,\"bytes\":1}\n").is_err(), "no meta");
        assert!(decode_trace("{\"type\":\"meta\",\"schema\":999}\n").is_err(), "bad schema");
        let missing = format!("{}\n{{\"type\":\"rss\",\"superstep\":0}}\n", encode_meta());
        assert!(decode_trace(&missing).is_err(), "missing field");
        let unknown = format!("{}\n{{\"type\":\"wat\"}}\n", encode_meta());
        assert!(decode_trace(&unknown).is_err(), "unknown type");
    }

    #[test]
    fn meta_line_is_pinned() {
        assert_eq!(encode_meta(), "{\"type\":\"meta\",\"schema\":2}");
    }

    #[test]
    fn decoder_reads_schema_1_chunks_without_worker() {
        let v1 = "{\"type\":\"meta\",\"schema\":1}\n\
                  {\"type\":\"chunk\",\"superstep\":0,\"chunk\":3,\"planned_edges\":9,\
                  \"duration_ns\":77,\"lock_acquisitions\":0,\"cas_retries\":0,\
                  \"spin_iterations\":0}\n";
        let events = decode_trace(v1).expect("schema 1 must stay readable");
        assert_eq!(
            events,
            vec![TraceEvent::Chunk {
                superstep: 0,
                chunk: 3,
                planned_edges: 9,
                duration_ns: 77,
                lock_acquisitions: 0,
                cas_retries: 0,
                spin_iterations: 0,
                worker: 0,
            }]
        );
    }

    #[test]
    fn worker_default_is_gated_on_the_declared_schema() {
        // The identical worker-less chunk line: legal in a file that
        // declares schema 1 (see above), malformed in one that declares
        // schema 2 — the default must not paper over a truncated line.
        let chunk = "{\"type\":\"chunk\",\"superstep\":0,\"chunk\":3,\"planned_edges\":9,\
                     \"duration_ns\":77,\"lock_acquisitions\":0,\"cas_retries\":0,\
                     \"spin_iterations\":0}";
        let v2 = format!("{{\"type\":\"meta\",\"schema\":2}}\n{chunk}\n");
        let err = decode_trace(&v2).expect_err("schema 2 requires the worker field");
        assert!(err.contains("worker"), "error should name the missing field: {err}");
        // Standalone lines are held to the current schema too.
        assert!(decode_line(chunk).is_err(), "decode_line is current-schema strict");
    }

    #[test]
    fn barrier_orders_worker_chunks_before_superstep_end() {
        let t = Tracer::with_shards(2);
        // No pool worker index on the test thread, so record() lands in
        // the log; exercise the shard path via a tiny pool instead.
        let pool = ipregel_par::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        t.record_sync(TraceEvent::SuperstepBegin { superstep: 0 });
        pool.install(|| {
            ipregel_par::join(
                || {
                    t.record(TraceEvent::Chunk {
                        superstep: 0,
                        chunk: 1,
                        planned_edges: 0,
                        duration_ns: 0,
                        lock_acquisitions: 0,
                        cas_retries: 0,
                        spin_iterations: 0,
                        worker: 0,
                    })
                },
                || {
                    t.record(TraceEvent::Chunk {
                        superstep: 0,
                        chunk: 0,
                        planned_edges: 0,
                        duration_ns: 0,
                        lock_acquisitions: 0,
                        cas_retries: 0,
                        spin_iterations: 0,
                        worker: 0,
                    })
                },
            );
        });
        t.barrier(0);
        t.record_sync(TraceEvent::SuperstepEnd {
            superstep: 0,
            active: 0,
            messages: 0,
            duration_ns: 0,
            selection_ns: 0,
            chunks: 2,
        });
        let events = t.take_events();
        assert_eq!(events.len(), 4);
        assert!(matches!(events[0], TraceEvent::SuperstepBegin { .. }));
        assert!(matches!(events[1], TraceEvent::Chunk { chunk: 0, .. }));
        assert!(matches!(events[2], TraceEvent::Chunk { chunk: 1, .. }));
        assert!(matches!(events[3], TraceEvent::SuperstepEnd { .. }));
        assert_eq!(t.dropped_events(), 0);
        assert!(t.take_events().is_empty(), "take_events drains");
    }

    #[test]
    fn prometheus_snapshot_has_expected_totals() {
        let text = render_prometheus(&one_of_each(), 3);
        assert!(text.contains("ipregel_supersteps_total 1\n"));
        assert!(text.contains("ipregel_messages_total 48\n"));
        assert!(text.contains("ipregel_chunks_total 1\n"));
        assert!(text.contains("ipregel_mailbox_lock_acquisitions_total 3\n"));
        assert!(text.contains("ipregel_mailbox_cas_retries_total 1\n"));
        assert!(text.contains("ipregel_mailbox_spin_iterations_total 9\n"));
        assert!(text.contains("ipregel_worklist_drained_total 5\n"));
        assert!(text.contains("ipregel_checkpoint_saves_total 1\n"));
        assert!(text.contains("ipregel_io_bytes_read_total 4096\n"));
        assert!(text.contains("ipregel_pool_steals_total 2\n"));
        assert!(text.contains("ipregel_pool_overflow_total 4\n"));
        assert!(text.contains("ipregel_trace_events_dropped_total 3\n"));
        assert!(text.contains("ipregel_rss_bytes 1048576\n"));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn emit_is_compiled_out_without_the_feature() {
        let t = Tracer::with_shards(1);
        // The closure must never run: it would panic.
        emit(Some(&t), || panic!("emit called its closure with trace disabled"));
        barrier(Some(&t), 0);
        assert!(t.take_events().is_empty(), "no-op sink recorded an event");
        assert_eq!(t.dropped_events(), 0);
        // Contention notes are empty functions and snapshots read zero.
        contention::note_lock_acquisition();
        contention::note_cas_retry();
        contention::note_spin_iterations(7);
        assert_eq!(contention::snapshot(), contention::ContentionSnapshot::default());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn emit_records_with_the_feature_on() {
        let t = Tracer::with_shards(1);
        emit(Some(&t), || TraceEvent::SuperstepBegin { superstep: 4 });
        emit(None, || panic!("no tracer attached; closure must not run"));
        assert_eq!(t.take_events(), vec![TraceEvent::SuperstepBegin { superstep: 4 }]);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn contention_counters_accumulate_per_thread() {
        let before = contention::snapshot();
        contention::note_lock_acquisition();
        contention::note_lock_acquisition();
        contention::note_cas_retry();
        contention::note_spin_iterations(5);
        let delta = contention::snapshot().delta_since(&before);
        assert_eq!(delta.lock_acquisitions, 2);
        assert_eq!(delta.cas_retries, 1);
        assert_eq!(delta.spin_iterations, 5);
    }

    #[test]
    fn shard_bound_counts_drops() {
        let t = Tracer::with_shards(1);
        let pool = ipregel_par::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            for i in 0..(super::SHARD_CAPACITY + 10) {
                t.record(TraceEvent::SuperstepBegin { superstep: i as u64 });
            }
        });
        assert_eq!(t.dropped_events(), 10);
        assert_eq!(t.take_events().len(), super::SHARD_CAPACITY);
    }
}
