//! Per-run and per-superstep measurements.
//!
//! The paper's methodology (Section 7.1.2) times *superstep execution
//! only* — graph loading and preprocessing are excluded. The engines
//! therefore start the clock when the first superstep begins, and record
//! per-superstep activity so the harness can reproduce the analyses of
//! Section 7.2 (active-vertex ratios, superstep counts).

use std::time::Duration;


/// What happened during one superstep.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperstepStats {
    /// Superstep number, starting at 0.
    pub superstep: usize,
    /// Vertices executed this superstep.
    pub active: u64,
    /// Messages sent this superstep (a broadcast to `k` neighbours counts
    /// as `k` messages, as in Pregel's accounting).
    pub messages_sent: u64,
    /// Wall-clock time of the superstep.
    pub duration: Duration,
    /// Of `duration`: time spent *selecting* the next active set — the
    /// cost Section 4's bypass attacks. Scan selection pays O(|V|) here
    /// every superstep; the bypass pays O(active).
    pub selection_duration: Duration,
    /// Per-chunk load accounting of the compute phase, when the engine
    /// schedules in chunks (`None` for engines that don't — external
    /// baselines, the distributed simulator).
    pub load: Option<LoadStats>,
}

crate::impl_to_json!(SuperstepStats { superstep, active, messages_sent, duration, selection_duration, load });

/// Per-chunk load accounting for one superstep's compute phase.
///
/// The two vectors are parallel: chunk `i` was *planned* to carry
/// `chunk_edges[i]` weight (degree + 1 per vertex, in the direction the
/// engine walks — out for push, in for pull; the same unit
/// [`ipregel_graph::schedule`] balances) and *measured* to take
/// `chunk_durations[i]` of wall-clock. Planned weight is deterministic,
/// so tests assert on [`LoadStats::edge_imbalance`]; duration is the
/// ground truth the scheduling bench reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadStats {
    /// Planned weight of each chunk (edges + one unit per vertex).
    pub chunk_edges: Vec<u64>,
    /// Measured wall-clock of each chunk's compute loop.
    pub chunk_durations: Vec<Duration>,
    /// Pool worker index that executed each chunk (parallel with the
    /// other two vectors). Under work-stealing any worker may run any
    /// chunk, so the mapping is measured, not planned; all zeros for
    /// the sequential engine.
    pub chunk_workers: Vec<u64>,
    /// Work-stealing steals during this superstep's parallel region
    /// (delta of `ipregel_par::current_pool_stats().steals` across it).
    pub steals: u64,
    /// Jobs routed through the pool's overflow injector during this
    /// superstep's parallel region.
    pub overflow: u64,
}

crate::impl_to_json!(LoadStats { chunk_edges, chunk_durations, chunk_workers, steals, overflow });

impl LoadStats {
    /// Number of chunks the superstep was cut into.
    pub fn num_chunks(&self) -> usize {
        self.chunk_edges.len()
    }

    /// Max/mean ratio of planned chunk edge weights: 1.0 is a perfect
    /// cut, `num_chunks()` the worst (all weight in one chunk). Returns
    /// 1.0 for degenerate inputs (no chunks, zero total weight).
    pub fn edge_imbalance(&self) -> f64 {
        ratio_max_mean(self.chunk_edges.iter().map(|&e| e as f64))
    }

    /// Max/mean ratio of measured chunk durations; same scale as
    /// [`LoadStats::edge_imbalance`]. The superstep's critical path is
    /// its slowest chunk, so this ratio is the parallel-efficiency loss
    /// the schedule left on the table.
    pub fn duration_imbalance(&self) -> f64 {
        ratio_max_mean(self.chunk_durations.iter().map(Duration::as_secs_f64))
    }

    /// Max/mean ratio of per-**worker** planned edge weight: chunk
    /// weights grouped by the worker that actually executed each chunk
    /// ([`LoadStats::chunk_workers`]). Where [`LoadStats::edge_imbalance`]
    /// measures the balance the *plan* allowed (its worst single chunk),
    /// this measures the balance the scheduler *achieved* after
    /// work-stealing moved chunks between workers. Edge weights rather
    /// than durations keep it robust to timer noise. Returns 1.0 for
    /// degenerate inputs (no workers, no chunks, zero weight, or no
    /// recorded worker mapping).
    pub fn worker_edge_imbalance(&self, num_workers: usize) -> f64 {
        if num_workers == 0 || self.chunk_workers.len() != self.chunk_edges.len() {
            return 1.0;
        }
        let mut per_worker = vec![0u64; num_workers];
        for (&w, &e) in self.chunk_workers.iter().zip(&self.chunk_edges) {
            let w = usize::try_from(w).unwrap_or(usize::MAX).min(num_workers - 1);
            per_worker[w] += e;
        }
        ratio_max_mean(per_worker.iter().map(|&e| e as f64))
    }
}

/// Max over mean of `values`, or 1.0 when empty or summing to zero.
fn ratio_max_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut n, mut sum, mut max) = (0u64, 0.0f64, 0.0f64);
    for v in values {
        n += 1;
        sum += v;
        max = max.max(v);
    }
    if n == 0 || sum <= 0.0 {
        return 1.0;
    }
    max * n as f64 / sum
}

/// Aggregated statistics of a complete run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Every superstep, in order.
    pub supersteps: Vec<SuperstepStats>,
    /// Total superstep execution time (the paper's reported metric).
    pub total_time: Duration,
}

crate::impl_to_json!(RunStats { supersteps, total_time });

impl RunStats {
    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total messages sent across the run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages_sent).sum()
    }

    /// Total vertex executions across the run.
    pub fn total_vertex_executions(&self) -> u64 {
        self.supersteps.iter().map(|s| s.active).sum()
    }

    /// Largest number of active vertices in any superstep.
    pub fn peak_active(&self) -> u64 {
        self.supersteps.iter().map(|s| s.active).max().unwrap_or(0)
    }

    /// Record a completed superstep (public for alternative engines).
    pub fn push(&mut self, s: SuperstepStats) {
        self.total_time += s.duration;
        self.supersteps.push(s);
    }

    /// Total time spent in the selection phase across the run.
    pub fn total_selection_time(&self) -> Duration {
        self.supersteps.iter().map(|s| s.selection_duration).sum()
    }

    /// Worst per-superstep [`LoadStats::edge_imbalance`] across the run
    /// (1.0 when no superstep recorded load stats).
    pub fn worst_edge_imbalance(&self) -> f64 {
        self.supersteps
            .iter()
            .filter_map(|s| s.load.as_ref())
            .map(LoadStats::edge_imbalance)
            .fold(1.0, f64::max)
    }

    /// Worst per-superstep [`LoadStats::duration_imbalance`] across the
    /// run (1.0 when no superstep recorded load stats).
    pub fn worst_duration_imbalance(&self) -> f64 {
        self.supersteps
            .iter()
            .filter_map(|s| s.load.as_ref())
            .map(LoadStats::duration_imbalance)
            .fold(1.0, f64::max)
    }

    /// Cross-check these stats against a trace (see [`crate::trace`]):
    /// every [`crate::trace::TraceEvent::SuperstepEnd`] must mirror its
    /// [`SuperstepStats`] entry exactly in superstep number, active
    /// count, message count and chunk count, and the trace must cover
    /// the same supersteps in order. `Err` names the first divergence.
    /// This is the invariant `tests/trace_consistency.rs` pins and the
    /// `bench trace` differ relies on.
    pub fn reconcile_trace(&self, events: &[crate::trace::TraceEvent]) -> Result<(), String> {
        use crate::trace::TraceEvent;
        let ends: Vec<_> = events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::SuperstepEnd { superstep, active, messages, chunks, .. } => {
                    Some((superstep, active, messages, chunks))
                }
                _ => None,
            })
            .collect();
        if ends.len() != self.supersteps.len() {
            return Err(format!(
                "trace has {} superstep_end events, stats have {} supersteps",
                ends.len(),
                self.supersteps.len()
            ));
        }
        for (s, &(superstep, active, messages, chunks)) in self.supersteps.iter().zip(&ends) {
            if s.superstep as u64 != superstep {
                return Err(format!("superstep order: trace {superstep}, stats {}", s.superstep));
            }
            if s.active != active {
                return Err(format!("superstep {superstep}: trace active {active}, stats {}", s.active));
            }
            if s.messages_sent != messages {
                return Err(format!(
                    "superstep {superstep}: trace messages {messages}, stats {}",
                    s.messages_sent
                ));
            }
            let stat_chunks = s.load.as_ref().map_or(0, |l| l.chunk_edges.len() as u64);
            if stat_chunks != chunks {
                return Err(format!(
                    "superstep {superstep}: trace chunks {chunks}, stats {stat_chunks}"
                ));
            }
        }
        // Scheduler counters: every `pool` event must mirror its
        // superstep's LoadStats steal/overflow deltas (both sides are
        // snapshots of the same pool counters around the same region).
        for e in events {
            if let TraceEvent::Pool { superstep, steals, overflow } = *e {
                let Some(s) = self.supersteps.iter().find(|s| s.superstep as u64 == superstep)
                else {
                    return Err(format!("pool event for superstep {superstep} with no stats entry"));
                };
                let Some(load) = s.load.as_ref() else {
                    return Err(format!("pool event for superstep {superstep} without load stats"));
                };
                if load.steals != steals || load.overflow != overflow {
                    return Err(format!(
                        "superstep {superstep}: trace pool steals={steals} overflow={overflow}, \
                         stats steals={} overflow={}",
                        load.steals, load.overflow
                    ));
                }
            }
        }
        // Chunk→worker attribution: each chunk event's worker must match
        // the LoadStats mapping (same per-chunk records, two sinks).
        for e in events {
            if let TraceEvent::Chunk { superstep, chunk, worker, .. } = *e {
                let load = self
                    .supersteps
                    .iter()
                    .find(|s| s.superstep as u64 == superstep)
                    .and_then(|s| s.load.as_ref());
                if let Some(load) = load {
                    let recorded = load.chunk_workers.get(chunk as usize).copied();
                    if load.chunk_workers.len() == load.chunk_edges.len()
                        && recorded != Some(worker)
                    {
                        return Err(format!(
                            "superstep {superstep} chunk {chunk}: trace worker {worker}, \
                             stats {recorded:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// A compact ASCII sparkline of active vertices per superstep — the
    /// §7.1.4 activity evolutions at a glance: PageRank renders flat,
    /// Hashmin decreasing, SSSP as a bell.
    pub fn activity_sparkline(&self) -> String {
        const LEVELS: &[u8] = b" .:-=+*#%@";
        let peak = self.peak_active().max(1);
        self.supersteps
            .iter()
            .map(|s| {
                let idx = if s.active == 0 {
                    0
                } else {
                    // Map (0, peak] onto 1..=9 so any activity is visible.
                    1 + (s.active * 9 / peak).min(9).saturating_sub(1) as usize
                };
                LEVELS[idx] as char
            })
            .collect()
    }
}

/// Exact byte accounting of everything an engine allocated, split the way
/// Section 7.4.4 discusses memory: topology vs. framework overhead, and
/// within the overhead, the data-race protection the paper halves and then
/// zeroes out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FootprintReport {
    /// Bytes of the graph topology (CSR arrays); "the graph itself".
    pub graph_bytes: usize,
    /// Bytes of user vertex values.
    pub values_bytes: usize,
    /// Bytes of message slots (inboxes/outboxes), excluding locks.
    pub mailbox_bytes: usize,
    /// Bytes of data-race protection (locks); 0 for the pull combiner.
    pub lock_bytes: usize,
    /// Bytes of halted/active flags.
    pub flags_bytes: usize,
    /// Bytes of the selection-bypass worklists (0 when scanning).
    pub worklist_bytes: usize,
}

crate::impl_to_json!(FootprintReport { graph_bytes, values_bytes, mailbox_bytes, lock_bytes, flags_bytes, worklist_bytes });

impl FootprintReport {
    /// Framework overhead: everything except the graph topology.
    pub fn overhead_bytes(&self) -> usize {
        self.values_bytes + self.mailbox_bytes + self.lock_bytes + self.flags_bytes + self.worklist_bytes
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.graph_bytes + self.overhead_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(n: usize, active: u64, msgs: u64) -> SuperstepStats {
        SuperstepStats {
            superstep: n,
            active,
            messages_sent: msgs,
            duration: Duration::from_millis(10),
            selection_duration: Duration::from_millis(2),
            load: None,
        }
    }

    #[test]
    fn run_stats_aggregate() {
        let mut r = RunStats::default();
        r.push(step(0, 5, 7));
        r.push(step(1, 3, 2));
        assert_eq!(r.num_supersteps(), 2);
        assert_eq!(r.total_messages(), 9);
        assert_eq!(r.total_vertex_executions(), 8);
        assert_eq!(r.peak_active(), 5);
        assert_eq!(r.total_time, Duration::from_millis(20));
    }

    #[test]
    fn footprint_sums() {
        let f = FootprintReport {
            graph_bytes: 100,
            values_bytes: 10,
            mailbox_bytes: 20,
            lock_bytes: 30,
            flags_bytes: 5,
            worklist_bytes: 15,
        };
        assert_eq!(f.overhead_bytes(), 80);
        assert_eq!(f.total_bytes(), 180);
    }

    #[test]
    fn selection_time_accumulates() {
        let mut r = RunStats::default();
        r.push(step(0, 5, 7));
        r.push(step(1, 3, 2));
        assert_eq!(r.total_selection_time(), Duration::from_millis(4));
    }

    #[test]
    fn sparkline_shapes() {
        let mut bell = RunStats::default();
        for (i, a) in [1u64, 40, 100, 38, 2].iter().enumerate() {
            bell.push(step(i, *a, 0));
        }
        let line = bell.activity_sparkline();
        assert_eq!(line.len(), 5);
        let bytes = line.as_bytes();
        assert!(bytes[2] > bytes[0] && bytes[2] > bytes[4], "{line}");

        let mut silent = RunStats::default();
        silent.push(step(0, 0, 0));
        assert_eq!(silent.activity_sparkline(), " ");
    }

    #[test]
    fn empty_run_has_zeroes() {
        let r = RunStats::default();
        assert_eq!(r.num_supersteps(), 0);
        assert_eq!(r.peak_active(), 0);
        assert_eq!(r.total_messages(), 0);
    }

    #[test]
    fn imbalance_ratios() {
        // Perfect balance → exactly 1.0.
        let even = LoadStats {
            chunk_edges: vec![10, 10, 10, 10],
            chunk_durations: vec![Duration::from_millis(5); 4],
            ..Default::default()
        };
        assert_eq!(even.edge_imbalance(), 1.0);
        assert_eq!(even.duration_imbalance(), 1.0);
        assert_eq!(even.num_chunks(), 4);

        // All weight in one of four chunks → 4.0 (the worst case).
        let hub = LoadStats {
            chunk_edges: vec![40, 0, 0, 0],
            chunk_durations: vec![
                Duration::from_millis(8),
                Duration::from_millis(1),
                Duration::from_millis(1),
                Duration::from_millis(2),
            ],
            ..Default::default()
        };
        assert_eq!(hub.edge_imbalance(), 4.0);
        let d = hub.duration_imbalance();
        assert!((d - 8.0 * 4.0 / 12.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn degenerate_imbalance_is_one() {
        assert_eq!(LoadStats::default().edge_imbalance(), 1.0);
        assert_eq!(LoadStats::default().duration_imbalance(), 1.0);
        let zeros = LoadStats {
            chunk_edges: vec![0, 0],
            chunk_durations: vec![Duration::ZERO; 2],
            ..Default::default()
        };
        assert_eq!(zeros.edge_imbalance(), 1.0);
        assert_eq!(zeros.duration_imbalance(), 1.0);
    }

    #[test]
    fn worst_imbalance_scans_supersteps() {
        let mut r = RunStats::default();
        assert_eq!(r.worst_edge_imbalance(), 1.0);
        assert_eq!(r.worst_duration_imbalance(), 1.0);
        r.push(step(0, 5, 7)); // load: None — ignored
        let mut skewed = step(1, 3, 2);
        skewed.load = Some(LoadStats {
            chunk_edges: vec![30, 10],
            chunk_durations: vec![Duration::from_millis(3), Duration::from_millis(1)],
            ..Default::default()
        });
        r.push(skewed);
        assert_eq!(r.worst_edge_imbalance(), 1.5);
        assert_eq!(r.worst_duration_imbalance(), 1.5);
    }

    #[test]
    fn worker_edge_imbalance_groups_by_executing_worker() {
        // Plan: 4 chunks of uneven weight. Workers 0 and 1 each ended up
        // with 20 edges after stealing → perfectly balanced (1.0), even
        // though the worst chunk alone gives edge_imbalance 1.5.
        let l = LoadStats {
            chunk_edges: vec![15, 5, 10, 10],
            chunk_durations: vec![Duration::from_millis(1); 4],
            chunk_workers: vec![0, 0, 1, 1],
            ..Default::default()
        };
        assert_eq!(l.edge_imbalance(), 1.5);
        assert_eq!(l.worker_edge_imbalance(2), 1.0);
        // All chunks on worker 0 of 2 → max/mean = 40/20 = 2.0.
        let skew = LoadStats { chunk_workers: vec![0, 0, 0, 0], ..l.clone() };
        assert_eq!(skew.worker_edge_imbalance(2), 2.0);
        // Degenerate shapes fall back to 1.0.
        assert_eq!(l.worker_edge_imbalance(0), 1.0);
        assert_eq!(LoadStats::default().worker_edge_imbalance(4), 1.0);
    }

    #[test]
    fn reconcile_checks_pool_counters_and_worker_attribution() {
        use crate::trace::TraceEvent;
        let mut r = RunStats::default();
        let mut s = step(0, 2, 3);
        s.load = Some(LoadStats {
            chunk_edges: vec![4, 6],
            chunk_durations: vec![Duration::from_millis(1); 2],
            chunk_workers: vec![1, 0],
            steals: 1,
            overflow: 2,
        });
        r.push(s);
        let good = vec![
            TraceEvent::Chunk {
                superstep: 0,
                chunk: 0,
                planned_edges: 4,
                duration_ns: 1,
                lock_acquisitions: 0,
                cas_retries: 0,
                spin_iterations: 0,
                worker: 1,
            },
            TraceEvent::Pool { superstep: 0, steals: 1, overflow: 2 },
            TraceEvent::SuperstepEnd {
                superstep: 0,
                active: 2,
                messages: 3,
                duration_ns: 1,
                selection_ns: 0,
                chunks: 2,
            },
        ];
        assert_eq!(r.reconcile_trace(&good), Ok(()));
        // Wrong steal count → named divergence.
        let mut bad_pool = good.clone();
        bad_pool[1] = TraceEvent::Pool { superstep: 0, steals: 9, overflow: 2 };
        assert!(r.reconcile_trace(&bad_pool).unwrap_err().contains("steals=9"));
        // Wrong worker attribution → named divergence.
        let mut bad_worker = good;
        if let TraceEvent::Chunk { worker, .. } = &mut bad_worker[0] {
            *worker = 0;
        }
        assert!(r.reconcile_trace(&bad_worker).unwrap_err().contains("worker 0"));
    }
}
