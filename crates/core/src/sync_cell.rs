//! A shared slice with caller-guaranteed disjoint access.
//!
//! The engines process each active vertex exactly once per superstep, so
//! per-vertex state (values, halted flags, outboxes) is mutated by at most
//! one thread at a time even though the slice itself is shared across the
//! thread pool. [`SharedSlice`] encodes that contract: it hands out `&mut`
//! references through a shared reference, and the *engine* is responsible
//! for index disjointness (guaranteed by the worklist's exactly-once
//! enqueueing or by the scan's distinct indices).
//!
//! This is the standard "split by index" pattern from the concurrency
//! literature (cf. Rust Atomics and Locks, ch. 1: exclusive access can be
//! subdivided structurally); `unsafe` is confined to this module.
//!
//! # Representation
//!
//! The view is a raw base pointer + length captured from the `&mut [T]`,
//! not a `&[UnsafeCell<T>]` cast. The two are equivalent for `std`, but
//! the raw form has two advantages: it is the shape Miri's Stacked
//! Borrows reasons about most directly (every `&mut T` handed out is a
//! short-lived reborrow of the original raw pointer, never of another
//! reference), and it compiles unchanged under `--cfg loom`, where
//! loom's `UnsafeCell` is not layout-compatible with `T` and the cast
//! would be unsound.
//!
//! # Dynamic contract checking (`check-disjoint`)
//!
//! The disjointness argument lives in the engines, not in the type. With
//! the `check-disjoint` feature the view additionally carries one atomic
//! borrow tag per index: [`SharedSlice::get_mut`] claims the tag and the
//! returned [`SliceRefMut`] guard releases it on drop, so two overlapping
//! mutable borrows of the same index — an engine bug that would be UB in
//! a normal build — panic deterministically instead. The stress suites
//! run with this feature on.

use std::marker::PhantomData;

#[cfg(feature = "check-disjoint")]
use std::sync::atomic::{AtomicU8, Ordering};

/// Shared view of `&mut [T]` allowing per-index exclusive access.
pub struct SharedSlice<'a, T> {
    base: *mut T,
    len: usize,
    /// One tag per index: 0 = unclaimed, 1 = mutably borrowed.
    #[cfg(feature = "check-disjoint")]
    tags: Box<[AtomicU8]>,
    /// Holds the exclusive borrow of the underlying slice for `'a`
    /// (and keeps `T` invariant, exactly like `&'a mut [T]`).
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is disjoint by engine contract; T crossing threads
// requires T: Send. Sync is what lets the pool share the view.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
// SAFETY: the view owns the unique borrow of the slice for 'a, so
// moving the view between threads is moving a `&mut [T]`: T: Send.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap an exclusive slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            len: slice.len(),
            base: slice.as_mut_ptr(),
            #[cfg(feature = "check-disjoint")]
            tags: (0..slice.len()).map(|_| AtomicU8::new(0)).collect(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to element `i`, released when the returned
    /// guard drops.
    ///
    /// # Safety
    /// No other thread may access index `i` for the lifetime of the
    /// returned guard. The engines guarantee this by processing each
    /// vertex at most once per superstep. With the `check-disjoint`
    /// feature a violation panics instead of being undefined behaviour.
    ///
    /// # Panics
    /// Under `check-disjoint`, if index `i` is already mutably borrowed.
    #[inline]
    pub unsafe fn get_mut(&self, i: usize) -> SliceRefMut<'_, T> {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        #[cfg(feature = "check-disjoint")]
        // ordering(Acquire): claiming the tag must also acquire the
        // previous holder's element writes (pairs with the Release drop)
        if self.tags[i].swap(1, Ordering::Acquire) != 0 {
            panic!("SharedSlice: overlapping get_mut on index {i} — engine disjointness violated");
        }
        SliceRefMut {
            // SAFETY: i < len, so the offset stays inside the original
            // slice allocation.
            ptr: unsafe { self.base.add(i) },
            #[cfg(feature = "check-disjoint")]
            tag: &self.tags[i],
            _marker: PhantomData,
        }
    }

    /// Shared read of element `i`.
    ///
    /// # Safety
    /// No thread may hold a mutable reference to index `i` concurrently.
    /// Used for read-only phases (e.g. the pull engine's gather, which
    /// reads outboxes written in the *previous* superstep).
    ///
    /// # Panics
    /// Under `check-disjoint`, if index `i` is currently mutably
    /// borrowed through this view.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        #[cfg(feature = "check-disjoint")]
        // ordering(Acquire): a clean read must see the writes released
        // by the last guard drop
        if self.tags[i].load(Ordering::Acquire) != 0 {
            panic!("SharedSlice: get on index {i} while mutably borrowed — engine phase violated");
        }
        // SAFETY: i < len; caller guarantees no concurrent writer.
        unsafe { &*self.base.add(i) }
    }
}

/// Exclusive borrow of one element of a [`SharedSlice`], returned by
/// [`SharedSlice::get_mut`].
///
/// Behaves like `&mut T` (through `Deref`/`DerefMut`); under the
/// `check-disjoint` feature its drop releases the index's borrow tag.
pub struct SliceRefMut<'s, T> {
    ptr: *mut T,
    #[cfg(feature = "check-disjoint")]
    tag: &'s AtomicU8,
    _marker: PhantomData<&'s mut T>,
}

impl<T> std::ops::Deref for SliceRefMut<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard was created by get_mut under the caller's
        // exclusivity guarantee; ptr is in bounds and live for 's.
        unsafe { &*self.ptr }
    }
}

impl<T> std::ops::DerefMut for SliceRefMut<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in Deref; the guard itself is borrowed mutably, so
        // this reference cannot be duplicated through the guard.
        unsafe { &mut *self.ptr }
    }
}

#[cfg(feature = "check-disjoint")]
impl<T> Drop for SliceRefMut<'_, T> {
    fn drop(&mut self) {
        // ordering(Release): publishes this guard's element writes to
        // the next Acquire claim of the same index
        self.tag.store(0, Ordering::Release);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ipregel_par::prelude::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        // Miri runs threaded code slowly; shrink but keep the shape.
        let n: usize = if cfg!(miri) { 64 } else { 1000 };
        let mut data = vec![0u64; n];
        {
            let view = SharedSlice::new(&mut data);
            (0..n).into_par_iter().for_each(|i| {
                // SAFETY: indices are distinct.
                unsafe { *view.get_mut(i) = i as u64 * 2 };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn reads_see_previous_phase_writes() {
        let mut data = vec![1u32, 2, 3];
        let view = SharedSlice::new(&mut data);
        // SAFETY: no mutable borrows exist during these reads.
        let total: u32 = (0..3).map(|i| unsafe { *view.get(i) }).sum();
        assert_eq!(total, 6);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn guard_write_then_read_round_trips() {
        let mut data = vec![0u32; 4];
        let view = SharedSlice::new(&mut data);
        {
            // SAFETY: single-threaded; index 2 borrowed once.
            let mut g = unsafe { view.get_mut(2) };
            *g = 9;
            assert_eq!(*g, 9);
        }
        // SAFETY: the guard above has been dropped.
        assert_eq!(unsafe { *view.get(2) }, 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_mut_bounds_checked() {
        let mut data = vec![0u8; 2];
        let view = SharedSlice::new(&mut data);
        // SAFETY: never reached past the bounds assertion.
        let _ = unsafe { view.get_mut(2) };
    }

    #[cfg(feature = "check-disjoint")]
    #[test]
    #[should_panic(expected = "overlapping get_mut")]
    fn overlapping_get_mut_panics() {
        let mut data = vec![0u32; 4];
        let view = SharedSlice::new(&mut data);
        // SAFETY: sole borrow of index 1 so far; the checker tags it.
        let _a = unsafe { view.get_mut(1) };
        // SAFETY: the contract-violating borrow is what the checker
        // must catch — it panics before any aliasing occurs.
        let _b = unsafe { view.get_mut(1) };
    }

    #[cfg(feature = "check-disjoint")]
    #[test]
    #[should_panic(expected = "while mutably borrowed")]
    fn read_during_mutable_borrow_panics() {
        let mut data = vec![0u32; 4];
        let view = SharedSlice::new(&mut data);
        // SAFETY: sole borrow of index 3 so far; the checker tags it.
        let _a = unsafe { view.get_mut(3) };
        // SAFETY: this read violates the phase contract on purpose;
        // the checker panics before the aliasing read happens.
        let _ = unsafe { view.get(3) };
    }

    #[cfg(feature = "check-disjoint")]
    #[test]
    fn tag_released_on_drop_allows_reborrow() {
        let mut data = vec![0u32; 1];
        let view = SharedSlice::new(&mut data);
        for i in 0..10u32 {
            // SAFETY: sequential borrows; each guard drops before the next.
            unsafe { *view.get_mut(0) += i };
        }
        // SAFETY: all guards dropped.
        assert_eq!(unsafe { *view.get(0) }, 45);
    }
}
