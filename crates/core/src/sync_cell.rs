//! A shared slice with caller-guaranteed disjoint access.
//!
//! The engines process each active vertex exactly once per superstep, so
//! per-vertex state (values, halted flags, outboxes) is mutated by at most
//! one thread at a time even though the slice itself is shared across the
//! rayon pool. [`SharedSlice`] encodes that contract: it hands out `&mut`
//! references through a shared reference, and the *engine* is responsible
//! for index disjointness (guaranteed by the worklist's exactly-once
//! enqueueing or by the scan's distinct indices).
//!
//! This is the standard "split by index" pattern from the concurrency
//! literature (cf. Rust Atomics and Locks, ch. 1: exclusive access can be
//! subdivided structurally); `unsafe` is confined to this module.

use std::cell::UnsafeCell;

/// Shared view of `&mut [T]` allowing per-index exclusive access.
pub struct SharedSlice<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

// SAFETY: access is disjoint by engine contract; T crossing threads
// requires T: Send. Sync is what lets rayon share the view.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap an exclusive slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: UnsafeCell<T> has the same layout as T; we own the
        // unique borrow for 'a, so re-exposing it cell-wise is sound.
        let cells = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice { cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Exclusive reference to element `i`.
    ///
    /// # Safety
    /// No other thread may access index `i` for the lifetime of the
    /// returned reference. The engines guarantee this by processing each
    /// vertex at most once per superstep.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.cells[i].get()
    }

    /// Shared read of element `i`.
    ///
    /// # Safety
    /// No thread may hold a mutable reference to index `i` concurrently.
    /// Used for read-only phases (e.g. the pull engine's gather, which
    /// reads outboxes written in the *previous* superstep).
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        &*self.cells[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u64; 1000];
        {
            let view = SharedSlice::new(&mut data);
            (0..1000usize).into_par_iter().for_each(|i| {
                // SAFETY: indices are distinct.
                unsafe { *view.get_mut(i) = i as u64 * 2 };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn reads_see_previous_phase_writes() {
        let mut data = vec![1u32, 2, 3];
        let view = SharedSlice::new(&mut data);
        let total: u32 = (0..3).map(|i| unsafe { *view.get(i) }).sum();
        assert_eq!(total, 6);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }
}
