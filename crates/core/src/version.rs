//! The multi-version layer (Section 3.1).
//!
//! iPregel selects module implementations at compile time via `#define`s;
//! here each version is a monomorphised engine and [`Version`] is the thin
//! runtime switch the harness uses to sweep all of them. The six paper
//! versions are {mutex, spinlock, broadcast} × {with, without selection
//! bypass}; [`CombinerKind::LockFree`] is our ablation extension.

use ipregel_graph::Graph;

use crate::engine::pull::try_run_pull_recoverable;
use crate::engine::push::try_run_push_recoverable;
use crate::engine::{RunConfig, RunOutput, RunResult};
use crate::mailbox::{AtomicMailbox, MutexMailbox, PackMessage, SpinMailbox};
use crate::program::VertexProgram;
use crate::recover::DynHooks;

/// Which combiner module to use (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombinerKind {
    /// Block-waiting push combiner (§6.1, mutex).
    Mutex,
    /// Busy-waiting push combiner (§6.1, spinlock).
    Spinlock,
    /// Pull-based combiner (§6.2, "broadcast" version in Figure 7).
    Broadcast,
    /// Lock-free CAS push combiner — extension; needs a packable message,
    /// so it runs through [`run_packed`] only.
    LockFree,
}

impl CombinerKind {
    /// Label used in the Figure 7 reproduction.
    pub fn label(&self) -> &'static str {
        match self {
            CombinerKind::Mutex => "Mutex",
            CombinerKind::Spinlock => "Spinlock",
            CombinerKind::Broadcast => "Broadcast",
            CombinerKind::LockFree => "Lock-free",
        }
    }
}

/// One iPregel version: a combiner paired with a selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Version {
    /// Combiner module.
    pub combiner: CombinerKind,
    /// Selection-bypass module (§4) on or off.
    pub selection_bypass: bool,
}

impl Version {
    /// The six versions evaluated in Figure 7, in the figure's legend
    /// order: mutex, spinlock, broadcast, then the same with bypass.
    pub fn paper_versions() -> [Version; 6] {
        [
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: true },
        ]
    }

    /// Label matching the Figure 7 legend.
    pub fn label(&self) -> String {
        if self.selection_bypass {
            format!("{} with selection bypass", self.combiner.label())
        } else {
            self.combiner.label().to_string()
        }
    }
}

impl std::fmt::Display for CombinerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Run `program` on `graph` under `version`.
///
/// # Panics
/// For [`CombinerKind::LockFree`], whose packed-message bound cannot be
/// expressed here — use [`run_packed`]. Also on any [`RunError`]
/// (the historical infallible surface); fault-tolerant callers use
/// [`try_run`].
///
/// [`RunError`]: crate::engine::RunError
pub fn run<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
) -> RunOutput<P::Value> {
    try_run(graph, program, version, config).unwrap_or_else(|e| panic!("run: {e}"))
}

/// Fallible [`run`]: vertex panics surface as
/// [`RunError::VertexPanic`](crate::engine::RunError::VertexPanic), a
/// missed deadline as
/// [`RunError::DeadlineExceeded`](crate::engine::RunError::DeadlineExceeded).
///
/// # Panics
/// For [`CombinerKind::LockFree`] — use [`try_run_packed`]. That is a
/// caller-side type error, not a runtime fault, so it stays a panic.
pub fn try_run<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
) -> RunResult<P::Value> {
    try_run_recoverable(graph, program, version, config, None)
}

/// [`try_run`] with checkpoint/restore hooks (see [`crate::recover`]).
pub fn try_run_recoverable<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
    hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value> {
    let config = RunConfig { selection_bypass: version.selection_bypass, ..config.clone() };
    match version.combiner {
        CombinerKind::Mutex => {
            try_run_push_recoverable::<P, MutexMailbox<P::Message>>(graph, program, &config, hooks)
        }
        CombinerKind::Spinlock => {
            try_run_push_recoverable::<P, SpinMailbox<P::Message>>(graph, program, &config, hooks)
        }
        CombinerKind::Broadcast => try_run_pull_recoverable(graph, program, &config, hooks),
        CombinerKind::LockFree => {
            panic!("the lock-free combiner needs PackMessage; call run_packed instead")
        }
    }
}

/// Like [`run`], additionally supporting [`CombinerKind::LockFree`] for
/// programs whose messages pack into 64 bits.
///
/// # Panics
/// On any [`RunError`](crate::engine::RunError) — fault-tolerant callers
/// use [`try_run_packed`].
pub fn run_packed<P>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
) -> RunOutput<P::Value>
where
    P: VertexProgram,
    P::Message: PackMessage,
{
    try_run_packed(graph, program, version, config).unwrap_or_else(|e| panic!("run_packed: {e}"))
}

/// Fallible [`run_packed`].
pub fn try_run_packed<P>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
) -> RunResult<P::Value>
where
    P: VertexProgram,
    P::Message: PackMessage,
{
    try_run_packed_recoverable(graph, program, version, config, None)
}

/// [`try_run_packed`] with checkpoint/restore hooks (see
/// [`crate::recover`]).
pub fn try_run_packed_recoverable<P>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
    hooks: Option<DynHooks<'_, P::Value, P::Message>>,
) -> RunResult<P::Value>
where
    P: VertexProgram,
    P::Message: PackMessage,
{
    match version.combiner {
        CombinerKind::LockFree => {
            let config = RunConfig { selection_bypass: version.selection_bypass, ..config.clone() };
            try_run_push_recoverable::<P, AtomicMailbox<P::Message>>(graph, program, &config, hooks)
        }
        _ => try_run_recoverable(graph, program, version, config, hooks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_labels() {
        let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: true };
        assert_eq!(v.to_string(), "Spinlock with selection bypass");
        assert_eq!(CombinerKind::Broadcast.to_string(), "Broadcast");
    }

    #[test]
    fn six_paper_versions_with_figure_labels() {
        let vs = Version::paper_versions();
        assert_eq!(vs.len(), 6);
        assert_eq!(vs[0].label(), "Mutex");
        assert_eq!(vs[2].label(), "Broadcast");
        assert_eq!(vs[4].label(), "Spinlock with selection bypass");
        assert_eq!(vs.iter().filter(|v| v.selection_bypass).count(), 3);
    }
}
