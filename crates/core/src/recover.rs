//! Barrier checkpointing and resume: fault tolerance for the BSP loop.
//!
//! The superstep barrier is the one point where every engine is
//! quiescent — no compute in flight, messages fully combined, buffers
//! owned by the orchestrating thread — so it is the natural recovery
//! point (the same observation Pregel's checkpointing builds on). This
//! module snapshots exactly the state that survives a barrier:
//!
//! * the vertex values,
//! * the halted flags,
//! * the *combined* inbox for the superstep about to run (one optional
//!   message per slot — Section 6.3's combiner invariant is what makes
//!   the snapshot O(|V|) instead of O(messages)),
//! * the per-superstep history (active / message counts, for stats), and
//! * the superstep counter.
//!
//! Nothing engine-specific is stored. The bypass worklist, the pull
//! engine's outboxes and epoch tags, and the chunk plan are all
//! *derivable* from the inbox at a barrier: push engines re-deliver the
//! snapshot into fresh mailboxes, the bypass active list is exactly the
//! slots with a pending message (the §4 contract: activity ≡ message
//! receipt), and scan engines re-scan. A checkpoint written by any
//! engine version therefore restores into **any other** engine version,
//! and — because scheduling never changes results (the PR-2 invariant)
//! — a resumed run is bit-identical to an uninterrupted one for every
//! order-insensitive combiner (min/max; floating-point sums re-combine
//! in a different order across *push* thread interleavings exactly as
//! they already do between two uninterrupted runs).
//!
//! # On-disk format (`IPCK`, version 1)
//!
//! Little-endian, one file per checkpoint (`ckpt-<superstep>.ipck`),
//! written to a temp name and atomically renamed:
//!
//! ```text
//! magic "IPCK" | format u32 | superstep u64 | slots u64
//! value_bytes u32 | msg_bytes u32                      (layout guard)
//! history_len u64 | (active u64, messages u64) × len
//! values: slots × value_bytes
//! halted bitmap: ⌈slots/8⌉ bytes
//! inbox bitmap:  ⌈slots/8⌉ bytes
//! present u64 | messages: present × msg_bytes
//! fnv1a64 checksum of everything above
//! ```
//!
//! The trailing FNV-1a 64 checksum (shared with the binary graph
//! format, `ipregel_graph::checksum`) turns torn writes and bit rot
//! into [`RunError::Resume`]-class failures instead of silent garbage;
//! resume scans checkpoints newest-first and falls back past any file
//! that fails validation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ipregel_graph::checksum::fnv1a64;
use ipregel_graph::Graph;

use crate::engine::{RunConfig, RunError, RunResult};
use crate::mailbox::PackMessage;
use crate::program::VertexProgram;
use crate::version::Version;

// format-region(ipck-persist, v1): begin — the Persist encodings below
// are checkpoint wire format; any change needs a FORMAT bump in the
// ipck region and an ipregel-lint --bless-formats (see
// docs/INTERNALS.md, "Static analysis: concurrency invariants").
/// Fixed-size binary encoding for checkpointable vertex state.
///
/// Implemented for the primitive value/message types the bundled
/// applications use (`u32` distances and labels, `u64` ids, `f64`
/// ranks). Implement it for your own `Copy` types to make a program
/// checkpointable; encoding must be position-independent and exactly
/// [`Persist::BYTES`] long.
pub trait Persist: Copy {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Append exactly [`Persist::BYTES`] bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Inverse of [`Persist::encode`]; `bytes` has length
    /// [`Persist::BYTES`].
    fn decode(bytes: &[u8]) -> Self;
}

macro_rules! persist_via_le_bytes {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("caller passes exactly BYTES"))
            }
        }
    )*};
}

persist_via_le_bytes!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Persist for bool {
    const BYTES: usize = 1;
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

impl Persist for (u32, u32) {
    const BYTES: usize = 8;
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(bytes: &[u8]) -> Self {
        (u32::decode(&bytes[..4]), u32::decode(&bytes[4..]))
    }
    // format-region(ipck-persist): end
}

/// Barrier state restored from a checkpoint, in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState<V, M> {
    /// The superstep about to run when the checkpoint was taken.
    pub superstep: usize,
    /// Vertex values at the barrier.
    pub values: Vec<V>,
    /// Halted flags at the barrier.
    pub halted: Vec<bool>,
    /// The combined inbox for superstep `superstep` (one optional
    /// message per slot).
    pub inbox: Vec<Option<M>>,
    /// `(active, messages_sent)` for each completed superstep, so the
    /// resumed run's [`crate::metrics::RunStats`] keeps whole-run
    /// counts. Durations are not restored (they are wall-clock facts of
    /// the dead process) and read as zero.
    pub history: Vec<(u64, u64)>,
}

/// Engine-side checkpoint/restore callbacks.
///
/// The engines call these only at superstep barriers, from the
/// orchestrating thread: `take_resume` once before the loop, then
/// `due`/`save` at each loop top. Object-safe on purpose — engines hold
/// a `&mut dyn` so their signatures stay free of persistence bounds.
pub trait RecoveryHooks<V, M> {
    /// Barrier state to restore into the engine, consumed once at run
    /// start. `None` starts from superstep 0.
    fn take_resume(&mut self) -> Option<ResumeState<V, M>>;

    /// Whether a checkpoint should be taken at the top of `superstep`.
    fn due(&self, superstep: usize) -> bool;

    /// Persist the barrier state at the top of `superstep`.
    fn save(
        &mut self,
        superstep: usize,
        values: &[V],
        halted: &[bool],
        inbox: &[Option<M>],
        history: &[(u64, u64)],
    ) -> io::Result<()>;
}

/// Borrowed hook object as the engines accept it.
pub type DynHooks<'a, V, M> = &'a mut (dyn RecoveryHooks<V, M> + Send);

/// Where and how often to checkpoint, and whether to resume.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory for `ckpt-*.ipck` files (created if missing).
    pub dir: PathBuf,
    /// Checkpoint at the top of every superstep divisible by this;
    /// `0` disables saving (useful for resume-only runs).
    pub every: usize,
    /// Restore from the newest valid checkpoint in `dir` before
    /// running. An error if no valid checkpoint exists.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every` supersteps, starting fresh.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointConfig { dir: dir.into(), every, resume: false }
    }

    /// The same directory and cadence, but resuming.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// [`RecoveryHooks`] over a directory of `IPCK` files.
pub struct DiskCheckpointer<V, M> {
    dir: PathBuf,
    every: usize,
    pending_resume: Option<ResumeState<V, M>>,
    /// Superstep the run resumed at; `due` skips it so resuming does
    /// not immediately rewrite the checkpoint it just read.
    resume_floor: Option<usize>,
}

impl<V, M> std::fmt::Debug for DiskCheckpointer<V, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCheckpointer")
            .field("dir", &self.dir)
            .field("every", &self.every)
            .field("pending_resume", &self.pending_resume.is_some())
            .field("resume_floor", &self.resume_floor)
            .finish()
    }
}

impl<V: Persist, M: Persist> DiskCheckpointer<V, M> {
    /// Open (and create) the checkpoint directory; load the newest
    /// valid checkpoint when `cfg.resume` is set.
    pub fn open(cfg: &CheckpointConfig) -> Result<Self, RunError> {
        fs::create_dir_all(&cfg.dir)
            .map_err(|source| RunError::Checkpoint { superstep: 0, source })?;
        let pending_resume = if cfg.resume {
            match latest_valid::<V, M>(&cfg.dir) {
                Some(state) => Some(state),
                None => {
                    return Err(RunError::Resume(format!(
                        "no valid checkpoint in {}",
                        cfg.dir.display()
                    )))
                }
            }
        } else {
            None
        };
        let resume_floor = pending_resume.as_ref().map(|s| s.superstep);
        Ok(DiskCheckpointer { dir: cfg.dir.clone(), every: cfg.every, pending_resume, resume_floor })
    }
}

impl<V: Persist, M: Persist> RecoveryHooks<V, M> for DiskCheckpointer<V, M> {
    fn take_resume(&mut self) -> Option<ResumeState<V, M>> {
        self.pending_resume.take()
    }

    fn due(&self, superstep: usize) -> bool {
        self.every != 0
            && superstep != 0
            && superstep.is_multiple_of(self.every)
            && Some(superstep) != self.resume_floor
    }

    fn save(
        &mut self,
        superstep: usize,
        values: &[V],
        halted: &[bool],
        inbox: &[Option<M>],
        history: &[(u64, u64)],
    ) -> io::Result<()> {
        let bytes = encode_checkpoint(superstep, values, halted, inbox, history);
        let final_path = self.dir.join(format!("ckpt-{superstep:08}.ipck"));
        #[cfg(feature = "chaos")]
        if crate::chaos::fires(crate::chaos::CHECKPOINT_TRUNCATE, superstep as u64) {
            // Injected torn write: half the payload lands under the
            // final name with no rename barrier. Resume must detect it
            // via the checksum and fall back to an older checkpoint.
            return fs::write(&final_path, &bytes[..bytes.len() / 2]);
        }
        let tmp_path = self.dir.join(format!("ckpt-{superstep:08}.ipck.tmp"));
        fs::write(&tmp_path, &bytes)?;
        fs::rename(&tmp_path, &final_path)
    }
}

// format-region(ipck, v1): begin — everything the writer emits. A
// layout change here must bump FORMAT *and* the marker version, then
// re-bless with `cargo run -p ipregel-lint -- --bless-formats`.
const MAGIC: &[u8; 4] = b"IPCK";
const FORMAT: u32 = 1;

/// Serialise barrier state into the `IPCK` byte format.
pub(crate) fn encode_checkpoint<V: Persist, M: Persist>(
    superstep: usize,
    values: &[V],
    halted: &[bool],
    inbox: &[Option<M>],
    history: &[(u64, u64)],
) -> Vec<u8> {
    let slots = values.len();
    debug_assert_eq!(halted.len(), slots);
    debug_assert_eq!(inbox.len(), slots);
    let present = inbox.iter().filter(|m| m.is_some()).count();
    let mut out = Vec::with_capacity(
        64 + history.len() * 16
            + slots * V::BYTES
            + slots.div_ceil(8) * 2
            + present * M::BYTES,
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&(superstep as u64).to_le_bytes());
    out.extend_from_slice(&(slots as u64).to_le_bytes());
    out.extend_from_slice(&(V::BYTES as u32).to_le_bytes());
    out.extend_from_slice(&(M::BYTES as u32).to_le_bytes());
    out.extend_from_slice(&(history.len() as u64).to_le_bytes());
    for &(active, messages) in history {
        out.extend_from_slice(&active.to_le_bytes());
        out.extend_from_slice(&messages.to_le_bytes());
    }
    for v in values {
        v.encode(&mut out);
    }
    push_bitmap(&mut out, halted.iter().copied());
    push_bitmap(&mut out, inbox.iter().map(Option::is_some));
    out.extend_from_slice(&(present as u64).to_le_bytes());
    for m in inbox.iter().flatten() {
        m.encode(&mut out);
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}
// format-region(ipck): end

fn push_bitmap(out: &mut Vec<u8>, bits: impl Iterator<Item = bool>) {
    let mut byte = 0u8;
    let mut filled = 0u32;
    for bit in bits {
        byte |= u8::from(bit) << filled;
        filled += 1;
        if filled == 8 {
            out.push(byte);
            byte = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        out.push(byte);
    }
}

/// Bounded cursor over the checkpoint bytes; every read is
/// length-checked so truncation surfaces as `Err`, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn read(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(format!("truncated at byte {} (wanted {n} more)", self.at)),
        }
    }

    fn read_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.read(4)?.try_into().expect("read checked the length")))
    }

    fn read_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.read(8)?.try_into().expect("read checked the length")))
    }
}

/// Parse and validate an `IPCK` byte image.
pub(crate) fn decode_checkpoint<V: Persist, M: Persist>(
    bytes: &[u8],
) -> Result<ResumeState<V, M>, String> {
    if bytes.len() < 8 {
        return Err("file shorter than its checksum".into());
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(format!("checksum mismatch (stored {stored:#x}, computed {computed:#x})"));
    }
    let mut c = Cursor { bytes: payload, at: 0 };
    if c.read(4)? != MAGIC {
        return Err("bad magic (not an IPCK checkpoint)".into());
    }
    let format = c.read_u32()?;
    if format != FORMAT {
        return Err(format!("unsupported checkpoint format {format}"));
    }
    let superstep = c.read_u64()? as usize;
    let slots = usize::try_from(c.read_u64()?).map_err(|_| "slot count overflows".to_string())?;
    let value_bytes = c.read_u32()? as usize;
    let msg_bytes = c.read_u32()? as usize;
    if value_bytes != V::BYTES || msg_bytes != M::BYTES {
        return Err(format!(
            "layout mismatch: file has {value_bytes}-byte values / {msg_bytes}-byte messages, \
             program expects {} / {}",
            V::BYTES,
            M::BYTES
        ));
    }
    let history_len = c.read_u64()? as usize;
    // The checksum already vouches for internal consistency; this bound
    // only stops a *validly-checksummed but hostile* file from forcing
    // a huge allocation before the per-element reads would fail.
    if history_len > payload.len() / 16 {
        return Err("history length exceeds file size".into());
    }
    let mut history = Vec::with_capacity(history_len);
    for _ in 0..history_len {
        history.push((c.read_u64()?, c.read_u64()?));
    }
    if slots > payload.len() / V::BYTES.max(1) {
        return Err("slot count exceeds file size".into());
    }
    let mut values = Vec::with_capacity(slots);
    for _ in 0..slots {
        values.push(V::decode(c.read(V::BYTES)?));
    }
    let halted = read_bitmap(&mut c, slots)?;
    let present_bits = read_bitmap(&mut c, slots)?;
    let present = c.read_u64()? as usize;
    if present != present_bits.iter().filter(|&&b| b).count() {
        return Err("present-message count disagrees with the inbox bitmap".into());
    }
    let mut inbox = Vec::with_capacity(slots);
    for &has in &present_bits {
        inbox.push(if has { Some(M::decode(c.read(M::BYTES)?)) } else { None });
    }
    if c.at != payload.len() {
        return Err(format!("{} trailing bytes after the inbox", payload.len() - c.at));
    }
    Ok(ResumeState { superstep, values, halted, inbox, history })
}

fn read_bitmap(c: &mut Cursor<'_>, bits: usize) -> Result<Vec<bool>, String> {
    let bytes = c.read(bits.div_ceil(8))?;
    Ok((0..bits).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
}

/// The newest checkpoint in `dir` that passes validation, if any.
/// Unreadable or corrupt files are skipped, so a torn final write falls
/// back to the previous checkpoint instead of killing the resume.
fn latest_valid<V: Persist, M: Persist>(dir: &Path) -> Option<ResumeState<V, M>> {
    let mut candidates: Vec<(usize, PathBuf)> = fs::read_dir(dir)
        .ok()?
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            let name = path.file_name()?.to_str()?;
            let superstep =
                name.strip_prefix("ckpt-")?.strip_suffix(".ipck")?.parse::<usize>().ok()?;
            Some((superstep, path))
        })
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    candidates
        .into_iter()
        .find_map(|(_, path)| decode_checkpoint(&fs::read(path).ok()?).ok())
}

/// Run `program` under `version` with checkpointing per `ckpt`.
///
/// The convenience entry point tying the pieces together: builds a
/// [`DiskCheckpointer`] (restoring the newest valid checkpoint when
/// `ckpt.resume` is set) and dispatches to the fallible engine for
/// `version`. Requires persistable state; for programs with
/// non-[`Persist`] values run the fallible engines directly via
/// [`crate::version::try_run`] — deadline and panic isolation work
/// without persistence.
///
/// # Panics
/// For [`crate::version::CombinerKind::LockFree`], whose packed-message bound cannot be
/// expressed here — use [`run_packed_with_checkpoints`].
pub fn run_with_checkpoints<P>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
    ckpt: &CheckpointConfig,
) -> RunResult<P::Value>
where
    P: VertexProgram,
    P::Value: Persist,
    P::Message: Persist,
{
    let restore_t0 = std::time::Instant::now();
    let mut hooks = DiskCheckpointer::<P::Value, P::Message>::open(ckpt)?;
    if ckpt.resume {
        // `open` just read, decoded and checksum-verified the snapshot.
        crate::trace::emit_sync(config.trace.as_deref(), || crate::trace::TraceEvent::CheckpointRestore {
            superstep: hooks.resume_floor.unwrap_or(0) as u64,
            duration_ns: crate::trace::ns(restore_t0.elapsed()),
        });
    }
    crate::version::try_run_recoverable(graph, program, version, config, Some(&mut hooks))
}

/// Like [`run_with_checkpoints`], additionally supporting
/// [`crate::version::CombinerKind::LockFree`].
pub fn run_packed_with_checkpoints<P>(
    graph: &Graph,
    program: &P,
    version: Version,
    config: &RunConfig,
    ckpt: &CheckpointConfig,
) -> RunResult<P::Value>
where
    P: VertexProgram,
    P::Value: Persist,
    P::Message: Persist + PackMessage,
{
    let restore_t0 = std::time::Instant::now();
    let mut hooks = DiskCheckpointer::<P::Value, P::Message>::open(ckpt)?;
    if ckpt.resume {
        // `open` just read, decoded and checksum-verified the snapshot.
        crate::trace::emit_sync(config.trace.as_deref(), || crate::trace::TraceEvent::CheckpointRestore {
            superstep: hooks.resume_floor.unwrap_or(0) as u64,
            duration_ns: crate::trace::ns(restore_t0.elapsed()),
        });
    }
    crate::version::try_run_packed_recoverable(graph, program, version, config, Some(&mut hooks))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    type SampleState = (usize, Vec<u32>, Vec<bool>, Vec<Option<u32>>, Vec<(u64, u64)>);

    fn sample_state() -> SampleState {
        let slots = 21; // deliberately not a multiple of 8
        let values: Vec<u32> = (0..slots as u32).map(|v| v * 3 + 1).collect();
        let halted: Vec<bool> = (0..slots).map(|v| v % 3 == 0).collect();
        let inbox: Vec<Option<u32>> =
            (0..slots as u32).map(|v| (v % 4 == 1).then_some(v * 7)).collect();
        let history = vec![(21, 40), (13, 22), (5, 9)];
        (slots, values, halted, inbox, history)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (_, values, halted, inbox, history) = sample_state();
        let bytes = encode_checkpoint(3, &values, &halted, &inbox, &history);
        let state: ResumeState<u32, u32> = decode_checkpoint(&bytes).expect("valid image");
        assert_eq!(state.superstep, 3);
        assert_eq!(state.values, values);
        assert_eq!(state.halted, halted);
        assert_eq!(state.inbox, inbox);
        assert_eq!(state.history, history);
    }

    #[test]
    fn f64_values_round_trip_bitwise() {
        let values = vec![0.15, 1.0 / 3.0, f64::MIN_POSITIVE, -0.0, 1e300];
        let halted = vec![false; 5];
        let inbox: Vec<Option<f64>> = vec![Some(0.1 + 0.2), None, Some(-1.5), None, None];
        let bytes = encode_checkpoint(1, &values, &halted, &inbox, &[]);
        let state: ResumeState<f64, f64> = decode_checkpoint(&bytes).expect("valid image");
        for (a, b) in state.values.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(state.inbox[0].unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn every_truncation_is_detected() {
        let (_, values, halted, inbox, history) = sample_state();
        let bytes = encode_checkpoint(3, &values, &halted, &inbox, &history);
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint::<u32, u32>(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let (_, values, halted, inbox, history) = sample_state();
        let bytes = encode_checkpoint(3, &values, &halted, &inbox, &history);
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x40;
            assert!(
                decode_checkpoint::<u32, u32>(&mutated).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let bytes = encode_checkpoint::<u32, u32>(0, &[1, 2], &[false, true], &[None, Some(9)], &[]);
        let err = decode_checkpoint::<u64, u32>(&bytes).unwrap_err();
        assert!(err.contains("layout mismatch"), "{err}");
    }

    #[test]
    fn disk_round_trip_and_fallback_past_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "ipregel-recover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cfg = CheckpointConfig::new(&dir, 2);
        let mut ck = DiskCheckpointer::<u32, u32>::open(&cfg).expect("open");
        assert!(!ck.due(0), "superstep 0 is the initial state, not worth a file");
        assert!(!ck.due(1));
        assert!(ck.due(2));

        let (_, values, halted, inbox, history) = sample_state();
        ck.save(2, &values, &halted, &inbox, &history[..1]).expect("save 2");
        ck.save(4, &values, &halted, &inbox, &history).expect("save 4");

        // Newest wins.
        let state = latest_valid::<u32, u32>(&dir).expect("resumable");
        assert_eq!(state.superstep, 4);
        assert_eq!(state.history.len(), history.len());

        // Corrupt the newest: resume falls back to superstep 2.
        let newest = dir.join("ckpt-00000004.ipck");
        let mut bytes = fs::read(&newest).expect("read newest");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).expect("corrupt newest");
        let state = latest_valid::<u32, u32>(&dir).expect("fallback");
        assert_eq!(state.superstep, 2);
        assert_eq!(state.history.len(), 1);

        // A resuming checkpointer hands the state out exactly once and
        // refuses to immediately re-save its own floor.
        let mut resumed = DiskCheckpointer::<u32, u32>::open(&cfg.clone().resuming()).expect("open");
        assert!(!resumed.due(2), "must not rewrite the checkpoint it resumed from");
        assert!(resumed.due(4));
        let state = resumed.take_resume().expect("state pending");
        assert_eq!(state.superstep, 2);
        assert!(resumed.take_resume().is_none());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_empty_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!(
            "ipregel-recover-empty-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cfg = CheckpointConfig::new(&dir, 1).resuming();
        match DiskCheckpointer::<u32, u32>::open(&cfg) {
            Err(RunError::Resume(why)) => assert!(why.contains("no valid checkpoint"), "{why}"),
            other => panic!("expected Resume error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_disabled_never_saves() {
        let dir = std::env::temp_dir().join(format!(
            "ipregel-recover-never-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let ck = DiskCheckpointer::<u32, u32>::open(&CheckpointConfig::new(&dir, 0)).expect("open");
        for s in 0..64 {
            assert!(!ck.due(s));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_primitives_round_trip() {
        fn check<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), T::BYTES);
            assert_eq!(T::decode(&buf), v);
        }
        check(0xdead_beefu32);
        check(u64::MAX - 1);
        check(-123i64);
        check(1.5f32);
        check(0.15f64);
        check(true);
        check(false);
        check((7u32, 9u32));
    }

    #[test]
    fn hooks_are_object_safe_and_dyn_usable() {
        struct Never;
        impl RecoveryHooks<u32, u32> for Never {
            fn take_resume(&mut self) -> Option<ResumeState<u32, u32>> {
                None
            }
            fn due(&self, _superstep: usize) -> bool {
                false
            }
            fn save(
                &mut self,
                _superstep: usize,
                _values: &[u32],
                _halted: &[bool],
                _inbox: &[Option<u32>],
                _history: &[(u64, u64)],
            ) -> io::Result<()> {
                Ok(())
            }
        }
        let mut n = Never;
        let dyn_hooks: DynHooks<'_, u32, u32> = &mut n;
        assert!(!dyn_hooks.due(8));
    }
}
