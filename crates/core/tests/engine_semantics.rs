//! Engine-semantics integration tests: BSP delivery, halting and
//! reactivation, bypass/scan equivalence, the Figure 3 API contract.

use ipregel::{
    run, run_packed, CombinerKind, Context, MasterDecision, RunConfig, Version, VertexProgram,
};
use ipregel_graph::{GraphBuilder, NeighborMode, VertexId};

fn graph(edges: &[(u32, u32)]) -> ipregel_graph::Graph {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().unwrap()
}

/// Forwards a token down a path, recording the superstep of arrival —
/// checks that messages sent in superstep s arrive exactly in s+1.
struct TokenRelay;

impl VertexProgram for TokenRelay {
    type Value = u32; // superstep at which the token arrived (MAX = never)
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        u32::MAX
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        if ctx.is_first_superstep() && ctx.id() == 0 {
            *value = 0;
            ctx.broadcast(1);
        } else if let Some(hop) = ctx.next_message() {
            if *value == u32::MAX {
                *value = ctx.superstep() as u32;
                assert_eq!(hop, *value, "token hop count must equal arrival superstep");
                ctx.broadcast(hop + 1);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

#[test]
fn bsp_delivery_is_one_superstep_later() {
    let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
    for v in Version::paper_versions() {
        let out = run(&g, &TokenRelay, v, &RunConfig::default());
        for id in 0..5u32 {
            assert_eq!(*out.value_of(id), id, "version {}", v.label());
        }
    }
}

/// Votes to halt immediately and never sends: the run must terminate
/// after superstep 0 (plus the empty follow-up check).
struct HaltImmediately;

impl VertexProgram for HaltImmediately {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        0
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        *value += 1;
        ctx.vote_to_halt();
    }

    fn combine(_old: &mut u32, _new: u32) {}
}

#[test]
fn quiescence_terminates_the_run() {
    let g = graph(&[(0, 1), (1, 0)]);
    for v in Version::paper_versions() {
        let out = run(&g, &HaltImmediately, v, &RunConfig::default());
        assert_eq!(out.stats.num_supersteps(), 1, "version {}", v.label());
        assert_eq!(*out.value_of(0), 1);
        assert_eq!(*out.value_of(1), 1);
    }
}

/// Never votes to halt: must keep running until the superstep cap.
struct NeverHalts;

impl VertexProgram for NeverHalts {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId) -> u64 {
        0
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, _ctx: &mut C) {
        *value += 1;
    }

    fn combine(_old: &mut u64, _new: u64) {}
}

#[test]
fn max_supersteps_caps_a_divergent_program() {
    let g = graph(&[(0, 1)]);
    let cfg = RunConfig { max_supersteps: Some(7), ..RunConfig::default() };
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(&g, &NeverHalts, Version { combiner, selection_bypass: false }, &cfg);
        assert_eq!(out.stats.num_supersteps(), 7, "{combiner:?}");
        assert_eq!(*out.value_of(0), 7);
    }
}

/// Halted vertices are reactivated by incoming messages (Pregel
/// semantics): vertex 1 halts at superstep 0, vertex 0 pings it at
/// superstep 1, vertex 1 must run again.
struct PingAfterHalt;

impl VertexProgram for PingAfterHalt {
    type Value = u32; // times executed
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        0
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        *value += 1;
        while ctx.next_message().is_some() {}
        if ctx.id() == 0 {
            if ctx.superstep() < 2 {
                // Stay active without sending; send the ping at superstep 1.
                if ctx.superstep() == 1 {
                    ctx.broadcast(1);
                }
            } else {
                ctx.vote_to_halt();
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(old: &mut u32, new: u32) {
        *old += new;
    }
}

#[test]
fn message_reactivates_halted_vertex() {
    let g = graph(&[(0, 1)]);
    // Scan selection only: reactivation-without-halt-everywhere is
    // exactly the pattern the bypass excludes (Section 4's note).
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(&g, &PingAfterHalt, Version { combiner, selection_bypass: false }, &RunConfig::default());
        // vertex 1 runs at superstep 0 (initially active) and again at
        // superstep 2 (ping reception).
        assert_eq!(*out.value_of(1), 2, "{combiner:?}");
    }
}

/// master_compute can stop the run early.
struct StopAtThree;

impl VertexProgram for StopAtThree {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        0
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, _ctx: &mut C) {
        *value += 1;
    }

    fn combine(_old: &mut u32, _new: u32) {}

    fn master_compute(&self, superstep: usize, values: &[u32]) -> MasterDecision {
        assert!(!values.is_empty());
        if superstep >= 2 {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }
}

#[test]
fn master_compute_halts_early() {
    let g = graph(&[(0, 1)]);
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(&g, &StopAtThree, Version { combiner, selection_bypass: false }, &RunConfig::default());
        assert_eq!(out.stats.num_supersteps(), 3, "{combiner:?}");
    }
}

/// Min-plurality flood program used for cross-version equivalence and the
/// lock-free ablation: every vertex floods its id+superstep pattern.
struct MinFlood;

impl VertexProgram for MinFlood {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        u32::MAX
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        let mut best = ctx.id();
        while let Some(m) = ctx.next_message() {
            best = best.min(m);
        }
        if best < *value {
            *value = best;
            ctx.broadcast(best);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

#[test]
fn lock_free_mailbox_matches_locked_versions() {
    let g = graph(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2), (4, 3)]);
    let reference = run(
        &g,
        &MinFlood,
        Version { combiner: CombinerKind::Mutex, selection_bypass: false },
        &RunConfig::default(),
    );
    for bypass in [false, true] {
        let out = run_packed(
            &g,
            &MinFlood,
            Version { combiner: CombinerKind::LockFree, selection_bypass: bypass },
            &RunConfig::default(),
        );
        assert_eq!(out.values, reference.values, "bypass={bypass}");
    }
}

#[test]
fn run_rejects_lock_free_without_packing_entry() {
    let g = graph(&[(0, 1)]);
    let result = std::panic::catch_unwind(|| {
        run(&g, &MinFlood, Version { combiner: CombinerKind::LockFree, selection_bypass: false }, &RunConfig::default())
    });
    assert!(result.is_err(), "run() must direct LockFree users to run_packed");
}

#[test]
fn thread_count_does_not_change_results() {
    let edges: Vec<(u32, u32)> = (0..200u32).map(|i| (i, (i * 7 + 3) % 200)).collect();
    let g = graph(&edges);
    let base = run(
        &g,
        &MinFlood,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig { threads: Some(1), ..RunConfig::default() },
    );
    for threads in [2, 4, 8] {
        for v in Version::paper_versions() {
            let out = run(&g, &MinFlood, v, &RunConfig { threads: Some(threads), ..RunConfig::default() });
            assert_eq!(out.values, base.values, "threads={threads} version={}", v.label());
        }
    }
}

#[test]
fn message_counts_match_across_selection_strategies() {
    // Bypass changes *selection*, not communication: total messages must
    // be identical with and without it.
    let edges: Vec<(u32, u32)> = (0..64u32).flat_map(|i| [(i, (i + 1) % 64), ((i + 1) % 64, i)]).collect();
    let g = graph(&edges);
    let scan = run(
        &g,
        &MinFlood,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    let bypass = run(
        &g,
        &MinFlood,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    assert_eq!(scan.stats.total_messages(), bypass.stats.total_messages());
    assert_eq!(scan.values, bypass.values);
}

#[test]
fn bypass_executes_fewer_vertices_on_sparse_activity() {
    // A long path flooded from one end: scan touches every vertex every
    // superstep, bypass runs only the frontier — Section 4's whole point.
    let n = 400u32;
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let g = graph(&edges);
    struct SourceFlood;
    impl VertexProgram for SourceFlood {
        type Value = u32;
        type Message = u32;
        fn initial_value(&self, _id: VertexId) -> u32 {
            u32::MAX
        }
        fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
            let mut best = if ctx.id() == 0 { 0 } else { u32::MAX };
            while let Some(m) = ctx.next_message() {
                best = best.min(m);
            }
            if best < *value {
                *value = best;
                ctx.broadcast(best + 1);
            }
            ctx.vote_to_halt();
        }
        fn combine(old: &mut u32, new: u32) {
            if new < *old {
                *old = new;
            }
        }
    }
    let scan = run(
        &g,
        &SourceFlood,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    let bypass = run(
        &g,
        &SourceFlood,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
        &RunConfig::default(),
    );
    assert_eq!(scan.values, bypass.values);
    // Scan: first superstep runs all n; afterwards only the frontier has
    // messages but the scan still runs them one per superstep → n + (n-1)
    // executions. Bypass: n + (n-1) too for executions, BUT scan-mode
    // executions are a lower bound on its *checks*. The measurable
    // difference in executions appears because scan keeps non-halted
    // vertices... both halt every superstep here, so executions are equal
    // and the win is in selection cost (checks), which stats don't count.
    // What must hold: identical executions and messages.
    assert_eq!(scan.stats.total_vertex_executions(), bypass.stats.total_vertex_executions());
}

#[test]
fn footprints_reflect_version_choices() {
    let g = graph(&[(0, 1), (1, 0)]);
    let mutex = run(&g, &MinFlood, Version { combiner: CombinerKind::Mutex, selection_bypass: false }, &RunConfig::default());
    let spin = run(&g, &MinFlood, Version { combiner: CombinerKind::Spinlock, selection_bypass: false }, &RunConfig::default());
    let pull = run(&g, &MinFlood, Version { combiner: CombinerKind::Broadcast, selection_bypass: false }, &RunConfig::default());
    let spin_bypass = run(&g, &MinFlood, Version { combiner: CombinerKind::Spinlock, selection_bypass: true }, &RunConfig::default());

    // §6.1: the busy-waiting lock is lighter than the block-waiting one.
    assert!(spin.footprint.lock_bytes < mutex.footprint.lock_bytes);
    // §6.2: the pull combiner has zero data-race protection.
    assert_eq!(pull.footprint.lock_bytes, 0);
    // §4: bypass adds worklist memory.
    assert_eq!(spin.footprint.worklist_bytes, 0);
    assert!(spin_bypass.footprint.worklist_bytes > 0);
    // The graph topology is counted identically everywhere.
    assert_eq!(mutex.footprint.graph_bytes, pull.footprint.graph_bytes);
}

#[test]
fn context_exposes_figure3_queries() {
    struct Probe;
    impl VertexProgram for Probe {
        type Value = (u32, u32, usize, bool);
        type Message = u32;
        fn initial_value(&self, _id: VertexId) -> Self::Value {
            (0, 0, 0, false)
        }
        fn compute<C: Context<Message = u32>>(&self, value: &mut Self::Value, ctx: &mut C) {
            *value = (ctx.id(), ctx.out_degree(), ctx.num_vertices(), ctx.is_first_superstep());
            ctx.vote_to_halt();
        }
        fn combine(_old: &mut u32, _new: u32) {}
    }
    let g = graph(&[(0, 1), (0, 2), (1, 2)]);
    for v in Version::paper_versions() {
        let out = run(&g, &Probe, v, &RunConfig::default());
        assert_eq!(*out.value_of(0), (0, 2, 3, true), "{}", v.label());
        assert_eq!(*out.value_of(1), (1, 1, 3, true));
        assert_eq!(*out.value_of(2), (2, 0, 3, true));
    }
}

#[test]
fn pull_engine_rejects_point_to_point_send() {
    struct Sender;
    impl VertexProgram for Sender {
        type Value = u32;
        type Message = u32;
        fn initial_value(&self, _id: VertexId) -> u32 {
            0
        }
        fn compute<C: Context<Message = u32>>(&self, _value: &mut u32, ctx: &mut C) {
            ctx.send(0, 1);
        }
        fn combine(_old: &mut u32, _new: u32) {}
    }
    let g = graph(&[(0, 1)]);
    let result = std::panic::catch_unwind(|| {
        run(&g, &Sender, Version { combiner: CombinerKind::Broadcast, selection_bypass: false }, &RunConfig { threads: Some(1), ..RunConfig::default() })
    });
    assert!(result.is_err());
}

#[test]
fn one_based_graphs_run_on_desolate_memory() {
    // The paper's datasets are 1-based and run under desolate memory;
    // engines must skip the dead slot everywhere.
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(3, 1);
    let g = b.build().unwrap();
    assert_eq!(g.num_slots(), g.num_vertices() + 1);
    for v in Version::paper_versions() {
        let out = run(&g, &MinFlood, v, &RunConfig::default());
        assert_eq!(*out.value_of(1), 1, "{}", v.label());
        assert_eq!(*out.value_of(2), 1);
        assert_eq!(*out.value_of(3), 1);
        // Every superstep ran exactly the live vertices at most.
        assert!(out.stats.peak_active() <= 3);
    }
}
