//! Loom model checking of the concurrency core.
//!
//! Run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ipregel --test loom --release
//! ```
//!
//! Under `--cfg loom` the `ipregel::sync` shim swaps std's atomics,
//! mutexes, and cells for loom's instrumented doubles, and each
//! `loom::model` block below exhaustively explores the thread
//! interleavings (and the release/acquire visibility choices) of one
//! protocol the engines rely on:
//!
//! 1. spinlock mutual exclusion + release/acquire visibility;
//! 2. –4. the mailbox empty→occupied transition for each implementation
//!    — exactly one deliverer observes "was empty", which is what makes
//!    the §4 selection bypass enqueue exactly once;
//! 5. lock-free combining never loses a delivery (CAS retry loop);
//! 6. –7. worklist shard handoff: worker-exclusive pushes during the
//!    parallel region become orchestrator-exclusive reads after join
//!    (the superstep barrier), plus the mutex fallback path.
//! 8. –9. the work-stealing pool's queues (`ipregel_par::deque`): an
//!    owner pushing/popping LIFO races a thief stealing FIFO and every
//!    job surfaces exactly once; a full deque spilling into the
//!    overflow injector hands the job over without losing it.
//! 10. the pool's sleep protocol (`pool.rs`, "Sleep protocol"): a
//!     pusher that publishes a job then reads the sleeper count races a
//!     sleeper that registers then re-scans with the lock-taking pops —
//!     in every interleaving at least one side observes the other, so
//!     no wakeup is lost.
//!
//! Keep each model at 2–3 threads: loom's state space is exponential in
//! preemption points, and these protocols show all their behaviours
//! with two contenders.
#![cfg(loom)]

use ipregel::mailbox::{AtomicMailbox, Mailbox, MutexMailbox, SpinMailbox};
use ipregel::selection::Worklist;
use ipregel::sync::cell::UnsafeCell;
use ipregel::SpinLock;
use loom::sync::Arc;
use loom::thread;

fn min32(old: &mut u32, new: u32) {
    if new < *old {
        *old = new;
    }
}

fn add32(old: &mut u32, new: u32) {
    *old = old.wrapping_add(new);
}

/// Model 1: two threads increment non-atomic shared state under the
/// spinlock. Loom verifies both mutual exclusion (the tracked cell
/// never sees concurrent access) and that the release store in the
/// guard's drop publishes the first increment to the second thread.
#[test]
fn spinlock_mutual_exclusion_and_visibility() {
    loom::model(|| {
        let shared = Arc::new((SpinLock::new(), UnsafeCell::new(0u32)));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || {
                    let _guard = sh.0.lock();
                    // SAFETY: the spinlock is held; loom fails the model
                    // if any interleaving lets two threads get here at
                    // once.
                    sh.1.with_mut(|p| unsafe { *p += 1 });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: both threads joined; this is the only live access.
        let total = shared.1.with(|p| unsafe { *p });
        assert_eq!(total, 2, "an increment was lost: mutual exclusion or visibility broken");
    });
}

/// Models 2–4: the empty→occupied transition. Two concurrent deliveries
/// into one mailbox — exactly one may observe the empty mailbox (the
/// selection bypass's enqueue-once signal), and the survivor value must
/// be the combine of both messages, whatever the interleaving.
fn first_delivery_is_exactly_once<MB>()
where
    MB: Mailbox<u32> + 'static,
{
    loom::model(|| {
        let mb = Arc::new(MB::empty());
        let handles: Vec<_> = [3u32, 5]
            .into_iter()
            .map(|m| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || u32::from(mb.deliver(m, min32)))
            })
            .collect();
        let firsts: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(firsts, 1, "the empty→occupied transition must be observed exactly once");
        assert!(mb.has_message());
        assert_eq!(mb.take(), Some(3), "min-combine must survive both deliveries");
        assert_eq!(mb.take(), None);
    });
}

#[test]
fn mutex_mailbox_first_delivery_is_exactly_once() {
    first_delivery_is_exactly_once::<MutexMailbox<u32>>();
}

#[test]
fn spin_mailbox_first_delivery_is_exactly_once() {
    first_delivery_is_exactly_once::<SpinMailbox<u32>>();
}

#[test]
fn atomic_mailbox_first_delivery_is_exactly_once() {
    first_delivery_is_exactly_once::<AtomicMailbox<u32>>();
}

/// Model 5: the lock-free CAS loop must never lose a delivery — a
/// failed `compare_exchange_weak` re-reads and re-combines. Sum
/// combining makes a lost update visible as a wrong total.
#[test]
fn atomic_mailbox_combining_loses_nothing() {
    loom::model(|| {
        let mb = Arc::new(<AtomicMailbox<u32> as Mailbox<u32>>::empty());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    mb.deliver(1, add32);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mb.take(), Some(2), "a CAS-combined delivery was lost");
    });
}

/// Model 6: the superstep shard handoff. During the "parallel region"
/// each model thread owns its shard exclusively; after join (the
/// engines' barrier) the orchestrator drains and clears. Loom's cell
/// tracking proves the pushes never alias and the join makes them
/// visible to the drain.
#[test]
fn worklist_shard_handoff_across_barrier() {
    loom::model(|| {
        let wl = Arc::new(Worklist::with_shards(8, 2));
        let h0 = {
            let wl = Arc::clone(&wl);
            // SAFETY: shard 0 is touched only by this model thread
            // during the region; the join below is the barrier.
            thread::spawn(move || unsafe { wl.push_to_shard(0, 1) })
        };
        let h1 = {
            let wl = Arc::clone(&wl);
            // SAFETY: shard 1 likewise belongs to this thread alone.
            thread::spawn(move || unsafe { wl.push_to_shard(1, 2) })
        };
        h0.join().unwrap();
        h1.join().unwrap();
        let mut drained = wl.drain_to_vec();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2], "shard pushes must survive the barrier handoff");
        wl.clear();
        assert!(wl.is_empty());
    });
}

/// Model 7: the mutex fallback path (pushes from outside the worker
/// pool). Two non-worker threads race on the fallback mutex; both
/// entries must merge into the drain exactly once.
#[test]
fn worklist_fallback_merges_exactly_once() {
    loom::model(|| {
        let wl = Arc::new(Worklist::with_shards(4, 1));
        let h = {
            let wl = Arc::clone(&wl);
            // Loom threads are not pool workers, so `push` takes the
            // fallback mutex in both threads.
            thread::spawn(move || wl.push(7))
        };
        wl.push(9);
        h.join().unwrap();
        let mut drained = wl.drain_to_vec();
        drained.sort_unstable();
        assert_eq!(drained, vec![7, 9], "fallback entries must merge exactly once");
        wl.clear();
        assert_eq!(wl.len(), 0);
    });
}

/// Model 8: the deque push/steal race. The owner pushes two jobs at the
/// back and pops one LIFO while a thief pops FIFO from the front, in
/// every interleaving loom can produce. Whatever the schedule, each job
/// must surface exactly once — a double-steal or a lost push would show
/// up as a wrong multiset.
#[test]
fn deque_push_steal_race_delivers_each_job_exactly_once() {
    use ipregel_par::deque::StealDeque;
    loom::model(|| {
        let d = Arc::new(StealDeque::new(4));
        let thief = {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Some(v) = d.pop_front() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let mut got = Vec::new();
        d.push_back(1u32).expect("capacity 4 cannot overflow here");
        d.push_back(2u32).expect("capacity 4 cannot overflow here");
        if let Some(v) = d.pop_back() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        // Whatever the race left behind is still in the deque.
        while let Some(v) = d.pop_front() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "every job exactly once, none lost, none duplicated");
    });
}

/// Model 9: the overflow handoff. A capacity-1 deque rejects the second
/// push, which the owner routes to the injector (exactly what
/// `PoolInner::push` does on a full deque); a thief scans deque first,
/// injector second (the `find_job` order). No interleaving may lose the
/// spilled job or deliver either job twice.
#[test]
fn overflow_handoff_loses_no_jobs() {
    use ipregel_par::deque::{Injector, StealDeque};
    loom::model(|| {
        let d = Arc::new(StealDeque::new(1));
        let inj = Arc::new(Injector::new());
        let owner = {
            let d = Arc::clone(&d);
            let inj = Arc::clone(&inj);
            thread::spawn(move || {
                for j in [1u32, 2] {
                    if let Err(j) = d.push_back(j) {
                        inj.push(j);
                    }
                }
            })
        };
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Some(v) = d.pop_front() {
                got.push(v);
            } else if let Some(v) = inj.pop_front() {
                got.push(v);
            }
        }
        owner.join().unwrap();
        while let Some(v) = d.pop_front() {
            got.push(v);
        }
        while let Some(v) = inj.pop_front() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "the spilled job must survive the handoff");
    });
}

/// Model 10: the pool's sleep protocol (`pool.rs`, "Sleep protocol"),
/// reduced to its two racing halves. The pusher publishes a job into a
/// queue (under that queue's mutex) and then reads the sleeper count
/// with a relaxed load — if non-zero it would notify. The sleeper
/// increments the count (relaxed) and then re-scans the queue with the
/// lock-taking pop — if it finds the job it never parks. The queue
/// mutex is the only happens-before edge between the two: whichever
/// critical section runs first carries the other side's write across
/// (increment → scan-unlock ≺ push-lock → count-read, or push ≺ pop).
/// Losing *both* — pusher reads 0 AND sleeper pops nothing — is the
/// lost wakeup that parks the pool with a job queued. This is exactly
/// why the registered re-scan must use `pop_front_locked` and friends:
/// the `is_empty_hint` fast path returns "empty" from a relaxed load
/// with no lock, the mutex edge vanishes, and the store-buffering
/// interleaving (both sides miss) becomes reachable.
#[test]
fn sleep_protocol_never_loses_the_wakeup() {
    use ipregel_par::deque::Injector;
    use loom::sync::atomic::{AtomicUsize, Ordering};
    loom::model(|| {
        let queue = Arc::new(Injector::new());
        let sleepers = Arc::new(AtomicUsize::new(0));
        let pusher = {
            let queue = Arc::clone(&queue);
            let sleepers = Arc::clone(&sleepers);
            thread::spawn(move || {
                queue.push(1u32);
                // ordering(Relaxed): the protocol's actual ordering —
                // visibility must come from the queue mutex, not from
                // this load.
                sleepers.load(Ordering::Relaxed) > 0
            })
        };
        // ordering(Relaxed): registration, as in `worker_loop`.
        sleepers.fetch_add(1, Ordering::Relaxed);
        let found = queue.pop_front_locked().is_some();
        let would_notify = pusher.join().unwrap();
        assert!(
            found || would_notify,
            "lost wakeup: job queued, sleeper parked, pusher saw no sleeper"
        );
    });
}
