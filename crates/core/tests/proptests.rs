//! Property tests over the framework's concurrency primitives.

use ipregel::mailbox::{AtomicMailbox, Mailbox, MutexMailbox, PackMessage, SpinMailbox};
use ipregel::selection::{EpochTags, Worklist};
use proptest::prelude::*;
use ipregel_par::prelude::*;

fn min32(old: &mut u32, new: u32) {
    if new < *old {
        *old = new;
    }
}

fn add32(old: &mut u32, new: u32) {
    *old = old.wrapping_add(new);
}

/// Sequential oracle for a delivery sequence: (min, wrapping sum, count).
fn oracle(values: &[u32]) -> (Option<u32>, Option<u32>) {
    if values.is_empty() {
        return (None, None);
    }
    let min = values.iter().copied().min();
    let sum = values.iter().copied().fold(0u32, u32::wrapping_add);
    (min, Some(sum))
}

fn check_sequential_delivery<MB: Mailbox<u32>>(values: &[u32]) {
    let (expect_min, expect_sum) = oracle(values);

    let mb = MB::empty();
    let mut firsts = 0;
    for &v in values {
        firsts += u32::from(mb.deliver(v, min32));
    }
    assert_eq!(mb.take(), expect_min);
    assert_eq!(firsts, u32::from(!values.is_empty()), "exactly one first delivery");

    let mb = MB::empty();
    for &v in values {
        mb.deliver(v, add32);
    }
    assert_eq!(mb.take(), expect_sum);
    assert_eq!(mb.take(), None, "take drains");
}

fn check_parallel_delivery<MB: Mailbox<u32>>(values: &[u32]) {
    let (expect_min, _) = oracle(values);
    let mb = MB::empty();
    let firsts: u32 = values.par_iter().map(|&v| u32::from(mb.deliver(v, min32))).sum();
    assert_eq!(mb.take(), expect_min);
    if !values.is_empty() {
        assert_eq!(firsts, 1, "exactly one concurrent first delivery");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn mutex_mailbox_folds_like_a_sequence(values in prop::collection::vec(1u32..u32::MAX, 0..200)) {
        check_sequential_delivery::<MutexMailbox<u32>>(&values);
        check_parallel_delivery::<MutexMailbox<u32>>(&values);
    }

    #[test]
    fn spin_mailbox_folds_like_a_sequence(values in prop::collection::vec(1u32..u32::MAX, 0..200)) {
        check_sequential_delivery::<SpinMailbox<u32>>(&values);
        check_parallel_delivery::<SpinMailbox<u32>>(&values);
    }

    #[test]
    fn atomic_mailbox_folds_like_a_sequence(values in prop::collection::vec(1u32..u32::MAX, 0..200)) {
        check_sequential_delivery::<AtomicMailbox<u32>>(&values);
        check_parallel_delivery::<AtomicMailbox<u32>>(&values);
    }

    #[test]
    fn pack_message_round_trips_u32(v in any::<u32>()) {
        prop_assert_eq!(u32::unpack(v.pack()), v);
    }

    #[test]
    fn pack_message_round_trips_f64(v in any::<f64>().prop_filter("sentinel NaN", |x| x.to_bits() != u64::MAX)) {
        let back = f64::unpack(v.pack());
        if v.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back, v);
        }
    }

    #[test]
    fn pack_message_round_trips_pairs(a in any::<u32>(), b in any::<u32>()) {
        prop_assume!(!(a == u32::MAX && b == u32::MAX));
        prop_assert_eq!(<(u32, u32)>::unpack((a, b).pack()), (a, b));
    }

    #[test]
    fn worklist_collects_exactly_the_pushes(items in prop::collection::vec(0u32..100_000, 0..2000)) {
        let wl = Worklist::new(items.len().max(1));
        items.par_iter().for_each(|&v| wl.push(v));
        let mut got = wl.drain_to_vec();
        let mut expect = items.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        wl.clear();
        prop_assert!(wl.is_empty());
    }

    #[test]
    fn epoch_tags_admit_one_winner_per_vertex_epoch(
        slots in 1usize..64,
        epochs in 1u32..8,
        attempts in 2usize..32,
    ) {
        let tags = EpochTags::new(slots);
        for epoch in 1..=epochs {
            for v in 0..slots as u32 {
                let winners: usize = (0..attempts)
                    .into_par_iter()
                    .map(|_| usize::from(tags.claim(v, epoch)))
                    .sum();
                prop_assert_eq!(winners, 1, "slot {} epoch {}", v, epoch);
            }
        }
    }
}
