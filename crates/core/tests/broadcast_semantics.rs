//! Broadcast/send semantics details: repeated broadcasts within one
//! compute call, mixing send with broadcast, and message accounting.

use ipregel::{run, CombinerKind, Context, RunConfig, Version, VertexProgram};
use ipregel_graph::{GraphBuilder, NeighborMode, VertexId};

/// Broadcasts twice in one compute call; receivers must see the
/// *combined* value (the outbox/mailbox combines, §6.3), not two
/// messages or the last one.
struct DoubleBroadcast;

impl VertexProgram for DoubleBroadcast {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId) -> u64 {
        0
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
        while let Some(m) = ctx.next_message() {
            *value += m;
        }
        if ctx.is_first_superstep() {
            ctx.broadcast(5);
            ctx.broadcast(7);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u64, new: u64) {
        *old += new;
    }
}

#[test]
fn double_broadcast_combines_per_recipient() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    b.add_edge(0, 2);
    let g = b.build().unwrap();
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(
            &g,
            &DoubleBroadcast,
            Version { combiner, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(1), 12, "{combiner:?}");
        assert_eq!(*out.value_of(2), 12, "{combiner:?}");
    }
}

/// Mixes point-to-point sends with a broadcast in one compute call
/// (push engines only).
struct MixedSends;

impl VertexProgram for MixedSends {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId) -> u64 {
        0
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
        while let Some(m) = ctx.next_message() {
            *value += m;
        }
        if ctx.is_first_superstep() && ctx.id() == 0 {
            ctx.broadcast(1); // neighbours: 1 and 2
            ctx.send(2, 10); // extra direct send combines on top
            ctx.send(0, 100); // self-send
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u64, new: u64) {
        *old += new;
    }
}

#[test]
fn send_and_broadcast_combine_in_the_same_superstep() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    b.add_edge(0, 2);
    let g = b.build().unwrap();
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock] {
        let out = run(
            &g,
            &MixedSends,
            Version { combiner, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(1), 1, "{combiner:?}");
        assert_eq!(*out.value_of(2), 11, "{combiner:?}");
        assert_eq!(*out.value_of(0), 100, "{combiner:?} self-send");
    }
}

#[test]
fn message_accounting_counts_individual_sends() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    b.add_edge(0, 2);
    let g = b.build().unwrap();
    let out = run(
        &g,
        &MixedSends,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig::default(),
    );
    // broadcast(2 neighbours) + send + self-send = 4 messages at s0.
    assert_eq!(out.stats.supersteps[0].messages_sent, 4);
}

/// Broadcast from a sink (no out-neighbours) is a no-op everywhere.
struct SinkShout;

impl VertexProgram for SinkShout {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId) -> u64 {
        0
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
        while let Some(m) = ctx.next_message() {
            *value += m;
        }
        if ctx.is_first_superstep() {
            ctx.broadcast(1);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u64, new: u64) {
        *old += new;
    }
}

#[test]
fn broadcast_from_a_sink_sends_nothing() {
    // Vertex 1 is a sink; its broadcast must not loop back or crash, and
    // superstep 0 counts exactly vertex 0's one message.
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    let g = b.build().unwrap();
    for v in Version::paper_versions() {
        let out = run(&g, &SinkShout, v, &RunConfig::default());
        assert_eq!(*out.value_of(1), 1, "{}", v.label());
        assert_eq!(*out.value_of(0), 0);
        assert_eq!(out.stats.supersteps[0].messages_sent, 1);
    }
}
