//! Differential property test: the three push-combiner mailboxes are
//! observationally equivalent.
//!
//! The paper's §6.1 synchronisation flavours (block-waiting mutex,
//! busy-waiting spinlock) and our lock-free CAS extension differ only in
//! *how* they protect the single-message slot — for any sequence of
//! deliveries and takes they must produce identical combined values,
//! identical "was empty" signals (the §4 bypass enqueue bit), and
//! identical occupancy flags. Any divergence convicts a mailbox, not the
//! program.

#![cfg(not(loom))]
#![forbid(unsafe_code)]

use ipregel::mailbox::{AtomicMailbox, Mailbox, MutexMailbox, SpinMailbox};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Deliver(u32),
    Take,
    Peek,
}

/// The full observable outcome of applying `ops` to one mailbox kind.
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    /// One entry per Deliver: did it observe the empty mailbox?
    firsts: Vec<bool>,
    /// One entry per Take: the removed (combined) value, if any.
    taken: Vec<Option<u32>>,
    /// One entry per Peek: occupancy at that point.
    occupancy: Vec<bool>,
    /// Whatever remains at the end.
    leftover: Option<u32>,
}

fn apply<MB: Mailbox<u32>>(ops: &[Op], combine: fn(&mut u32, u32)) -> Trace {
    let mb = MB::empty();
    let mut trace = Trace { firsts: vec![], taken: vec![], occupancy: vec![], leftover: None };
    for op in ops {
        match op {
            Op::Deliver(m) => trace.firsts.push(mb.deliver(*m, combine)),
            Op::Take => trace.taken.push(mb.take()),
            Op::Peek => trace.occupancy.push(mb.has_message()),
        }
    }
    trace.leftover = mb.take();
    trace
}

fn min32(old: &mut u32, new: u32) {
    if new < *old {
        *old = new;
    }
}

fn sum32(old: &mut u32, new: u32) {
    *old = old.wrapping_add(new);
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Bias towards deliveries: combining is the interesting path.
        4 => any::<u32>().prop_map(Op::Deliver),
        1 => Just(Op::Take),
        1 => Just(Op::Peek),
    ]
}

// prop_assert_eq! needs a Result-returning context; keep the comparison
// in one helper so both properties share it.
fn check(ops: Vec<Op>, combine: fn(&mut u32, u32)) -> Result<(), TestCaseError> {
    let mutex = apply::<MutexMailbox<u32>>(&ops, combine);
    let spin = apply::<SpinMailbox<u32>>(&ops, combine);
    let atomic = apply::<AtomicMailbox<u32>>(&ops, combine);
    prop_assert_eq!(&mutex, &spin, "mutex vs spin diverged");
    prop_assert_eq!(&mutex, &atomic, "mutex vs atomic diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 8 } else { 256 },
        .. ProptestConfig::default()
    })]

    #[test]
    fn three_mailboxes_agree_under_min_combiner(
        ops in proptest::collection::vec(op_strategy(), 0..64)
    ) {
        check(ops, min32)?;
    }

    #[test]
    fn three_mailboxes_agree_under_sum_combiner(
        ops in proptest::collection::vec(op_strategy(), 0..64)
    ) {
        check(ops, sum32)?;
    }
}

#[test]
fn fixed_sequences_agree() {
    // A deterministic smoke test that runs even when proptest is
    // filtered out (e.g. the curated Miri subset).
    let ops = vec![
        Op::Peek,
        Op::Deliver(9),
        Op::Deliver(3),
        Op::Peek,
        Op::Take,
        Op::Take,
        Op::Deliver(7),
        Op::Deliver(2),
        Op::Deliver(11),
        Op::Peek,
    ];
    for combine in [min32 as fn(&mut u32, u32), sum32] {
        let mutex = apply::<MutexMailbox<u32>>(&ops, combine);
        let spin = apply::<SpinMailbox<u32>>(&ops, combine);
        let atomic = apply::<AtomicMailbox<u32>>(&ops, combine);
        assert_eq!(mutex, spin);
        assert_eq!(mutex, atomic);
    }
}
