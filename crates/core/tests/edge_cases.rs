//! Engine edge cases: degenerate graphs, extreme identifiers, self-loop
//! message semantics, and accounting invariants.

use ipregel::{run, CombinerKind, Context, RunConfig, Version, VertexProgram};
use ipregel_graph::{GraphBuilder, NeighborMode, VertexId};

struct MinFlood;
impl VertexProgram for MinFlood {
    type Value = u32;
    type Message = u32;
    fn initial_value(&self, _id: VertexId) -> u32 {
        u32::MAX
    }
    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        let mut best = ctx.id();
        while let Some(m) = ctx.next_message() {
            best = best.min(m);
        }
        if best < *value {
            *value = best;
            ctx.broadcast(best);
        }
        ctx.vote_to_halt();
    }
    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

#[test]
fn single_vertex_with_self_loop() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 0);
    let g = b.build().unwrap();
    for v in Version::paper_versions() {
        let out = run(&g, &MinFlood, v, &RunConfig::default());
        assert_eq!(*out.value_of(0), 0, "{}", v.label());
        // Superstep 0 broadcasts to itself, superstep 1 receives but
        // cannot improve — quiescence follows.
        assert!(out.stats.num_supersteps() <= 3);
    }
}

#[test]
fn edgeless_vertices_via_declared_range() {
    let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, 100);
    b.add_edge(0, 1);
    let g = b.build().unwrap();
    for v in Version::paper_versions() {
        let out = run(&g, &MinFlood, v, &RunConfig::default());
        assert_eq!(*out.value_of(1), 0);
        for id in 2..100 {
            assert_eq!(*out.value_of(id), id, "{}", v.label());
        }
    }
}

#[test]
fn identifiers_near_u32_max() {
    let base = u32::MAX - 5;
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 0..5u32 {
        b.add_edge(base + i, base + i + 1);
        b.add_edge(base + i + 1, base + i);
    }
    let g = b.build().unwrap();
    assert_eq!(g.num_vertices(), 6);
    for v in Version::paper_versions() {
        let out = run(&g, &MinFlood, v, &RunConfig::default());
        for i in 0..6u32 {
            assert_eq!(*out.value_of(base + i), base, "{}", v.label());
        }
    }
}

#[test]
fn self_loop_messages_arrive_next_superstep() {
    // A vertex that messages itself must see the message one superstep
    // later (BSP), not within the same compute call.
    struct SelfPing;
    impl VertexProgram for SelfPing {
        type Value = Vec<usize>; // supersteps at which a message arrived
        type Message = u32;
        fn initial_value(&self, _id: VertexId) -> Vec<usize> {
            Vec::new()
        }
        fn compute<C: Context<Message = u32>>(&self, value: &mut Vec<usize>, ctx: &mut C) {
            if ctx.next_message().is_some() {
                value.push(ctx.superstep());
            }
            if ctx.superstep() < 3 {
                ctx.broadcast(1);
            } else {
                ctx.vote_to_halt();
            }
        }
        fn combine(old: &mut u32, new: u32) {
            *old += new;
        }
    }
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 0);
    let g = b.build().unwrap();
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(
            &g,
            &SelfPing,
            Version { combiner, selection_bypass: false },
            &RunConfig::default(),
        );
        // Broadcasts at supersteps 0,1,2 arrive at 1,2,3 — one later,
        // never within the sending superstep.
        assert_eq!(*out.value_of(0), vec![1, 2, 3], "{combiner:?}");
    }
}

#[test]
fn zero_value_messages_are_real_messages() {
    // A message whose payload is 0 must still activate its recipient
    // (regression guard against confusing "zero" with "absent").
    struct ZeroPing;
    impl VertexProgram for ZeroPing {
        type Value = bool; // received anything?
        type Message = u32;
        fn initial_value(&self, _id: VertexId) -> bool {
            false
        }
        fn compute<C: Context<Message = u32>>(&self, value: &mut bool, ctx: &mut C) {
            if ctx.next_message().is_some() {
                *value = true;
            }
            if ctx.is_first_superstep() && ctx.id() == 0 {
                ctx.broadcast(0);
            }
            ctx.vote_to_halt();
        }
        fn combine(old: &mut u32, new: u32) {
            *old += new;
        }
    }
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    let g = b.build().unwrap();
    for v in Version::paper_versions() {
        let out = run(&g, &ZeroPing, v, &RunConfig::default());
        assert!(*out.value_of(1), "{}", v.label());
    }
}

#[test]
fn footprint_is_stable_across_runs_and_selection_timing_is_bounded() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    for i in 0..500u32 {
        b.add_edge(i, (i + 1) % 500);
    }
    let g = b.build().unwrap();
    for v in Version::paper_versions() {
        let a = run(&g, &MinFlood, v, &RunConfig::default());
        let b2 = run(&g, &MinFlood, v, &RunConfig::default());
        assert_eq!(a.footprint, b2.footprint, "{}", v.label());
        // Selection time is part of, and cannot exceed, total time.
        assert!(a.stats.total_selection_time() <= a.stats.total_time);
    }
}

#[test]
fn two_vertex_mutual_edges_min_flood() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(7, 8);
    b.add_edge(8, 7);
    let g = b.build().unwrap();
    for v in Version::paper_versions() {
        let out = run(&g, &MinFlood, v, &RunConfig::default());
        assert_eq!(*out.value_of(7), 7);
        assert_eq!(*out.value_of(8), 7);
    }
}

#[test]
fn max_supersteps_zero_like_cap_of_one() {
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    let g = b.build().unwrap();
    let out = run(
        &g,
        &MinFlood,
        Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
        &RunConfig { max_supersteps: Some(1), ..RunConfig::default() },
    );
    assert_eq!(out.stats.num_supersteps(), 1);
    // Vertex 1's incoming 0 was sent but never consumed.
    assert_eq!(*out.value_of(1), 1);
}

#[test]
fn parallel_edges_multiply_messages_but_combine_to_one() {
    struct CountMsgs;
    impl VertexProgram for CountMsgs {
        type Value = u32; // combined count received
        type Message = u32;
        fn initial_value(&self, _id: VertexId) -> u32 {
            0
        }
        fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
            while let Some(m) = ctx.next_message() {
                *value += m;
            }
            if ctx.is_first_superstep() {
                ctx.broadcast(1);
            }
            ctx.vote_to_halt();
        }
        fn combine(old: &mut u32, new: u32) {
            *old += new;
        }
    }
    let mut b = GraphBuilder::new(NeighborMode::Both);
    b.add_edge(0, 1);
    b.add_edge(0, 1);
    b.add_edge(0, 1);
    let g = b.build().unwrap();
    for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
        let out = run(&g, &CountMsgs, Version { combiner, selection_bypass: false }, &RunConfig::default());
        // Pull outboxes hold ONE broadcast value per sender; a triple
        // parallel edge delivers it once per gather over the in-list —
        // in-neighbours list contains 0 three times, so 3 fetches. Push
        // delivers 3 sends. Either way the combined sum is 3.
        assert_eq!(*out.value_of(1), 3, "{combiner:?}");
        assert_eq!(out.stats.supersteps[0].messages_sent, 3);
    }
}
