//! The gate: the real repository must lint clean. Runs every check —
//! annotation audits, hierarchy drift, std-sync ban, trace coverage,
//! format fingerprints, unsafe confinement — over the actual tree, so
//! `cargo test` fails the moment any invariant regresses.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the repo root");
    let violations = ipregel_lint::run(repo, false).expect("lint run failed");
    assert!(
        violations.is_empty(),
        "the tree must lint clean; run `cargo run -p ipregel-lint --offline` for details:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
