//! The linter's self-test: every check must pass on its good fixture
//! and fail — with the right message — on its seeded violation. The
//! fixtures are committed source snippets under `tests/fixtures/`
//! (never compiled, only scanned), so the suite is stream-agnostic: it
//! needs nothing but this crate.

use ipregel_lint::checks::{formats, locks, orderings, tracecov, unsafe_confine};
use ipregel_lint::{SourceFile, Violation};
use std::path::Path;

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    SourceFile::from_content(&format!("fixtures/{name}"), &content)
}

fn fixture_content(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(path).unwrap()
}

fn assert_one_mentioning(violations: &[Violation], needle: &str) {
    assert_eq!(
        violations.len(),
        1,
        "expected exactly one violation mentioning {needle:?}, got: {violations:#?}"
    );
    assert!(
        violations[0].message.contains(needle) || violations[0].check.contains(needle),
        "violation does not mention {needle:?}: {violations:#?}"
    );
}

// ---- atomic-ordering audit ------------------------------------------------

#[test]
fn ordering_clean_fixture_passes() {
    let files = [fixture("ordering_good.rs")];
    let protocols: &[(&str, &[&str])] =
        &[("fixtures/ordering_good.rs", &["Relaxed", "Acquire", "Release"])];
    let v = orderings::check(&files, protocols);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn ordering_missing_annotation_fails() {
    let files = [fixture("ordering_missing.rs")];
    let protocols: &[(&str, &[&str])] = &[("fixtures/ordering_missing.rs", &["Acquire"])];
    let v = orderings::check(&files, protocols);
    assert_one_mentioning(&v, "without an adjacent");
    assert_eq!(v[0].line, 6, "points at the unannotated load");
}

#[test]
fn ordering_seqcst_is_a_hard_error_even_annotated() {
    let files = [fixture("ordering_seqcst.rs")];
    let protocols: &[(&str, &[&str])] = &[("fixtures/ordering_seqcst.rs", &["Relaxed"])];
    let v = orderings::check(&files, protocols);
    assert_one_mentioning(&v, "SeqCst is banned");
}

#[test]
fn ordering_outside_declared_protocol_fails() {
    let files = [fixture("ordering_off_protocol.rs")];
    let protocols: &[(&str, &[&str])] = &[("fixtures/ordering_off_protocol.rs", &["Relaxed"])];
    let v = orderings::check(&files, protocols);
    assert_one_mentioning(&v, "not part of this file's declared protocol");
}

#[test]
fn ordering_without_protocol_entry_fails() {
    let files = [fixture("ordering_good.rs")];
    let v = orderings::check(&files, &[]);
    assert_one_mentioning(&v, "no entry in the ATOMIC_PROTOCOLS table");
}

// ---- lock-hierarchy lint --------------------------------------------------

const TEST_HIERARCHY: &[(&str, u16)] = &[("pool.state", 10), ("mailbox.slot", 70)];

/// Site-level violations only (drop the manifest-completeness findings,
/// which always fire when linting a fixture subset).
fn lock_site_violations(files: &[SourceFile]) -> Vec<Violation> {
    locks::check(files, TEST_HIERARCHY, &[], &[])
        .into_iter()
        .filter(|v| !v.message.contains("no LockClass::new literal"))
        .collect()
}

#[test]
fn lock_clean_fixture_passes() {
    let v = lock_site_violations(&[fixture("lock_good.rs")]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn lock_unannotated_acquisition_fails() {
    let v = lock_site_violations(&[fixture("lock_unannotated.rs")]);
    assert_one_mentioning(&v, "without an adjacent");
}

#[test]
fn lock_unknown_class_fails() {
    let v = lock_site_violations(&[fixture("lock_unknown_class.rs")]);
    assert_one_mentioning(&v, "missing from");
}

#[test]
fn std_sync_primitives_are_banned_outside_the_shim() {
    let v = lock_site_violations(&[fixture("std_sync_banned.rs")]);
    let msgs: Vec<_> = v.iter().map(|v| &v.message).collect();
    assert!(
        v.len() >= 2 && msgs.iter().any(|m| m.contains("Mutex"))
            && msgs.iter().any(|m| m.contains("Condvar")),
        "{v:#?}"
    );
    // ...and the same file is fine when allowlisted (the shim layer).
    let allowed =
        locks::check(&[fixture("std_sync_banned.rs")], TEST_HIERARCHY, &[], &["fixtures/std_sync_banned.rs"]);
    assert!(allowed.iter().all(|v| !v.message.contains("std::sync")), "{allowed:#?}");
}

#[test]
fn hierarchy_drift_fails_in_both_directions() {
    let v = locks::check(&[fixture("hierarchy_drift.rs")], TEST_HIERARCHY, &[], &[]);
    assert!(
        v.iter().any(|v| v.message.contains("declares rank 11") && v.message.contains("says 10")),
        "wrong-rank declaration must fail: {v:#?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("rogue.lock")
            && v.message.contains("not declared in LOCK_HIERARCHY")),
        "undeclared class must fail: {v:#?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("mailbox.slot")
            && v.message.contains("no LockClass::new literal")),
        "manifest entry with no declaration must fail: {v:#?}"
    );
}

// ---- trace-hook coverage --------------------------------------------------

const TRACE_REQUIRED: &[(&str, &[&str])] = &[(
    "fixtures/trace_fixture.rs",
    &[
        "TraceEvent::RunBegin",
        "TraceEvent::SuperstepBegin",
        "TraceEvent::SuperstepEnd",
        "TraceEvent::RunEnd",
    ],
)];

#[test]
fn trace_coverage_passes_when_all_events_emitted() {
    let f = SourceFile::from_content("fixtures/trace_fixture.rs", &fixture_content("trace_good.rs"));
    let v = tracecov::check(&[f], TRACE_REQUIRED);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn trace_coverage_fails_when_an_emit_is_dropped_or_commented() {
    let f =
        SourceFile::from_content("fixtures/trace_fixture.rs", &fixture_content("trace_missing.rs"));
    let v = tracecov::check(&[f], TRACE_REQUIRED);
    assert_one_mentioning(&v, "TraceEvent::SuperstepEnd");
}

#[test]
fn trace_coverage_fails_on_missing_file() {
    let v = tracecov::check(&[], TRACE_REQUIRED);
    assert_one_mentioning(&v, "missing");
}

// ---- format-version lint --------------------------------------------------

#[test]
fn format_regions_fingerprint_and_detect_unversioned_edits() {
    let original = fixture_content("format_region.rs");
    let files = [SourceFile::from_content("fixtures/format_region.rs", &original)];

    // No lock yet: the region is unrecorded, and check() hands back the
    // lock content --bless-formats would write.
    let (v, blessed) = formats::check(&files, None);
    assert_one_mentioning(&v, "no fingerprint");

    // Blessed: clean.
    let (v, _) = formats::check(&files, Some(&blessed));
    assert!(v.is_empty(), "{v:#?}");

    // Comment edits inside the region must NOT churn the fingerprint.
    let commented = original.replace("// format-region(fixture, v1): begin", "// format-region(fixture, v1): begin — reworded note");
    let files = [SourceFile::from_content("fixtures/format_region.rs", &commented)];
    let (v, _) = formats::check(&files, Some(&blessed));
    assert!(v.is_empty(), "comment edits are format-neutral: {v:#?}");

    // A code edit without a version bump is the bug this check exists
    // to stop.
    let edited = original.replace("to_le_bytes", "to_be_bytes");
    assert_ne!(edited, original, "fixture must contain the endianness call");
    let files = [SourceFile::from_content("fixtures/format_region.rs", &edited)];
    let (v, _) = formats::check(&files, Some(&blessed));
    assert_one_mentioning(&v, "changed without a version bump");

    // The same edit WITH a bump asks for a re-bless instead...
    let bumped = edited.replace("format-region(fixture, v1): begin", "format-region(fixture, v2): begin");
    let files = [SourceFile::from_content("fixtures/format_region.rs", &bumped)];
    let (v, reblessed) = formats::check(&files, Some(&blessed));
    assert_one_mentioning(&v, "--bless-formats");
    // ...after which the tree is clean again.
    let (v, _) = formats::check(&files, Some(&reblessed));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn format_region_marker_mismatches_fail() {
    let unclosed = "// format-region(x, v1): begin\nconst A: u32 = 1;\n";
    let files = [SourceFile::from_content("fixtures/unclosed.rs", unclosed)];
    let (v, _) = formats::check(&files, None);
    assert!(v.iter().any(|v| v.message.contains("never closed")), "{v:#?}");

    let stray = "const A: u32 = 1;\n// format-region(x): end\n";
    let files = [SourceFile::from_content("fixtures/stray.rs", stray)];
    let (v, _) = formats::check(&files, None);
    assert!(v.iter().any(|v| v.message.contains("end without a begin")), "{v:#?}");
}

// ---- unsafe confinement ---------------------------------------------------

#[test]
fn unsafe_outside_the_boundary_fails() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = [fixture("unsafe_unconfined.rs")];
    let v = unsafe_confine::check(repo, &files, &[], &[]);
    assert_one_mentioning(&v, "outside the allowlisted boundary");
}

#[test]
fn allowlisted_unsafe_passes_and_stale_entries_fail() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = [fixture("unsafe_unconfined.rs"), fixture("ordering_good.rs")];

    let v = unsafe_confine::check(repo, &files, &["fixtures/unsafe_unconfined.rs"], &[]);
    assert!(v.is_empty(), "{v:#?}");

    // ordering_good.rs has no unsafe: listing it is a stale entry.
    let v = unsafe_confine::check(
        repo,
        &files,
        &["fixtures/unsafe_unconfined.rs", "fixtures/ordering_good.rs"],
        &[],
    );
    assert_one_mentioning(&v, "stale UNSAFE_ALLOWLIST entry");
}

#[test]
fn lost_forbid_attribute_fails() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    // src/scanner.rs exists but (deliberately) has no crate-level
    // forbid of its own — a stand-in for a root that lost the attribute.
    let v = unsafe_confine::check(repo, &[], &[], &["src/scanner.rs"]);
    assert_one_mentioning(&v, "forbid(unsafe_code)");
    // And the real lib root still carries it.
    let v = unsafe_confine::check(repo, &[], &[], &["src/lib.rs"]);
    assert!(v.is_empty(), "{v:#?}");
}
