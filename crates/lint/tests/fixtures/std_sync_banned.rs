// Fixture: raw std::sync blocking primitives outside the shim layer.

use std::sync::Mutex;

static STATE: Mutex<u32> = Mutex::new(0);

fn wait(cv: &std::sync::Condvar) {
    let _ = cv;
}
