// Fixture: a bare lock acquisition, no lock-order annotation.

fn drain(slot: &SomeOrderedMutex) {
    let mut guard = slot.lock().expect("slot poisoned");
    guard.clear();
}
