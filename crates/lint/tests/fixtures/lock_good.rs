// Fixture: lock acquisitions annotated with declared classes.

fn drain(slot: &SomeOrderedMutex) {
    // lock-order(mailbox.slot)
    let mut guard = slot.lock().expect("slot poisoned");
    guard.clear();
    slot.try_lock().ok(); // lock-order(mailbox.slot)
}
