// Fixture: the refactor dropped SuperstepEnd — and commented-out emits
// must not count as coverage.

fn run(tracer: &Tracer) {
    trace::emit_sync(tracer, || TraceEvent::RunBegin { threads: 1 });
    trace::emit_sync(tracer, || TraceEvent::SuperstepBegin { superstep: 0 });
    // trace::emit_sync(tracer, || TraceEvent::SuperstepEnd { superstep: 0 });
    trace::emit_sync(tracer, || TraceEvent::RunEnd { supersteps: 1 });
}
