// Fixture: an atomic use with no ordering annotation anywhere nearby.

fn peek(flag: &std::sync::atomic::AtomicBool) -> bool {
    use std::sync::atomic::Ordering;
    // A perfectly nice comment that never justifies the ordering.
    flag.load(Ordering::Acquire)
}
