// Fixture: annotated AcqRel in a file whose declared protocol is
// Relaxed-only — the annotation is fine, the protocol table disagrees.

fn swap(state: &std::sync::atomic::AtomicU64) -> u64 {
    use std::sync::atomic::Ordering;
    // ordering(AcqRel): full barrier around the exchange
    state.swap(7, Ordering::AcqRel)
}
