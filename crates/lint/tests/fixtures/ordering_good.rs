// Fixture: every ordering annotated per the grammar; protocol-conformant.
// Not compiled — scanned by tests/self_test.rs.

fn publish(flag: &std::sync::atomic::AtomicBool) {
    use std::sync::atomic::Ordering;
    // ordering(Release): publishes the payload writes above to the
    // Acquire load in `consume`
    flag.store(true, Ordering::Release);
}

fn consume(flag: &std::sync::atomic::AtomicBool) -> bool {
    use std::sync::atomic::Ordering;
    // ordering(Acquire): pairs with the Release store in `publish`
    flag.load(Ordering::Acquire)
}

fn tally(n: &std::sync::atomic::AtomicU64) {
    use std::sync::atomic::Ordering;
    n.fetch_add(1, Ordering::Relaxed); // ordering(Relaxed): counter, read at the barrier
}
