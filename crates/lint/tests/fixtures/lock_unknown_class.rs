// Fixture: annotated, but the class is not in the hierarchy manifest.

fn drain(slot: &SomeOrderedMutex) {
    // lock-order(mailbox.imaginary)
    let mut guard = slot.lock().expect("slot poisoned");
    guard.clear();
}
