// Fixture: SeqCst creep — annotated, even, but still banned.

fn creep(flag: &std::sync::atomic::AtomicBool) {
    use std::sync::atomic::Ordering;
    // ordering(SeqCst): when in doubt, the strongest thing, right?
    flag.store(true, Ordering::SeqCst);
}
