// Fixture: LockClass declarations that disagree with the manifest —
// one with the wrong rank, one the manifest has never heard of.

pub const POOL_STATE: LockClass = LockClass::new(11, "pool.state");
pub const ROGUE: LockClass = LockClass::new(95, "rogue.lock");
