// Fixture: a marked serialization region. The self-test fingerprints
// this, then "edits" it (textually) and asserts the check fires.

// format-region(fixture, v1): begin
const MAGIC: &[u8; 4] = b"FIXT";
const FORMAT: u32 = 1;

fn encode(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
}
// format-region(fixture): end
