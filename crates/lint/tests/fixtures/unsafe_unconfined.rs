// Fixture: unsafe outside the allowlisted boundary.

fn sneaky(p: *mut u32) {
    // SAFETY: none whatsoever.
    unsafe { *p = 7 };
}
