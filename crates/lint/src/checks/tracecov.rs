//! Trace-hook coverage.
//!
//! The observability layer (docs/INTERNALS.md, "Observability") only
//! works if every engine entry point and mailbox keeps emitting its
//! structured events — a refactor that drops an emit breaks every
//! consumer silently, because nothing *fails*, the data just stops.
//! This check pins the contract: for each file in the coverage
//! manifest, each required token must still appear in comment-stripped
//! code (so a commented-out emit does not count).

use crate::scanner::token_occurrences;
use crate::{SourceFile, Violation};

const CHECK: &str = "trace-coverage";

pub fn check(files: &[SourceFile], coverage: &[(&str, &[&str])]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rel, tokens) in coverage {
        let Some(f) = files.iter().find(|f| f.rel == *rel) else {
            out.push(Violation {
                file: (*rel).to_string(),
                line: 0,
                check: CHECK,
                message: "file named in TRACE_COVERAGE is missing — update \
                          crates/lint/src/manifest.rs if it moved"
                    .into(),
            });
            continue;
        };
        for token in *tokens {
            let found = f
                .scanned
                .lines
                .iter()
                .any(|l| !token_occurrences(&l.code, token).is_empty());
            if !found {
                out.push(Violation {
                    file: (*rel).to_string(),
                    line: 0,
                    check: CHECK,
                    message: format!(
                        "no longer emits `{token}` — restore the trace hook or (if the \
                         contract really changed) update TRACE_COVERAGE in \
                         crates/lint/src/manifest.rs and docs/INTERNALS.md"
                    ),
                });
            }
        }
    }
    out
}
