//! The check families. Each takes scanned sources plus the relevant
//! manifest tables, so the self-test suite can run any check against
//! fixture content under synthetic paths.

pub mod formats;
pub mod locks;
pub mod orderings;
pub mod tracecov;
pub mod unsafe_confine;
