//! Lock-hierarchy lint: three sub-checks over the same scan.
//!
//! 1. **Acquisition annotations** — every `.lock(` / `.try_lock(` site
//!    carries an adjacent `// lock-order(<class>)` naming a class
//!    declared in the hierarchy manifest, so a reader (and a reviewer)
//!    can see where each acquisition sits in the global order without
//!    chasing types. Files implementing the lock machinery itself are
//!    exempt (their inner `.lock()` has a dynamic class).
//! 2. **std-sync ban** — naming `std::sync::{Mutex, RwLock, Condvar,
//!    Barrier}` outside the allowlisted runtime layer fails: everything
//!    else must use the `ipregel::sync` shim (loom-faithful) or the
//!    ordered wrappers (hierarchy-enforced).
//! 3. **Manifest drift** — every literal `LockClass::new(<rank>,
//!    "<name>")` declaration in the sources must match the manifest
//!    exactly, in both directions, with consistent ranks. The static
//!    table and the runtime detector cannot diverge silently.

use crate::scanner::token_occurrences;
use crate::{SourceFile, Violation};

const CHECK: &str = "lock-order";

/// Blocking primitives that must not be named outside the shim layer.
const BANNED_STD_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier"];

pub fn check(
    files: &[SourceFile],
    hierarchy: &[(&str, u16)],
    impl_files: &[&str],
    std_sync_allowed: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    // name -> rank as declared in source, for drift checking.
    let mut declared: Vec<(String, u16, String, usize)> = Vec::new();

    for f in files {
        let exempt_sites = impl_files.contains(&f.rel.as_str());
        let std_sync_ok = std_sync_allowed.contains(&f.rel.as_str());
        for (i, line) in f.scanned.lines.iter().enumerate() {
            let lineno = i + 1;

            // 1. Acquisition sites.
            if !exempt_sites {
                let sites = token_occurrences(&line.code, ".lock(").len()
                    + token_occurrences(&line.code, ".try_lock(").len();
                if sites > 0 {
                    let block = f.scanned.annotation_block(lineno);
                    match parse_lock_order(&block) {
                        None => out.push(Violation {
                            file: f.rel.clone(),
                            line: lineno,
                            check: CHECK,
                            message: "lock acquisition without an adjacent \
                                      `// lock-order(<class>)` annotation"
                                .into(),
                        }),
                        Some(class) if !hierarchy.iter().any(|(n, _)| *n == class) => {
                            out.push(Violation {
                                file: f.rel.clone(),
                                line: lineno,
                                check: CHECK,
                                message: format!(
                                    "lock-order({class}) names a class missing from \
                                     LOCK_HIERARCHY (crates/lint/src/manifest.rs)"
                                ),
                            });
                        }
                        Some(_) => {}
                    }
                }
            }

            // 2. std-sync ban.
            if !std_sync_ok {
                for prim in BANNED_STD_SYNC {
                    let inline = !token_occurrences(&line.code, &format!("std::sync::{prim}"))
                        .is_empty();
                    let imported = line.code.contains("use std::sync::")
                        && !token_occurrences(&line.code, prim).is_empty();
                    if inline || imported {
                        out.push(Violation {
                            file: f.rel.clone(),
                            line: lineno,
                            check: CHECK,
                            message: format!(
                                "raw std::sync::{prim} outside the runtime layer — use the \
                                 `ipregel::sync` shim or an OrderedMutex so loom models and \
                                 the lock hierarchy keep seeing this lock"
                            ),
                        });
                    }
                }
            }

            // 3. Collect LockClass::new literals (the name lives inside
            //    a string literal, so match on the string-preserving
            //    view).
            for at in token_occurrences(&line.code_strings, "LockClass::new(") {
                let tail = &line.code_strings[at + "LockClass::new(".len()..];
                if let Some((rank, name)) = parse_class_literal(tail) {
                    declared.push((name, rank, f.rel.clone(), lineno));
                }
            }
        }
    }

    // Drift, both directions.
    for (name, rank, file, lineno) in &declared {
        match hierarchy.iter().find(|(n, _)| n == name) {
            None => out.push(Violation {
                file: file.clone(),
                line: *lineno,
                check: CHECK,
                message: format!(
                    "LockClass `{name}` (rank {rank}) is not declared in LOCK_HIERARCHY \
                     (crates/lint/src/manifest.rs)"
                ),
            }),
            Some((_, want)) if want != rank => out.push(Violation {
                file: file.clone(),
                line: *lineno,
                check: CHECK,
                message: format!(
                    "LockClass `{name}` declares rank {rank} but LOCK_HIERARCHY says {want}"
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, _) in hierarchy {
        if !declared.iter().any(|(n, ..)| n == name) {
            out.push(Violation {
                file: "crates/lint/src/manifest.rs".into(),
                line: 0,
                check: CHECK,
                message: format!(
                    "LOCK_HIERARCHY declares `{name}` but no LockClass::new literal defines \
                     it in the sources"
                ),
            });
        }
    }
    out
}

/// Extract the class from the first `lock-order(<class>)` in `block`.
fn parse_lock_order(block: &str) -> Option<String> {
    let at = block.find("lock-order(")?;
    let rest = &block[at + "lock-order(".len()..];
    let end = rest.find(')')?;
    Some(rest[..end].trim().to_string())
}

/// Parse `<int>, "<name>")…` after a `LockClass::new(`.
fn parse_class_literal(tail: &str) -> Option<(u16, String)> {
    let (num, rest) = tail.split_once(',')?;
    let digits: String = num.trim().chars().take_while(char::is_ascii_digit).collect();
    let rank: u16 = digits.parse().ok()?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((rank, rest[..end].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_literal_parses() {
        assert_eq!(parse_class_literal("10, \"pool.state\")"), Some((10, "pool.state".into())));
        assert_eq!(parse_class_literal("90, \"a.b\");"), Some((90, "a.b".into())));
        assert_eq!(parse_class_literal("rank, name)"), None);
    }

    #[test]
    fn lock_order_annotation_parses() {
        assert_eq!(parse_lock_order(" lock-order(mailbox.spin)"), Some("mailbox.spin".into()));
        assert_eq!(parse_lock_order("nothing here"), None);
    }
}
