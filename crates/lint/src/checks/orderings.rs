//! Atomic-ordering audit.
//!
//! Every `Ordering::<Ord>` appearing in code must be justified by an
//! adjacent annotation — on the same line or in the comment block
//! immediately above:
//!
//! ```text
//! // ordering(Acquire): pairs with the Release store in `unlock`
//! while self.locked.swap(true, Ordering::Acquire) { ... }
//! ```
//!
//! A line using several orderings (a compare-exchange's success and
//! failure pair) needs each distinct ordering named in the block. The
//! file's set of orderings must additionally be *declared* in the
//! manifest's protocol table — so introducing, say, a first `AcqRel`
//! into a Relaxed-only file is a reviewed manifest change, not a silent
//! edit. `SeqCst` never appears in any protocol entry: using it is a
//! hard error regardless of annotation ("when in doubt, SeqCst" creep
//! is exactly what this check exists to stop).

use crate::scanner::token_occurrences;
use crate::{SourceFile, Violation};

const CHECK: &str = "ordering";

pub fn check(files: &[SourceFile], protocols: &[(&str, &[&str])]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let allowed: Option<&[&str]> =
            protocols.iter().find(|(p, _)| *p == f.rel).map(|(_, o)| *o);
        let mut file_uses_atomics = false;
        for (i, line) in f.scanned.lines.iter().enumerate() {
            let lineno = i + 1;
            let mut used = Vec::new();
            for ord in crate::manifest::ORDERINGS {
                if !token_occurrences(&line.code, &format!("Ordering::{ord}")).is_empty() {
                    used.push(*ord);
                }
            }
            if used.is_empty() {
                continue;
            }
            file_uses_atomics = true;
            let block = f.scanned.annotation_block(lineno);
            for ord in used {
                if ord == "SeqCst" {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: lineno,
                        check: CHECK,
                        message: "Ordering::SeqCst is banned: no protocol in this workspace \
                                  needs sequential consistency — state the actual \
                                  acquire/release pairing instead"
                            .into(),
                    });
                    continue;
                }
                if !block.contains(&format!("ordering({ord})")) {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: lineno,
                        check: CHECK,
                        message: format!(
                            "Ordering::{ord} without an adjacent `// ordering({ord}): \
                             <justification>` annotation"
                        ),
                    });
                    continue;
                }
                match allowed {
                    Some(orderings) if !orderings.contains(&ord) => out.push(Violation {
                        file: f.rel.clone(),
                        line: lineno,
                        check: CHECK,
                        message: format!(
                            "Ordering::{ord} is not part of this file's declared protocol \
                             ({}); extend ATOMIC_PROTOCOLS in crates/lint/src/manifest.rs \
                             if the protocol really changed",
                            orderings.join(", ")
                        ),
                    }),
                    _ => {}
                }
            }
        }
        if file_uses_atomics && allowed.is_none() {
            out.push(Violation {
                file: f.rel.clone(),
                line: 0,
                check: CHECK,
                message: "file uses atomics but has no entry in the ATOMIC_PROTOCOLS table \
                          (crates/lint/src/manifest.rs): declare which orderings its \
                          protocol uses"
                    .into(),
            });
        }
    }
    out
}
