//! Serialized-format version lint.
//!
//! Wire formats (the `IPCK` checkpoint layout, the `IPGB` graph cache)
//! are delimited in-source by marker comments:
//!
//! ```text
//! // format-region(ipck, v1): begin
//! const MAGIC: &[u8; 4] = b"IPCK";
//! ...
//! // format-region(ipck): end
//! ```
//!
//! Each region is fingerprinted: comments are stripped (string literals
//! kept — changing `b"IPCK"` *is* a format change), whitespace is
//! collapsed, and the bytes are FNV-1a-hashed. The hash and the marker
//! version are compared against the committed `crates/lint/formats.lock`:
//!
//! * hash changed, version unchanged → **error** (a layout edit without
//!   a version bump is exactly the on-disk-corruption bug this exists
//!   to stop);
//! * version changed → error pointing at `--bless-formats`, which
//!   rewrites the lock once the bump is deliberate;
//! * region/lock mismatch in either direction → error.

use crate::scanner::fnv1a64;
use crate::{SourceFile, Violation};

const CHECK: &str = "format-version";

struct Region {
    name: String,
    version: u32,
    file: String,
    line: usize,
    hash: u64,
}

/// Check every marked region against `lock_contents`. Returns the
/// violations plus the lock file content that *would* be correct (used
/// by `--bless-formats`).
pub fn check(files: &[SourceFile], lock_contents: Option<&str>) -> (Vec<Violation>, String) {
    let mut out = Vec::new();
    let mut regions: Vec<Region> = Vec::new();

    for f in files {
        let mut open: Option<(String, u32, usize, Vec<u8>)> = None;
        for (i, line) in f.scanned.lines.iter().enumerate() {
            let lineno = i + 1;
            if let Some((name, version)) = parse_begin(&line.comment) {
                if let Some((prev, ..)) = &open {
                    out.push(violation(
                        f,
                        lineno,
                        format!("format-region({name}) opened while {prev} is still open"),
                    ));
                }
                open = Some((name, version, lineno, Vec::new()));
                continue;
            }
            if let Some(name) = parse_end(&line.comment) {
                match open.take() {
                    Some((open_name, version, begin_line, bytes)) if open_name == name => {
                        if regions.iter().any(|r| r.name == name) {
                            out.push(violation(
                                f,
                                begin_line,
                                format!("duplicate format-region({name})"),
                            ));
                        }
                        regions.push(Region {
                            name,
                            version,
                            file: f.rel.clone(),
                            line: begin_line,
                            hash: fnv1a64(&bytes),
                        });
                    }
                    Some((open_name, ..)) => out.push(violation(
                        f,
                        lineno,
                        format!("format-region({name}): end closes format-region({open_name})"),
                    )),
                    None => out.push(violation(
                        f,
                        lineno,
                        format!("format-region({name}): end without a begin"),
                    )),
                }
                continue;
            }
            if let Some((.., bytes)) = &mut open {
                // Normalise: code with strings kept, whitespace dropped,
                // so reformatting and comment edits never churn the hash.
                bytes.extend(line.code_strings.bytes().filter(|b| !b.is_ascii_whitespace()));
            }
        }
        if let Some((name, _, begin_line, _)) = open {
            out.push(violation(f, begin_line, format!("format-region({name}) never closed")));
        }
    }

    regions.sort_by(|a, b| a.name.cmp(&b.name));
    let blessed = render_lock(&regions);

    let locked = lock_contents.map(parse_lock).unwrap_or_default();
    for r in &regions {
        match locked.iter().find(|(n, ..)| *n == r.name) {
            None => out.push(Violation {
                file: r.file.clone(),
                line: r.line,
                check: CHECK,
                message: format!(
                    "format-region({}) has no fingerprint in crates/lint/formats.lock — \
                     run `cargo run -p ipregel-lint -- --bless-formats`",
                    r.name
                ),
            }),
            Some((_, version, hash)) => {
                if *version == r.version && *hash != r.hash {
                    out.push(Violation {
                        file: r.file.clone(),
                        line: r.line,
                        check: CHECK,
                        message: format!(
                            "format-region({}) changed without a version bump (still v{}): \
                             readers of existing files will misparse — bump the format \
                             version constant AND the marker, then re-bless",
                            r.name, r.version
                        ),
                    });
                } else if *version != r.version {
                    out.push(Violation {
                        file: r.file.clone(),
                        line: r.line,
                        check: CHECK,
                        message: format!(
                            "format-region({}) bumped to v{} but formats.lock records v{} — \
                             run `cargo run -p ipregel-lint -- --bless-formats` to accept",
                            r.name, r.version, version
                        ),
                    });
                }
            }
        }
    }
    for (name, ..) in &locked {
        if !regions.iter().any(|r| &r.name == name) {
            out.push(Violation {
                file: "crates/lint/formats.lock".into(),
                line: 0,
                check: CHECK,
                message: format!(
                    "formats.lock records region `{name}` but no source marks it — re-bless \
                     (or restore the markers)"
                ),
            });
        }
    }

    (out, blessed)
}

fn violation(f: &SourceFile, line: usize, message: String) -> Violation {
    Violation { file: f.rel.clone(), line, check: CHECK, message }
}

/// `format-region(<name>, v<int>): begin`
fn parse_begin(comment: &str) -> Option<(String, u32)> {
    let at = comment.find("format-region(")?;
    let rest = &comment[at + "format-region(".len()..];
    let end = rest.find(')')?;
    let inner = &rest[..end];
    if !rest[end..].trim_start_matches(')').trim_start().starts_with(": begin") {
        return None;
    }
    let (name, ver) = inner.split_once(',')?;
    let ver = ver.trim().strip_prefix('v')?;
    Some((name.trim().to_string(), ver.parse().ok()?))
}

/// `format-region(<name>): end`
fn parse_end(comment: &str) -> Option<String> {
    let at = comment.find("format-region(")?;
    let rest = &comment[at + "format-region(".len()..];
    let end = rest.find(')')?;
    let inner = &rest[..end];
    if inner.contains(',') || !rest[end..].trim_start_matches(')').trim_start().starts_with(": end")
    {
        return None;
    }
    Some(inner.trim().to_string())
}

/// Lock line format: `<name> v<version> <hash as 16 hex digits>`.
fn parse_lock(contents: &str) -> Vec<(String, u32, u64)> {
    contents
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next()?.to_string();
            let version = it.next()?.strip_prefix('v')?.parse().ok()?;
            let hash = u64::from_str_radix(it.next()?, 16).ok()?;
            Some((name, version, hash))
        })
        .collect()
}

fn render_lock(regions: &[Region]) -> String {
    let mut s = String::from(
        "# Serialized-format fingerprints. Generated by `cargo run -p ipregel-lint -- \
         --bless-formats`;\n# see docs/INTERNALS.md, \"Static analysis: concurrency \
         invariants\". Do not edit by hand.\n",
    );
    for r in regions {
        s.push_str(&format!("{} v{} {:016x}\n", r.name, r.version, r.hash));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_parse() {
        assert_eq!(parse_begin(" format-region(ipck, v1): begin — notes"), Some(("ipck".into(), 1)));
        assert_eq!(parse_begin(" format-region(ipck): end"), None);
        assert_eq!(parse_end(" format-region(ipck): end"), Some("ipck".into()));
        assert_eq!(parse_end(" format-region(ipck, v1): begin"), None);
    }

    #[test]
    fn lock_round_trips() {
        let regions = vec![Region {
            name: "x".into(),
            version: 3,
            file: "f.rs".into(),
            line: 1,
            hash: 0xdead_beef,
        }];
        let rendered = render_lock(&regions);
        assert_eq!(parse_lock(&rendered), vec![("x".into(), 3, 0xdead_beef)]);
    }
}
