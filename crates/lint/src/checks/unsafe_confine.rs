//! Unsafe-confinement audit, absorbed from `tools/unsafe_audit.rs`.
//!
//! The `unsafe` token may appear only in the allowlisted boundary
//! modules (each carries a module-level safety argument and a checker —
//! loom, `check-disjoint`, Miri, TSan; see docs/INTERNALS.md, "Safety
//! model"), and the files declared unsafe-free must still carry
//! `#![forbid(unsafe_code)]`.
//!
//! New over the retired tool: **stale-allowlist detection**. An
//! allowlist entry whose file no longer contains `unsafe` is an error —
//! the boundary must shrink when the code does, or the list rots into
//! a pile of latent permissions.

use std::path::Path;

use crate::{SourceFile, Violation};

const CHECK: &str = "unsafe-confinement";

pub fn check(
    repo: &Path,
    files: &[SourceFile],
    allowlist: &[&str],
    forbid_files: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let lines = f.scanned.token_lines("unsafe");
        let listed = allowlist.contains(&f.rel.as_str());
        if !lines.is_empty() && !listed {
            out.push(Violation {
                file: f.rel.clone(),
                line: lines[0],
                check: CHECK,
                message: format!(
                    "`unsafe` outside the allowlisted boundary (lines {lines:?}) — remove \
                     it, or extend UNSAFE_ALLOWLIST in crates/lint/src/manifest.rs AND \
                     document the invariant + checker in docs/INTERNALS.md"
                ),
            });
        }
        if lines.is_empty() && listed {
            out.push(Violation {
                file: f.rel.clone(),
                line: 0,
                check: CHECK,
                message: "stale UNSAFE_ALLOWLIST entry: the file no longer contains \
                          `unsafe` — shrink the boundary in crates/lint/src/manifest.rs \
                          (and consider adding #![forbid(unsafe_code)] + a FORBID_FILES \
                          entry)"
                    .into(),
            });
        }
    }
    for rel in allowlist {
        if !files.iter().any(|f| f.rel == *rel) {
            out.push(Violation {
                file: (*rel).to_string(),
                line: 0,
                check: CHECK,
                message: "UNSAFE_ALLOWLIST names a file that does not exist".into(),
            });
        }
    }
    for rel in forbid_files {
        match std::fs::read_to_string(repo.join(rel)) {
            Ok(src) if src.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => out.push(Violation {
                file: (*rel).to_string(),
                line: 0,
                check: CHECK,
                message: "lost its #![forbid(unsafe_code)]".into(),
            }),
            Err(_) => out.push(Violation {
                file: (*rel).to_string(),
                line: 0,
                check: CHECK,
                message: "FORBID_FILES names a file that does not exist".into(),
            }),
        }
    }
    out
}
