//! The declared invariants every check enforces — one authority file.
//!
//! The tables here are what the rest of the workspace is linted
//! *against*; changing an invariant means changing it here first, in
//! one reviewable place. Cross-checks keep the tables honest: the lock
//! hierarchy is compared against the `LockClass::new` declarations in
//! the sources (drift in either direction fails), and stale unsafe
//! allowlist entries (files that no longer contain `unsafe`) fail too.

/// The global lock hierarchy, `(name, rank)`, low to high. A thread
/// must acquire in strictly increasing rank order; the runtime
/// `lock-order` detector enforces the same table dynamically (see
/// `crates/par/src/lockorder.rs`).
///
/// Rationale for the shape: pool-internal locks rank lowest (workers
/// hold them around scheduling, and everything else happens inside a
/// scheduled job); the tracer drains shard → log; mailbox locks rank
/// highest of the engine-internal classes because a vertex program may
/// send — locking a mailbox — from inside any engine context; the
/// naive baseline's inbox queues sit above even those, as the most
/// deeply nested user-facing lock in the tree.
pub const LOCK_HIERARCHY: &[(&str, u16)] = &[
    ("pool.state", 10),
    ("pool.deque", 12),
    ("pool.overflow", 14),
    ("pool.latch", 20),
    ("pool.panic", 25),
    ("pool.result", 30),
    ("chaos.test", 33),
    ("chaos.active", 35),
    ("worklist.fallback", 40),
    ("tracer.shard", 50),
    ("tracer.log", 60),
    ("mailbox.slot", 70),
    ("mailbox.spin", 80),
    ("femtograph.inbox", 90),
];

/// Files that *implement* lock machinery rather than use it: their
/// internal `.lock()` calls route through [`LockClass`]-carrying
/// wrappers whose class is dynamic, so per-site annotations would be
/// meaningless there. Everywhere else, every acquisition site must
/// carry a `// lock-order(<class>)` annotation.
///
/// [`LockClass`]: ../par/lockorder/struct.LockClass.html
pub const LOCK_IMPL_FILES: &[&str] =
    &["crates/par/src/lockorder.rs", "crates/core/src/sync.rs"];

/// Files allowed to name `std::sync` blocking primitives (`Mutex`,
/// `RwLock`, `Condvar`, `Barrier`). Everyone else must go through the
/// `ipregel::sync` shim (so loom models stay faithful) or the ordered
/// wrappers (so the hierarchy stays enforced).
pub const STD_SYNC_ALLOWED: &[&str] = &[
    // The layer below the shim: the pool's state/latch machinery and
    // the ordered-mutex implementation wrap std primitives directly.
    "crates/par/src/pool.rs",
    "crates/par/src/lockorder.rs",
    // The shim itself.
    "crates/core/src/sync.rs",
];

/// The atomic-ordering protocol table: for each file that touches
/// atomics, the orderings its protocol is allowed to use. A file using
/// atomics without an entry here fails the lint — adding the entry is
/// the reviewable act of declaring the file's memory-ordering protocol.
/// `SeqCst` is deliberately absent from every entry: nothing in this
/// workspace needs it (the paper's §6 protocols are all
/// acquire/release-shaped), so any appearance is ordering creep.
pub const ATOMIC_PROTOCOLS: &[(&str, &[&str])] = &[
    // Release/acquire pairs publish messages; Relaxed covers the
    // advisory `has` flag and counters read at barriers.
    ("crates/core/src/mailbox/atomic.rs", &["Relaxed", "Acquire", "AcqRel"]),
    ("crates/core/src/mailbox/mutex.rs", &["Relaxed"]),
    ("crates/core/src/mailbox/spin.rs", &["Relaxed", "Acquire", "Release"]),
    ("crates/core/src/mailbox/mod.rs", &["Relaxed"]),
    // Epoch tags: the RMW's atomicity decides the winner; the enqueue
    // it gates is published by the superstep barrier.
    ("crates/core/src/selection.rs", &["Relaxed"]),
    // Dropped-event counters, read only after runs quiesce.
    ("crates/core/src/trace.rs", &["Relaxed"]),
    // check-disjoint borrow tags: acquire/release pairs around element
    // access.
    ("crates/core/src/sync_cell.rs", &["Acquire", "Release"]),
    // The shim's own self-test.
    ("crates/core/src/sync.rs", &["Acquire", "Release"]),
    // Pool scheduling counters (steals/overflow/sleepers): monotone or
    // advisory values whose correctness-bearing reads happen under the
    // queue mutexes; plus test tallies (scope join synchronizes).
    ("crates/par/src/pool.rs", &["Relaxed"]),
    // Advisory length mirrors written under the deque/injector locks.
    ("crates/par/src/deque.rs", &["Relaxed"]),
    ("crates/par/src/iter.rs", &["Relaxed"]),
    // Temp-file unique-id tick in the CLI's test helper.
    ("crates/cli/src/lib.rs", &["Relaxed"]),
];

/// Trace-hook coverage: every engine entry point and mailbox must emit
/// its structured events (the observability layer's contract — a code
/// path that silently stops tracing breaks every dashboard downstream).
/// Tokens are matched against comment-stripped code, so a commented-out
/// emit does not count.
pub const TRACE_COVERAGE: &[(&str, &[&str])] = &[
    (
        "crates/core/src/engine/push.rs",
        &[
            "TraceEvent::RunBegin",
            "TraceEvent::SuperstepBegin",
            "TraceEvent::Chunk",
            "TraceEvent::Pool",
            "TraceEvent::SuperstepEnd",
            "TraceEvent::RunEnd",
            "TraceEvent::CheckpointSave",
        ],
    ),
    (
        "crates/core/src/engine/pull.rs",
        &[
            "TraceEvent::RunBegin",
            "TraceEvent::SuperstepBegin",
            "TraceEvent::Chunk",
            "TraceEvent::Pool",
            "TraceEvent::SuperstepEnd",
            "TraceEvent::RunEnd",
            "TraceEvent::CheckpointSave",
        ],
    ),
    (
        "crates/core/src/engine/seq.rs",
        &[
            "TraceEvent::RunBegin",
            "TraceEvent::SuperstepBegin",
            "TraceEvent::SuperstepEnd",
            "TraceEvent::RunEnd",
        ],
    ),
    (
        "crates/graphd/src/lib.rs",
        &[
            "TraceEvent::RunBegin",
            "TraceEvent::SuperstepBegin",
            "TraceEvent::Io",
            "TraceEvent::SuperstepEnd",
            "TraceEvent::RunEnd",
        ],
    ),
    // Mailboxes report their contention to the trace layer.
    ("crates/core/src/mailbox/spin.rs", &["note_spin_iterations", "note_lock_acquisition"]),
    ("crates/core/src/mailbox/mutex.rs", &["note_lock_acquisition"]),
    ("crates/core/src/mailbox/atomic.rs", &["note_cas_retry"]),
];

/// Files permitted to contain the `unsafe` token (absorbed from the
/// retired `tools/unsafe_audit.rs`). Keep in sync with
/// docs/INTERNALS.md ("Safety model") — every entry there must justify
/// its presence here and name the checker that covers it. An entry
/// whose file no longer contains `unsafe` is itself an error (stale
/// boundary), so the allowlist can only shrink automatically.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    // The in-tree thread pool: scope-lifetime erasure for queued jobs
    // (sound because scope/install block until the latch drains) and
    // the worker-TLS pointer read. Covered by crates/par/tests/
    // pool_contract.rs and the crate's unit suite.
    "crates/par/src/pool.rs",
    "crates/core/src/sync.rs",
    "crates/core/src/sync_cell.rs",
    "crates/core/src/mailbox/spin.rs",
    "crates/core/src/selection.rs",
    "crates/core/src/engine/push.rs",
    "crates/core/src/engine/pull.rs",
    // Baseline simulators reusing SharedSlice under the same discipline.
    "crates/femtograph/src/lib.rs",
    "crates/graphd/src/lib.rs",
    "crates/pregelplus/src/engine.rs",
    // Test suites that exercise the unsafe contracts directly.
    "crates/core/tests/loom.rs",
];

/// Files that must carry `#![forbid(unsafe_code)]` — crate roots proven
/// unsafe-free, plus leaf modules of otherwise-unsafe crates that the
/// attribute keeps provably clean.
pub const FORBID_FILES: &[&str] = &[
    "crates/graph/src/lib.rs",
    "crates/apps/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/cli/src/lib.rs",
    "crates/cli/src/main.rs",
    "crates/memmodel/src/lib.rs",
    "crates/proptest/src/lib.rs",
    "crates/lint/src/lib.rs",
    "src/lib.rs",
    // Unsafe-free modules inside crates whose roots cannot forbid.
    "crates/par/src/padded.rs",
    "crates/par/src/lockorder.rs",
    "crates/par/src/iter.rs",
    "crates/par/src/deque.rs",
];

/// Directory roots searched for `.rs` files by the unsafe-confinement
/// check (the widest scope: tests and tools included).
pub const SEARCH_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "tools"];

/// Directory roots whose sources must satisfy the annotation checks
/// (orderings, lock sites, std-sync ban, format regions, hierarchy
/// declarations): library/binary sources only — integration tests and
/// fixtures may do deliberately odd things.
pub const ANNOTATED_ROOTS: &[&str] = &["crates", "src"];

/// Path fragments excluded from every scan: the linter's fixtures are
/// *committed violations* (each check's self-test seeds from them), and
/// its own sources quote the patterns it searches for.
pub const EXCLUDED: &[&str] = &["crates/lint/"];

/// Where the format fingerprints live, relative to the repo root.
pub const FORMATS_LOCK: &str = "crates/lint/formats.lock";

/// Orderings the annotation grammar recognises.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
