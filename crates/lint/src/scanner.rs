//! Lexical scanner shared by every check.
//!
//! Splits a Rust source file into per-line *code* and *comment* views
//! without parsing it: a small state machine (grown from the original
//! `tools/unsafe_audit.rs` audit, which this crate absorbed) tracks
//! line/block comments, string/char literals, raw strings, and the
//! lifetime-vs-char-literal ambiguity. Checks then match tokens against
//! the code view — so `// unsafe` in prose or `"Ordering::SeqCst"` in a
//! message can never trip a lint — and match annotations against the
//! comment view, so annotations inside strings don't satisfy anything.
//!
//! Three views per line:
//!
//! * [`Line::code`] — code with comments removed and string/char
//!   *contents* blanked (delimiting quotes kept, so token boundaries
//!   survive). The view token searches run against.
//! * [`Line::code_strings`] — code with comments removed but string
//!   contents kept. Used where literals are load-bearing: extracting
//!   `LockClass::new(10, "pool.state")` declarations and fingerprinting
//!   format regions (where changing `b"IPCK"` *is* a format change).
//! * [`Line::comment`] — the comment text, for annotation matching.

/// One scanned source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Code with comments stripped, literal contents kept.
    pub code_strings: String,
    /// Comment text (both `//` and `/* */` forms), delimiters stripped.
    pub comment: String,
}

impl Line {
    /// Whether the line holds no code at all (blank or comment-only).
    pub fn is_code_free(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the line's code is only attribute syntax (`#[...]` /
    /// `#![...]`), possibly split across the line.
    pub fn is_attribute_only(&self) -> bool {
        let t = self.code.trim();
        !t.is_empty() && t.chars().all(|c| "#![]()_=,\":".contains(c) || c.is_alphanumeric())
            && (t.starts_with("#[") || t.starts_with("#!["))
    }
}

/// A scanned file: the per-line views plus helpers checks share.
#[derive(Debug)]
pub struct Scanned {
    pub lines: Vec<Line>,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Scan `source` into per-line code/comment views.
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if b == b'"' {
                    cur.code.push('"');
                    cur.code_strings.push('"');
                    state = State::Str;
                    i += 1;
                } else if b == b'r' && matches!(bytes.get(i + 1), Some(b'"' | b'#')) {
                    // Raw string r"..." / r#"..."#; `r#ident` raw
                    // identifiers fall through as plain code.
                    let mut hashes = 0usize;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        cur.code.push_str("r\"");
                        cur.code_strings.push_str("r\"");
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push('r');
                        cur.code_strings.push('r');
                        i += 1;
                    }
                } else if b == b'\'' {
                    // A lifetime is `'ident` not closed by a quote.
                    let is_lifetime = bytes
                        .get(i + 1)
                        .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                        && bytes.get(i + 2) != Some(&b'\'');
                    cur.code.push('\'');
                    cur.code_strings.push('\'');
                    if !is_lifetime {
                        state = State::Char;
                    }
                    i += 1;
                } else {
                    cur.code.push(b as char);
                    cur.code_strings.push(b as char);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(b as char);
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    cur.code_strings.push_str(
                        std::str::from_utf8(&bytes[i..(i + 2).min(bytes.len())]).unwrap_or(" "),
                    );
                    i += 2; // skip the escaped byte (covers \" and \\)
                } else if b == b'"' {
                    cur.code.push('"');
                    cur.code_strings.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    cur.code_strings.push(b as char);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        cur.code_strings.push('"');
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                cur.code.push(' ');
                cur.code_strings.push(b as char);
                i += 1;
            }
            State::Char => {
                if b == b'\\' {
                    i += 2;
                } else if b == b'\'' {
                    cur.code.push('\'');
                    cur.code_strings.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    cur.code_strings.push(b as char);
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    Scanned { lines }
}

fn is_ident_byte(b: Option<u8>) -> bool {
    b.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Byte offsets of ident-boundary-respecting occurrences of `token`
/// in `haystack`.
pub fn token_occurrences(haystack: &str, token: &str) -> Vec<usize> {
    let hb = haystack.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(token) {
        let at = from + pos;
        let before = if at == 0 { None } else { Some(hb[at - 1]) };
        let after = hb.get(at + token.len()).copied();
        let starts_ident = token.as_bytes().first().is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_');
        let ends_ident = token.as_bytes().last().is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
        if (!starts_ident || !is_ident_byte(before)) && (!ends_ident || !is_ident_byte(after)) {
            out.push(at);
        }
        from = at + token.len().max(1);
    }
    out
}

impl Scanned {
    /// 1-based lines on which `token` occurs in real code.
    pub fn token_lines(&self, token: &str) -> Vec<usize> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !token_occurrences(&l.code, token).is_empty())
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// The annotation text governing 1-based line `line`: the line's own
    /// comment plus the contiguous run of comment-only (or
    /// attribute-only) lines directly above. A blank line or a code
    /// line terminates the run — annotations must sit *adjacent* to the
    /// site they justify.
    pub fn annotation_block(&self, line: usize) -> String {
        let idx = line - 1;
        let mut parts = vec![self.lines[idx].comment.clone()];
        for l in self.lines[..idx].iter().rev() {
            let pure_comment = l.is_code_free() && !l.comment.is_empty();
            if pure_comment || l.is_attribute_only() {
                parts.push(l.comment.clone());
            } else {
                break;
            }
        }
        parts.reverse();
        parts.join("\n")
    }
}

/// FNV-1a 64-bit — the same digest the workspace uses for checkpoints
/// and graph caches, re-stated here so the linter stays dependency-free
/// (it must not link the crates it lints).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let s = scan("let x = \"unsafe\"; // unsafe note\nunsafe { () }\n");
        assert!(s.token_lines("unsafe") == vec![2]);
        assert!(s.lines[0].comment.contains("unsafe note"));
        assert!(s.lines[0].code_strings.contains("\"unsafe\""));
        assert!(!s.lines[0].code.contains("unsafe"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scan("/* a /* b */ still */ code();\n/* open\nstill comment\n*/ tail();\n");
        assert_eq!(s.token_lines("code"), vec![1]);
        assert_eq!(s.token_lines("tail"), vec![4]);
        assert!(s.lines[2].is_code_free());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(s.token_lines("str") == vec![1]);
        assert!(!s.lines[0].code.contains('x') || s.lines[0].code.contains("x:"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let s = scan("let r = r#\"unsafe { lock() }\"#; f();\n");
        assert!(s.token_lines("unsafe").is_empty());
        assert_eq!(s.token_lines("f"), vec![1]);
    }

    #[test]
    fn annotation_block_walks_comment_runs_only() {
        let src = "\
let a = 1;

// ordering(Relaxed): tally
// spans two lines
x.load(Ordering::Relaxed);
let b = 2;
y.load(Ordering::Acquire);
";
        let s = scan(src);
        assert!(s.annotation_block(5).contains("ordering(Relaxed)"));
        assert!(!s.annotation_block(7).contains("ordering"));
    }

    #[test]
    fn token_boundaries_are_respected() {
        let s = scan("raw_unlock(); lock(); prelock();\n");
        assert!(token_occurrences(&s.lines[0].code, "lock(").len() == 1);
    }
}
