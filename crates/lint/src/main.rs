//! CLI for the invariant linter.
//!
//! ```sh
//! cargo run -p ipregel-lint --offline              # lint the repo
//! cargo run -p ipregel-lint -- --root /some/tree   # lint another tree
//! cargo run -p ipregel-lint -- --bless-formats     # refresh formats.lock
//! ```
//!
//! Exit status 0 = clean, 1 = violations (printed one per line as
//! `file:line: [check] message`), 2 = usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("ipregel-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--bless-formats" => bless = true,
            other => {
                eprintln!("ipregel-lint: unknown argument `{other}`");
                eprintln!("usage: ipregel-lint [--root <path>] [--bless-formats]");
                return ExitCode::from(2);
            }
        }
    }

    // When cargo runs us from the workspace root the default `.` is
    // already right; from elsewhere, fall back to the manifest's
    // grandparent so `cargo run -p ipregel-lint` works anywhere.
    if root.as_os_str() == "." && !root.join("crates/lint/Cargo.toml").exists() {
        if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
            if let Some(repo) = PathBuf::from(manifest_dir).parent().and_then(|p| p.parent()) {
                root = repo.to_path_buf();
            }
        }
    }

    match ipregel_lint::run(&root, bless) {
        Ok(violations) if violations.is_empty() => {
            if bless {
                println!("ipregel-lint: formats.lock refreshed");
            }
            println!("ipregel-lint: OK");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("ipregel-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ipregel-lint: {e}");
            ExitCode::from(2)
        }
    }
}
