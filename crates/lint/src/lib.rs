//! ipregel-lint: static enforcement of the workspace's concurrency and
//! serialization invariants.
//!
//! Four check families (see docs/INTERNALS.md, "Static analysis:
//! concurrency invariants" for the annotation grammar and run
//! commands):
//!
//! * **orderings** — every `Ordering::*` use carries an adjacent
//!   `// ordering(<Ord>): <why>` annotation, checked against the
//!   per-file protocol table; `SeqCst` is banned outright;
//! * **locks** — every acquisition site carries
//!   `// lock-order(<class>)` naming a declared hierarchy class; raw
//!   `std::sync` blocking primitives are banned outside the shim; the
//!   hierarchy manifest is cross-checked against the `LockClass::new`
//!   declarations in the sources;
//! * **tracecov** — engine entry points and mailboxes still emit their
//!   structured trace events;
//! * **formats** — marked serialization regions are fingerprinted, and
//!   a change without a version bump fails;
//!
//! plus the unsafe-confinement audit absorbed from
//! `tools/unsafe_audit.rs`, extended with stale-allowlist detection.
//!
//! Everything is lexical — the shared [`scanner`] strips comments and
//! literals, checks match tokens — so the linter builds std-only and
//! offline, and runs in milliseconds over the whole tree.

#![forbid(unsafe_code)]

pub mod checks;
pub mod manifest;
pub mod scanner;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding. `line == 0` means the violation is about the whole file
/// (or a missing file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub check: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.check, self.message)
        } else {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.check, self.message)
        }
    }
}

/// A loaded, scanned source file. Checks operate on these, so the test
/// suite can feed synthetic files with fixture content.
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub rel: String,
    pub scanned: scanner::Scanned,
}

impl SourceFile {
    /// Scan `content` under a synthetic path (used by fixtures).
    pub fn from_content(rel: &str, content: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), scanned: scanner::scan(content) }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Load every `.rs` file under `roots` (relative to `repo`), excluding
/// paths containing any [`manifest::EXCLUDED`] fragment.
pub fn load_tree(repo: &Path, roots: &[&str]) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for root in roots {
        collect_rs_files(&repo.join(root), &mut paths);
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(repo)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if manifest::EXCLUDED.iter().any(|ex| rel.starts_with(ex)) {
            continue;
        }
        let source = fs::read_to_string(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("{rel}: {e}")))?;
        files.push(SourceFile { rel, scanned: scanner::scan(&source) });
    }
    Ok(files)
}

/// Run every check over the repository at `repo`.
///
/// With `bless_formats`, the format fingerprints are rewritten instead
/// of compared (and format violations are not reported).
pub fn run(repo: &Path, bless_formats: bool) -> io::Result<Vec<Violation>> {
    // Annotation checks cover library/binary sources only: integration
    // tests sit outside the locking/ordering protocols they exercise
    // (a test may build ad-hoc mutexes to *provoke* the detector).
    let annotated: Vec<SourceFile> = load_tree(repo, manifest::ANNOTATED_ROOTS)?
        .into_iter()
        .filter(|f| f.rel.starts_with("src/") || f.rel.contains("/src/"))
        .collect();
    let all = load_tree(repo, manifest::SEARCH_ROOTS)?;

    let mut violations = Vec::new();
    violations.extend(checks::orderings::check(&annotated, manifest::ATOMIC_PROTOCOLS));
    violations.extend(checks::locks::check(
        &annotated,
        manifest::LOCK_HIERARCHY,
        manifest::LOCK_IMPL_FILES,
        manifest::STD_SYNC_ALLOWED,
    ));
    violations.extend(checks::tracecov::check(&annotated, manifest::TRACE_COVERAGE));

    let lock_path = repo.join(manifest::FORMATS_LOCK);
    let lock_contents = fs::read_to_string(&lock_path).ok();
    let (format_violations, blessed) =
        checks::formats::check(&annotated, lock_contents.as_deref());
    if bless_formats {
        fs::write(&lock_path, blessed)?;
    } else {
        violations.extend(format_violations);
    }

    violations.extend(checks::unsafe_confine::check(
        repo,
        &all,
        manifest::UNSAFE_ALLOWLIST,
        manifest::FORBID_FILES,
    ));

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}
