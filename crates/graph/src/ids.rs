//! Vertex addressing: mapping external identifiers to memory locations.
//!
//! Section 5 of the paper observes that vertex-centric frameworks
//! conventionally route messages through a hashmap from identifier to
//! location, paying extra memory accesses and poor locality on every
//! delivery. iPregel instead *semantically enriches* identifiers so that an
//! identifier **is** (a function of) the vertex's array index:
//!
//! * **Direct mapping** — the vertex with identifier `i` lives at index `i`.
//!   Zero-overhead, but requires identifiers to start at 0.
//! * **Offset mapping** — index = identifier − base. One subtraction.
//! * **Desolate memory** — direct mapping forced onto a graph whose
//!   identifiers start at `base > 0`: the first `base` array slots are
//!   deliberately wasted ("desolate") so that no subtraction is needed.
//!   For 1-based graphs (both paper datasets) this wastes a single slot.
//!
//! [`HashAddressMap`] implements the conventional hashmap layer the paper
//! argues against; it exists so the addressing ablation benchmark can
//! quantify the difference.

use std::collections::HashMap;

/// External vertex identifier. The paper assumes 4-byte integral
/// identifiers (Section 7.4.2), hence `u32`.
pub type VertexId = u32;

/// Internal vertex location: an index into the framework's vertex arrays.
pub type VertexIndex = u32;

/// Which identifier-to-location strategy a graph uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressingMode {
    /// Identifier == index. Requires the smallest identifier to be 0.
    Direct,
    /// Index = identifier − base.
    Offset,
    /// Direct mapping with the first `base` slots wasted.
    DesolateMemory,
}

/// A concrete identifier ↔ index mapping for one graph.
///
/// All three paper strategies are branch-free in [`AddressMap::index_of`]:
/// direct and desolate mapping subtract a base of 0, offset mapping
/// subtracts the real base. The distinction that matters for memory is how
/// many array *slots* the framework must allocate, exposed by
/// [`AddressMap::slots`] and [`AddressMap::wasted_slots`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    mode: AddressingMode,
    /// Smallest external identifier in the graph.
    base: VertexId,
    /// What `index_of` subtracts: `base` for offset mapping, 0 otherwise.
    subtrahend: VertexId,
    /// Number of real vertices.
    num_vertices: u32,
}

impl AddressMap {
    /// Direct mapping over `num_vertices` vertices with identifiers
    /// `0..num_vertices`.
    pub fn direct(num_vertices: u32) -> Self {
        AddressMap { mode: AddressingMode::Direct, base: 0, subtrahend: 0, num_vertices }
    }

    /// Offset mapping over identifiers `base..base + num_vertices`.
    pub fn offset(base: VertexId, num_vertices: u32) -> Self {
        AddressMap { mode: AddressingMode::Offset, base, subtrahend: base, num_vertices }
    }

    /// Desolate-memory mapping over identifiers `base..base + num_vertices`:
    /// behaves like direct mapping and wastes the first `base` slots.
    pub fn desolate(base: VertexId, num_vertices: u32) -> Self {
        AddressMap { mode: AddressingMode::DesolateMemory, base, subtrahend: 0, num_vertices }
    }

    /// The strategy in use.
    pub fn mode(&self) -> AddressingMode {
        self.mode
    }

    /// Smallest external identifier.
    pub fn base(&self) -> VertexId {
        self.base
    }

    /// Number of real vertices (excluding desolate waste).
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of array slots the framework must allocate per vertex array.
    ///
    /// Equal to the vertex count except under desolate memory, where the
    /// unused prefix is also allocated.
    pub fn slots(&self) -> usize {
        self.num_vertices as usize + self.wasted_slots()
    }

    /// Slots allocated but never used (non-zero only for desolate memory).
    pub fn wasted_slots(&self) -> usize {
        match self.mode {
            AddressingMode::DesolateMemory => self.base as usize,
            _ => 0,
        }
    }

    /// Location of the vertex with external identifier `id`.
    #[inline(always)]
    pub fn index_of(&self, id: VertexId) -> VertexIndex {
        debug_assert!(self.contains(id), "id {id} outside [{}, {})", self.base, self.base as u64 + self.num_vertices as u64);
        id - self.subtrahend
    }

    /// External identifier of the vertex stored at `index`.
    #[inline(always)]
    pub fn id_of(&self, index: VertexIndex) -> VertexId {
        index + self.subtrahend
    }

    /// Whether `id` names a real vertex of this graph.
    #[inline]
    pub fn contains(&self, id: VertexId) -> bool {
        id >= self.base && u64::from(id) < u64::from(self.base) + u64::from(self.num_vertices)
    }

    /// Whether array slot `index` holds a real vertex (false only for the
    /// desolate prefix).
    #[inline]
    pub fn is_live_slot(&self, index: VertexIndex) -> bool {
        match self.mode {
            AddressingMode::DesolateMemory => index >= self.base && index - self.base < self.num_vertices,
            _ => index < self.num_vertices,
        }
    }

    /// Iterator over the live slot indices, in increasing order.
    pub fn live_slots(&self) -> impl Iterator<Item = VertexIndex> + '_ {
        let start = match self.mode {
            AddressingMode::DesolateMemory => self.base,
            _ => 0,
        };
        start..start + self.num_vertices
    }
}

/// The conventional hashmap addressing layer (Section 5's strawman).
///
/// Only used by the addressing ablation benchmark; the framework proper
/// never routes through it.
#[derive(Debug, Clone)]
pub struct HashAddressMap {
    map: HashMap<VertexId, VertexIndex>,
    ids: Vec<VertexId>,
}

impl HashAddressMap {
    /// Build the map for identifiers `base..base + num_vertices`, assigning
    /// indices in identifier order (the same layout the array strategies
    /// produce, so lookups are comparable).
    pub fn new(base: VertexId, num_vertices: u32) -> Self {
        let mut map = HashMap::with_capacity(num_vertices as usize);
        let mut ids = Vec::with_capacity(num_vertices as usize);
        for i in 0..num_vertices {
            map.insert(base + i, i);
            ids.push(base + i);
        }
        HashAddressMap { map, ids }
    }

    /// Location of the vertex with identifier `id`, or `None`.
    #[inline]
    pub fn index_of(&self, id: VertexId) -> Option<VertexIndex> {
        self.map.get(&id).copied()
    }

    /// Identifier of the vertex at `index`.
    #[inline]
    pub fn id_of(&self, index: VertexIndex) -> VertexId {
        self.ids[index as usize]
    }

    /// Approximate heap bytes consumed by the hashmap layer, for the
    /// memory-footprint comparison of the addressing ablation.
    pub fn approx_bytes(&self) -> usize {
        // Each occupied entry stores key + value; std's hashbrown tables
        // keep 1 control byte per bucket and hold at most 7/8 load.
        let entry = std::mem::size_of::<(VertexId, VertexIndex)>() + 1;
        let buckets = (self.map.len() * 8).div_ceil(7).next_power_of_two();
        buckets * entry + self.ids.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapping_is_identity() {
        let m = AddressMap::direct(10);
        for id in 0..10 {
            assert_eq!(m.index_of(id), id);
            assert_eq!(m.id_of(id), id);
        }
        assert_eq!(m.slots(), 10);
        assert_eq!(m.wasted_slots(), 0);
    }

    #[test]
    fn offset_mapping_subtracts_base() {
        let m = AddressMap::offset(100, 5);
        assert_eq!(m.index_of(100), 0);
        assert_eq!(m.index_of(104), 4);
        assert_eq!(m.id_of(0), 100);
        assert_eq!(m.slots(), 5);
        assert_eq!(m.wasted_slots(), 0);
    }

    #[test]
    fn desolate_memory_wastes_prefix() {
        // The paper's datasets are 1-based: one wasted slot.
        let m = AddressMap::desolate(1, 4);
        assert_eq!(m.index_of(1), 1);
        assert_eq!(m.index_of(4), 4);
        assert_eq!(m.slots(), 5);
        assert_eq!(m.wasted_slots(), 1);
        assert!(!m.is_live_slot(0));
        assert!(m.is_live_slot(1));
        assert!(m.is_live_slot(4));
    }

    #[test]
    fn live_slots_skip_desolate_prefix() {
        let m = AddressMap::desolate(3, 2);
        assert_eq!(m.live_slots().collect::<Vec<_>>(), vec![3, 4]);
        let d = AddressMap::direct(3);
        assert_eq!(d.live_slots().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn contains_checks_range() {
        let m = AddressMap::offset(10, 3);
        assert!(!m.contains(9));
        assert!(m.contains(10));
        assert!(m.contains(12));
        assert!(!m.contains(13));
    }

    #[test]
    fn contains_handles_u32_extremes() {
        let m = AddressMap::offset(u32::MAX - 2, 3);
        assert!(m.contains(u32::MAX));
        assert!(!m.contains(u32::MAX - 3));
        assert_eq!(m.index_of(u32::MAX), 2);
    }

    #[test]
    fn hash_map_matches_array_layout() {
        let h = HashAddressMap::new(7, 5);
        let a = AddressMap::offset(7, 5);
        for id in 7..12 {
            assert_eq!(h.index_of(id), Some(a.index_of(id)));
            assert_eq!(h.id_of(a.index_of(id)), id);
        }
        assert_eq!(h.index_of(6), None);
        assert_eq!(h.index_of(12), None);
        assert!(h.approx_bytes() > 0);
    }
}
