//! Error type shared by graph construction and the file-format loaders.

use std::fmt;

/// Everything that can go wrong while building or loading a graph.
#[derive(Debug)]
pub enum GraphError {
    /// The builder was asked to produce a graph with no vertices.
    EmptyGraph,
    /// Direct mapping was requested but the smallest identifier is not 0.
    DirectMappingNeedsZeroBase {
        /// The smallest identifier actually present.
        min_id: u32,
    },
    /// An edge endpoint falls outside the declared identifier range.
    IdOutOfRange {
        /// The offending identifier.
        id: u32,
        /// Inclusive lower bound of the accepted range.
        base: u32,
        /// Number of vertices, i.e. accepted ids are `base..base + count`.
        count: u64,
    },
    /// Weighted and unweighted edges were mixed in one builder.
    MixedWeightedness,
    /// The identifier space would overflow the `u32` index type.
    TooManyVertices(u64),
    /// A parse failure in one of the loaders, with 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed binary-format header or payload.
    BadBinary(String),
    /// A structurally valid binary payload whose checksum disagrees with
    /// its contents: bit rot or a torn write, as opposed to the wrong
    /// format. Distinguished from [`GraphError::BadBinary`] so callers
    /// can suggest regenerating the cache rather than fixing the input.
    Corrupt(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
            GraphError::DirectMappingNeedsZeroBase { min_id } => write!(
                f,
                "direct mapping requires identifiers to start at 0, found minimum id {min_id}"
            ),
            GraphError::IdOutOfRange { id, base, count } => write!(
                f,
                "vertex id {id} outside declared range [{base}, {})",
                u64::from(*base) + count
            ),
            GraphError::MixedWeightedness => {
                write!(f, "cannot mix weighted and unweighted edges in one graph")
            }
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertex slots exceed the u32 index space")
            }
            GraphError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::BadBinary(m) => write!(f, "malformed binary graph: {m}"),
            GraphError::Corrupt(m) => write!(f, "corrupt binary graph: {m}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
