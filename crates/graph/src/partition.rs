//! Vertex partitioning for the distributed baseline simulator.
//!
//! Pregel+ assigns vertices to workers by hashing the vertex identifier
//! (its default is `id mod workers`). The simulator reuses this module to
//! place vertices, to decide which messages are local versus remote, and
//! to size per-worker memory.

use crate::csr::Graph;
use crate::ids::{VertexId, VertexIndex};

/// Assignment of every vertex to one of `num_workers` workers.
#[derive(Debug, Clone)]
pub struct Partitioning {
    num_workers: usize,
    /// Worker of each internal slot (desolate slots get worker 0; they
    /// hold no vertex so it never matters).
    owner: Vec<u32>,
    /// Slots owned by each worker, in slot order.
    members: Vec<Vec<VertexIndex>>,
}

impl Partitioning {
    /// Pregel+-style hash partitioning: vertex with external id `i` goes
    /// to worker `i mod num_workers`.
    pub fn hash(g: &Graph, num_workers: usize) -> Partitioning {
        assert!(num_workers >= 1);
        let map = g.address_map();
        let mut owner = vec![0u32; g.num_slots()];
        let mut members = vec![Vec::new(); num_workers];
        for slot in map.live_slots() {
            let id = map.id_of(slot);
            let w = (id as usize) % num_workers;
            owner[slot as usize] = w as u32;
            members[w].push(slot);
        }
        Partitioning { num_workers, owner, members }
    }

    /// Contiguous range partitioning (used by the ablation comparing
    /// partitioning strategies; Pregel+ also ships a range partitioner).
    pub fn range(g: &Graph, num_workers: usize) -> Partitioning {
        assert!(num_workers >= 1);
        let map = g.address_map();
        let n = g.num_vertices();
        let mut owner = vec![0u32; g.num_slots()];
        let mut members = vec![Vec::new(); num_workers];
        for (pos, slot) in map.live_slots().enumerate() {
            let w = pos * num_workers / n.max(1);
            owner[slot as usize] = w as u32;
            members[w].push(slot);
        }
        Partitioning { num_workers, owner, members }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Worker owning the vertex at `slot`.
    #[inline]
    pub fn owner_of(&self, slot: VertexIndex) -> u32 {
        self.owner[slot as usize]
    }

    /// Worker owning the vertex with external identifier `id` under hash
    /// partitioning semantics (no table lookup needed).
    #[inline]
    pub fn hash_owner_of_id(&self, id: VertexId) -> u32 {
        ((id as usize) % self.num_workers) as u32
    }

    /// Slots owned by `worker`.
    pub fn members(&self, worker: usize) -> &[VertexIndex] {
        &self.members[worker]
    }

    /// Size of the largest partition divided by the ideal size — 1.0 is
    /// perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.members.iter().map(Vec::len).sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.num_workers as f64;
        let max = self.members.iter().map(Vec::len).max().unwrap_or(0) as f64;
        max / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NeighborMode};

    fn cycle(n: u32) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.build().unwrap()
    }

    #[test]
    fn hash_partitioning_follows_id_modulo() {
        let g = cycle(10);
        let p = Partitioning::hash(&g, 3);
        for slot in g.address_map().live_slots() {
            let id = g.id_of(slot);
            assert_eq!(p.owner_of(slot), id % 3);
            assert_eq!(p.hash_owner_of_id(id), id % 3);
        }
    }

    #[test]
    fn every_vertex_is_owned_exactly_once() {
        let g = cycle(17);
        let p = Partitioning::hash(&g, 4);
        let total: usize = (0..4).map(|w| p.members(w).len()).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn range_partitioning_is_contiguous_and_balanced() {
        let g = cycle(100);
        let p = Partitioning::range(&g, 4);
        for w in 0..4 {
            assert_eq!(p.members(w).len(), 25);
            let m = p.members(w);
            assert!(m.windows(2).all(|ab| ab[0] < ab[1]));
        }
        assert!((p.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_worker_owns_everything() {
        let g = cycle(5);
        let p = Partitioning::hash(&g, 1);
        assert_eq!(p.members(0).len(), 5);
        assert!((p.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn desolate_slots_are_not_members() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        let g = b.build().unwrap();
        let p = Partitioning::hash(&g, 2);
        let total: usize = (0..2).map(|w| p.members(w).len()).sum();
        assert_eq!(total, 2);
    }
}
