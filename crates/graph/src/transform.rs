//! Whole-graph transformations.
//!
//! iPregel processes static graphs (Section 3.3); real datasets need
//! cleaning *before* they become static — KONECT's undirected files list
//! each edge once, crawls carry duplicate and self-loop edges, and
//! analyses like k-core or Hashmin-as-connected-components want the
//! symmetrised graph. These helpers operate on raw edge lists (the form
//! loaders and generators produce) so a cleaned graph is built exactly
//! once.

use std::collections::HashMap;

use crate::csr::{Graph, Weight};
use crate::ids::VertexId;

/// Add the reverse of every edge (weights copied). Does not deduplicate.
pub fn symmetrize(edges: &mut Vec<(VertexId, VertexId)>) {
    let n = edges.len();
    edges.reserve(n);
    for i in 0..n {
        let (u, v) = edges[i];
        edges.push((v, u));
    }
}

/// Weighted variant of [`symmetrize`].
pub fn symmetrize_weighted(edges: &mut Vec<(VertexId, VertexId, Weight)>) {
    let n = edges.len();
    edges.reserve(n);
    for i in 0..n {
        let (u, v, w) = edges[i];
        edges.push((v, u, w));
    }
}

/// Remove self-loops in place, preserving order.
pub fn remove_self_loops(edges: &mut Vec<(VertexId, VertexId)>) {
    edges.retain(|&(u, v)| u != v);
}

/// Remove duplicate directed edges, keeping first occurrences in order.
pub fn dedup_edges(edges: &mut Vec<(VertexId, VertexId)>) {
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    edges.retain(|&e| seen.insert(e));
}

/// Reverse every edge (transpose the graph).
pub fn reverse_edges(edges: &mut [(VertexId, VertexId)]) {
    for e in edges.iter_mut() {
        *e = (e.1, e.0);
    }
}

/// Renumber arbitrary (possibly sparse) identifiers to the compact range
/// `0..k` in first-appearance order, returning the old→new mapping —
/// how a dataset violating the paper's consecutive-ids requirement
/// (Section 3.3) is made admissible.
pub fn compact_ids(edges: &mut [(VertexId, VertexId)]) -> HashMap<VertexId, VertexId> {
    let mut remap: HashMap<VertexId, VertexId> = HashMap::new();
    for e in edges.iter_mut() {
        let next = remap.len() as VertexId;
        let u = *remap.entry(e.0).or_insert(next);
        let next = remap.len() as VertexId;
        let v = *remap.entry(e.1).or_insert(next);
        *e = (u, v);
    }
    remap
}

/// Keep only edges inside the largest weakly-connected component of an
/// already-built graph, returned as a fresh edge list in external ids.
/// (Weak connectivity = connectivity of the symmetrised graph.)
pub fn largest_component_edges(g: &Graph) -> Vec<(VertexId, VertexId)> {
    assert!(g.has_out_edges(), "largest_component_edges walks out-adjacency");
    let map = g.address_map();
    let slots = g.num_slots();
    // Union-find over the symmetrised edge set.
    let mut parent: Vec<u32> = (0..slots as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for v in map.live_slots() {
        for &u in g.out_neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, u));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    let mut size: HashMap<u32, u64> = HashMap::new();
    for v in map.live_slots() {
        *size.entry(find(&mut parent, v)).or_default() += 1;
    }
    let Some((&biggest, _)) = size.iter().max_by_key(|(_, &s)| s) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for v in map.live_slots() {
        if find(&mut parent, v) == biggest {
            for &u in g.out_neighbors(v) {
                out.push((map.id_of(v), map.id_of(u)));
            }
        }
    }
    out
}

/// Edges of the subgraph induced by the vertices satisfying `keep`
/// (both endpoints must satisfy it), in external ids.
pub fn induced_subgraph_edges(
    g: &Graph,
    keep: impl Fn(VertexId) -> bool,
) -> Vec<(VertexId, VertexId)> {
    assert!(g.has_out_edges(), "induced_subgraph_edges walks out-adjacency");
    let map = g.address_map();
    let mut out = Vec::new();
    for v in map.live_slots() {
        let vid = map.id_of(v);
        if !keep(vid) {
            continue;
        }
        for &u in g.out_neighbors(v) {
            let uid = map.id_of(u);
            if keep(uid) {
                out.push((vid, uid));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NeighborMode};

    #[test]
    fn symmetrize_appends_reversals() {
        let mut e = vec![(0, 1), (2, 3)];
        symmetrize(&mut e);
        assert_eq!(e, vec![(0, 1), (2, 3), (1, 0), (3, 2)]);
    }

    #[test]
    fn symmetrize_weighted_copies_weights() {
        let mut e = vec![(0, 1, 9)];
        symmetrize_weighted(&mut e);
        assert_eq!(e, vec![(0, 1, 9), (1, 0, 9)]);
    }

    #[test]
    fn self_loops_are_removed() {
        let mut e = vec![(0, 0), (0, 1), (1, 1), (1, 0)];
        remove_self_loops(&mut e);
        assert_eq!(e, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn dedup_keeps_first_occurrence() {
        let mut e = vec![(0, 1), (1, 2), (0, 1), (1, 2), (2, 0)];
        dedup_edges(&mut e);
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn reverse_transposes() {
        let mut e = vec![(0, 1), (2, 3)];
        reverse_edges(&mut e);
        assert_eq!(e, vec![(1, 0), (3, 2)]);
    }

    #[test]
    fn compact_ids_renumbers_densely() {
        let mut e = vec![(100, 5000), (5000, 42), (100, 42)];
        let remap = compact_ids(&mut e);
        assert_eq!(e, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(remap[&100], 0);
        assert_eq!(remap[&5000], 1);
        assert_eq!(remap[&42], 2);
    }

    #[test]
    fn largest_component_extraction() {
        // Component {0,1,2} with 3 edges; component {3,4} with 1.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let mut kept = largest_component_edges(&g);
        kept.sort();
        assert_eq!(kept, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn largest_component_is_weakly_connected() {
        // 0→1←2: weakly one component despite no directed path 0→2.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        b.add_edge(3, 4); // smaller component
        let g = b.build().unwrap();
        let kept = largest_component_edges(&g);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        // Keep {1,2,3}: edges touching vertex 0 are dropped.
        let mut kept = induced_subgraph_edges(&g, |id| id >= 1);
        kept.sort();
        assert_eq!(kept, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn cleaned_edges_build_into_engineable_graphs() {
        let mut e = vec![(7u32, 7u32), (7, 9), (9, 7), (7, 9)];
        remove_self_loops(&mut e);
        dedup_edges(&mut e);
        compact_ids(&mut e);
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for (u, v) in e {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 2);
    }
}
