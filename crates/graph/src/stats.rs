//! Per-graph statistics: the numbers behind Tables 1 and 2 and the
//! density analysis of Section 7.2.

use std::fmt;

use ipregel_par::prelude::*;

use crate::csr::Graph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices (|V| column of Tables 1 and 2).
    pub vertices: u64,
    /// Number of directed edges (|E| column).
    pub edges: u64,
    /// Edge density `|E| / (|V|·(|V|−1))`.
    pub density: f64,
    /// Average out-degree `|E| / |V|` — the "graph density" factor the
    /// paper's Section 7.2 analysis leans on.
    pub avg_out_degree: f64,
    /// Largest out-degree.
    pub max_out_degree: u32,
    /// Number of vertices with no out-edges.
    pub sinks: u64,
}

impl GraphStats {
    /// Compute statistics for `g` (parallel over slots).
    pub fn compute(g: &Graph) -> GraphStats {
        let slots = g.num_slots() as u32;
        let map = g.address_map();
        let (max_out, sinks) = (0..slots)
            .into_par_iter()
            .filter(|&v| map.is_live_slot(v))
            .map(|v| {
                let d = g.out_degree(v);
                (d, u64::from(d == 0))
            })
            .reduce(|| (0, 0), |a, b| (a.0.max(b.0), a.1 + b.1));
        let n = g.num_vertices() as u64;
        let m = g.num_edges();
        GraphStats {
            vertices: n,
            edges: m,
            density: if n > 1 { m as f64 / (n as f64 * (n as f64 - 1.0)) } else { 0.0 },
            avg_out_degree: if n > 0 { m as f64 / n as f64 } else { 0.0 },
            max_out_degree: max_out,
            sinks,
        }
    }

    /// Out-degree histogram in power-of-two buckets: entry `i ≥ 1` counts
    /// vertices with out-degree in `[2^(i−1), 2^i − 1]`; entry 0 counts
    /// degree-0 vertices.
    pub fn degree_histogram(g: &Graph) -> Vec<u64> {
        let map = g.address_map();
        let mut hist = vec![0u64; 34];
        for v in map.live_slots() {
            let d = g.out_degree(v);
            let bucket = if d == 0 { 0 } else { 32 - d.leading_zeros() as usize };
            hist[bucket.min(33)] += 1;
        }
        while hist.last() == Some(&0) {
            hist.pop();
        }
        hist
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V| = {:>12}  |E| = {:>14}  avg out-degree = {:>7.2}  max = {}  sinks = {}",
            group_digits(self.vertices),
            group_digits(self.edges),
            self.avg_out_degree,
            self.max_out_degree,
            self.sinks
        )
    }
}

/// Format an integer with comma separators, as in the paper's tables
/// (`18,268,992`).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NeighborMode};

    fn star(n: u32) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 1..n {
            b.add_edge(0, i);
        }
        b.build().unwrap()
    }

    #[test]
    fn star_stats() {
        let s = GraphStats::compute(&star(5));
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.sinks, 4);
        assert!((s.avg_out_degree - 0.8).abs() < 1e-12);
        assert!((s.density - 4.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn stats_skip_desolate_slots() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 2);
        assert_eq!(s.sinks, 1); // vertex 2 only; the desolate slot is not a sink
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = GraphStats::degree_histogram(&star(5));
        // one vertex of degree 4 (bucket 3: 4..=7), four of degree 0.
        assert_eq!(h[0], 4);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn digit_grouping_matches_paper_format() {
        assert_eq!(group_digits(18_268_992), "18,268,992");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(0), "0");
    }
}
