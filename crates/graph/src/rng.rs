//! In-tree pseudo-random generation for the graph generators,
//! replacing the `rand` crate's `StdRng` surface.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the
//! standard pairing recommended by the xoshiro authors — which passes
//! the usual statistical batteries and is more than adequate for
//! synthetic-graph generation. The API mirrors exactly the slice of
//! `rand` the generators used (`StdRng::seed_from_u64`,
//! `random_range` over half-open and inclusive integer ranges,
//! `random::<f64>()`), so the call sites changed only their imports.
//!
//! **Streams are not those of `rand::StdRng`** (which is ChaCha-based):
//! a fixed seed produces a different — but equally deterministic —
//! graph than pre-switch builds. Everything downstream derives
//! expectations from the generated graph itself rather than from
//! pinned streams, so determinism, not stream identity, is the
//! contract.

/// Seeding entry point, mirroring `rand::SeedableRng`'s one used
/// method.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-drawing methods, mirroring the used slice of `rand::Rng`.
pub trait RngExt {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (only `f64` in `[0,1)` is
    /// implemented — the single form the generators draw).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types drawable via [`RngExt::random`].
pub trait StandardSample {
    /// Map 64 uniform bits to the value.
    fn sample(bits: u64) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 significant bits.
    fn sample(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges drawable via [`RngExt::random_range`].
pub trait UniformRange {
    /// The element type.
    type Output;
    /// Draw uniformly from the range; panics if it is empty.
    fn sample<R: RngExt>(self, rng: &mut R) -> Self::Output;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = u128::from(self.end as u64 - self.start as u64);
                let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                self.start + (wide % span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sampling range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

uniform_int_range!(u32, u64, usize);

/// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // the xoshiro reference code prescribes; never all-zero.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngExt for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `rand`-compatible module path for the generator type, so imports
/// read the same as before the switch (`use …::rngs::StdRng`).
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
            let w = rng.random_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let x = rng.random_range(0u32..3);
            assert!(x < 3);
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover 0..10");
    }

    #[test]
    fn unit_floats_stay_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..100).map(|_| rng.random::<f64>()).collect();
        assert!(draws.iter().all(|&f| (0.0..1.0).contains(&f)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.3..0.7).contains(&mean), "rough uniformity, mean={mean}");
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the state [1, 2, 3, 4],
        // cross-checked against the reference C implementation.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41_943_041);
        assert_eq!(rng.next_u64(), 58_720_359);
    }
}
