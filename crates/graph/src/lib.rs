//! Graph substrate for the iPregel reproduction.
//!
//! This crate provides everything the vertex-centric framework needs from a
//! graph: compact CSR adjacency storage, the identifier-to-location
//! *addressing* schemes of Section 5 of the paper (direct mapping, offset
//! mapping, desolate memory), file-format loaders for the graph collections
//! the paper uses (KONECT, DIMACS, plain edge lists, a compact binary
//! format), deterministic synthetic generators standing in for the paper's
//! datasets, per-graph statistics (Tables 1 and 2), and hash partitioning
//! for the distributed baseline simulator.
//!
//! # Quick example
//!
//! ```
//! use ipregel_graph::{GraphBuilder, NeighborMode};
//!
//! let mut b = GraphBuilder::new(NeighborMode::Both);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build().unwrap();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_neighbors(0), &[1]);
//! assert_eq!(g.in_neighbors(0), &[2]);
//! ```

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

pub mod builder;
pub mod checksum;
pub mod csr;
pub mod error;
pub mod generators;
pub mod ids;
pub mod loaders;
pub mod partition;
pub mod rng;
pub mod schedule;
pub mod stats;
pub mod transform;
pub mod validation;

pub use builder::{GraphBuilder, NeighborMode};
pub use csr::{Csr, Graph};
pub use error::GraphError;
pub use ids::{AddressMap, AddressingMode, HashAddressMap, VertexId, VertexIndex};
pub use stats::GraphStats;
