//! Incremental construction of [`Graph`]s.
//!
//! The builder collects raw edges with *external* identifiers, decides an
//! addressing strategy (Section 5 of the paper), validates the identifier
//! space, and materialises the CSR(s) requested by the neighbour mode —
//! the Rust analogue of iPregel's tailor-made vertex internals, where the
//! user's compile flags select an in-only, out-only or in-and-out layout.

use crate::csr::{Csr, Graph, Weight};
use crate::error::GraphError;
use crate::ids::{AddressMap, AddressingMode, VertexId, VertexIndex};

/// Which adjacency directions the built graph retains.
///
/// Mirrors Section 6.2: "iPregel proposes several tailor-made internals
/// (in only, out only, in and out)". Out-degrees are always retained (4
/// bytes per slot) because PageRank-style programs need them even when
/// running on the in-only pull engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborMode {
    /// Keep only out-edges (push engines).
    OutOnly,
    /// Keep only in-edges (pull engine without selection bypass).
    InOnly,
    /// Keep both directions (pull engine with selection bypass).
    Both,
}

/// How the builder should pick the addressing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AddressingChoice {
    /// `Direct` when identifiers start at 0; otherwise `DesolateMemory`
    /// when the wasted prefix is small (≤ 1024 slots or ≤ 1% of the
    /// graph), else `Offset`. This is the policy the paper follows for its
    /// 1-based datasets ("offset mapping with desolate memory").
    #[default]
    Auto,
    /// Force a specific mode. Forcing [`AddressingMode::Direct`] on a
    /// graph whose identifiers do not start at 0 is an error.
    Force(AddressingMode),
}

/// Largest desolate prefix `Auto` will accept unconditionally.
const DESOLATE_ABS_LIMIT: u32 = 1024;

/// Builder for [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<Weight>,
    weighted: Option<bool>,
    mode: NeighborMode,
    addressing: AddressingChoice,
    declared_range: Option<(VertexId, u32)>,
}

impl GraphBuilder {
    /// New builder retaining the given adjacency directions.
    pub fn new(mode: NeighborMode) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            weights: Vec::new(),
            weighted: None,
            mode,
            addressing: AddressingChoice::Auto,
            declared_range: None,
        }
    }

    /// Reserve capacity for `n` edges.
    pub fn with_capacity(mode: NeighborMode, n: usize) -> Self {
        let mut b = GraphBuilder::new(mode);
        b.edges.reserve(n);
        b
    }

    /// Override the automatic addressing choice.
    pub fn addressing(mut self, choice: AddressingChoice) -> Self {
        self.addressing = choice;
        self
    }

    /// Declare the identifier range up front: identifiers are
    /// `base..base + count`. Needed when the graph has isolated vertices
    /// at the extremes of the range (the paper's loaders get the range
    /// from file headers, e.g. DIMACS `p sp n m`).
    pub fn declare_id_range(mut self, base: VertexId, count: u32) -> Self {
        self.declared_range = Some((base, count));
        self
    }

    /// Add an unweighted directed edge between external identifiers.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!(self.weighted != Some(true), "mixed weighted/unweighted edges");
        self.weighted = Some(false);
        self.edges.push((src, dst));
    }

    /// Add a weighted directed edge between external identifiers.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        debug_assert!(self.weighted != Some(false), "mixed weighted/unweighted edges");
        self.weighted = Some(true);
        self.edges.push((src, dst));
        self.weights.push(w);
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalise into an immutable [`Graph`].
    pub fn build(self) -> Result<Graph, GraphError> {
        // Re-check weightedness defensively (debug_asserts vanish in release).
        if self.weighted == Some(true) && self.weights.len() != self.edges.len() {
            return Err(GraphError::MixedWeightedness);
        }

        let (base, count) = match self.declared_range {
            Some(r) => r,
            None => infer_range(&self.edges)?,
        };
        if count == 0 {
            return Err(GraphError::EmptyGraph);
        }

        let map = choose_map(self.addressing, base, count)?;
        if map.slots() > u32::MAX as usize {
            return Err(GraphError::TooManyVertices(map.slots() as u64));
        }

        // Translate endpoints to internal slots, validating the range.
        let mut internal = Vec::with_capacity(self.edges.len());
        for &(s, d) in &self.edges {
            if !map.contains(s) {
                return Err(GraphError::IdOutOfRange { id: s, base, count: u64::from(count) });
            }
            if !map.contains(d) {
                return Err(GraphError::IdOutOfRange { id: d, base, count: u64::from(count) });
            }
            internal.push((map.index_of(s), map.index_of(d)));
        }

        let slots = map.slots();
        let weights = if self.weighted == Some(true) { Some(self.weights.as_slice()) } else { None };

        let out = match self.mode {
            NeighborMode::OutOnly | NeighborMode::Both => {
                Some(Csr::from_edges(slots, &internal, weights))
            }
            NeighborMode::InOnly => None,
        };
        let incoming = match self.mode {
            NeighborMode::InOnly | NeighborMode::Both => {
                let mut rev: Vec<(VertexIndex, VertexIndex)> =
                    internal.iter().map(|&(s, d)| (d, s)).collect();
                // Weights follow their edge under reversal: from_edges keys on
                // the (new) source, so pass the same parallel weight slice.
                let w = weights;
                let csr = Csr::from_edges(slots, &rev, w);
                rev.clear();
                Some(csr)
            }
            NeighborMode::OutOnly => None,
        };
        let out_degrees = if out.is_none() {
            let mut d = vec![0u32; slots];
            for &(s, _) in &internal {
                d[s as usize] += 1;
            }
            Some(d)
        } else {
            None
        };

        let num_edges = internal.len() as u64;
        Ok(Graph::from_parts(map, out, incoming, out_degrees, num_edges))
    }
}

/// Infer `(base, count)` from the edge endpoints.
fn infer_range(edges: &[(VertexId, VertexId)]) -> Result<(VertexId, u32), GraphError> {
    if edges.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    let mut min = VertexId::MAX;
    let mut max = 0;
    for &(s, d) in edges {
        min = min.min(s).min(d);
        max = max.max(s).max(d);
    }
    let count = u64::from(max) - u64::from(min) + 1;
    if count > u64::from(u32::MAX) {
        return Err(GraphError::TooManyVertices(count));
    }
    Ok((min, count as u32))
}

fn choose_map(
    choice: AddressingChoice,
    base: VertexId,
    count: u32,
) -> Result<AddressMap, GraphError> {
    match choice {
        AddressingChoice::Force(AddressingMode::Direct) => {
            if base != 0 {
                return Err(GraphError::DirectMappingNeedsZeroBase { min_id: base });
            }
            Ok(AddressMap::direct(count))
        }
        AddressingChoice::Force(AddressingMode::Offset) => Ok(AddressMap::offset(base, count)),
        AddressingChoice::Force(AddressingMode::DesolateMemory) => {
            Ok(AddressMap::desolate(base, count))
        }
        AddressingChoice::Auto => {
            if base == 0 {
                Ok(AddressMap::direct(count))
            } else if base <= DESOLATE_ABS_LIMIT || u64::from(base) * 100 <= u64::from(count) {
                Ok(AddressMap::desolate(base, count))
            } else {
                Ok(AddressMap::offset(base, count))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(mode: NeighborMode) -> Graph {
        let mut b = GraphBuilder::new(mode);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build().unwrap()
    }

    #[test]
    fn zero_based_graph_gets_direct_mapping() {
        let g = triangle(NeighborMode::OutOnly);
        assert_eq!(g.address_map().mode(), AddressingMode::Direct);
        assert_eq!(g.num_slots(), 3);
    }

    #[test]
    fn one_based_graph_gets_desolate_memory() {
        // Both paper datasets are 1-based and processed with "offset
        // mapping with desolate memory" (Section 7.1.3).
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        assert_eq!(g.address_map().mode(), AddressingMode::DesolateMemory);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_slots(), 4);
        assert_eq!(g.out_neighbors(g.index_of(1)), &[2]);
    }

    #[test]
    fn large_base_falls_back_to_offset() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(2_000_000, 2_000_001);
        let g = b.build().unwrap();
        assert_eq!(g.address_map().mode(), AddressingMode::Offset);
        assert_eq!(g.num_slots(), 2);
    }

    #[test]
    fn forcing_direct_on_offset_ids_errors() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly)
            .addressing(AddressingChoice::Force(AddressingMode::Direct));
        b.add_edge(5, 6);
        match b.build() {
            Err(GraphError::DirectMappingNeedsZeroBase { min_id: 5 }) => {}
            other => panic!("expected DirectMappingNeedsZeroBase, got {other:?}"),
        }
    }

    #[test]
    fn in_edges_are_reversed_out_edges() {
        let g = triangle(NeighborMode::Both);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.in_degree(2), 1);
    }

    #[test]
    fn in_only_mode_still_knows_out_degrees() {
        let g = triangle(NeighborMode::InOnly);
        assert!(!g.has_out_edges());
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 1);
    }

    #[test]
    fn reversed_weights_follow_their_edge() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(2, 1, 20);
        let g = b.build().unwrap();
        // in-neighbours of 1 are {0, 2} with weights {10, 20}.
        let ins = g.in_neighbors(1);
        let ws = g.in_csr().unwrap().weights_of(1).unwrap();
        let mut pairs: Vec<_> = ins.iter().zip(ws).map(|(&v, &w)| (v, w)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 10), (2, 20)]);
    }

    #[test]
    fn declared_range_allows_isolated_extremes() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, 10);
        b.add_edge(3, 4);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn out_of_declared_range_errors() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, 3);
        b.add_edge(1, 5);
        assert!(matches!(b.build(), Err(GraphError::IdOutOfRange { id: 5, .. })));
    }

    #[test]
    fn empty_builder_errors() {
        let b = GraphBuilder::new(NeighborMode::OutOnly);
        assert!(matches!(b.build(), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn self_loops_and_parallel_edges_are_preserved() {
        // Static graphs are stored verbatim; dedup is the loader's business.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.out_neighbors(0), &[0, 1, 1]);
        assert_eq!(g.num_edges(), 3);
    }
}
