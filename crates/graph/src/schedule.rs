//! Degree-aware chunking of a superstep's active list.
//!
//! The engines split each superstep's active vertices into contiguous
//! chunks and hand one chunk to each parallel task. Splitting by *vertex
//! count* — the obvious choice, and the paper's — collapses on power-law
//! graphs: a chunk that happens to contain a hub vertex carries millions
//! of edges while its siblings carry thousands, and the superstep runs at
//! the speed of the unluckiest thread (Capelli & Brown, arXiv:2010.01542,
//! call this "an extreme form of irregularity"; Yan et al.,
//! arXiv:1503.00626, make the same case for edge-proportional
//! partitioning). The cure is to cut chunks of approximately equal *edge*
//! weight instead.
//!
//! This module is the cut machinery; the policy choice lives on the
//! engine's `RunConfig` (`ipregel::Schedule`). Two entry points cover the
//! engines' two shapes of active list:
//!
//! * [`edge_balanced_range`] — the active list is the full contiguous
//!   slot range (scan selection, superstep 0, dense bypass supersteps).
//!   The CSR offsets array *is* the prefix-sum of edge weights, so each
//!   cut is a plain binary search: O(chunks · log |V|), no scan at all.
//! * [`edge_balanced_list`] — the active list is an arbitrary sorted
//!   subset (a drained bypass worklist). One O(active) pass builds the
//!   prefix weights, then the same binary-search cuts apply.
//!
//! Both weigh a vertex as `degree + 1`: the `+ 1` accounts for the
//! constant per-vertex cost (mailbox check, halt-flag write), so chunks
//! of zero-degree vertices still get bounded length and graphs with
//! uniform degree degrade gracefully to the count-balanced cut.
//!
//! Guarantee: every chunk's weight is below `total/chunks + max_vertex
//! weight` — optimal up to the indivisibility of single vertices (a hub's
//! chunk can never weigh less than the hub itself).

use crate::csr::Csr;
use crate::ids::VertexIndex;

/// A contiguous run `start..end` of *positions* in the active list being
/// chunked (equivalently, of slot indices when the active list is the
/// full slot range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First position (inclusive).
    pub start: usize,
    /// One past the last position.
    pub end: usize,
}

impl Chunk {
    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Number of chunks to actually cut: at most `max_chunks`, but never so
/// many that the *average* chunk falls below `min_len` items, and at
/// least one. `min_len` is the engines' `grain` knob: it bounds task
/// scheduling overhead, not individual chunk sizes.
pub fn effective_chunks(len: usize, max_chunks: usize, min_len: usize) -> usize {
    let cap = len / min_len.max(1);
    max_chunks.max(1).min(cap).max(1)
}

/// Cut `len` items into chunks of equal *count* — the classic split, kept
/// as the explicit baseline so every policy flows through the same chunk
/// loop (and therefore the same per-chunk load accounting).
pub fn count_balanced(len: usize, max_chunks: usize, min_len: usize) -> Vec<Chunk> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = effective_chunks(len, max_chunks, min_len);
    let mut out = Vec::with_capacity(chunks);
    let mut prev = 0usize;
    for k in 1..=chunks {
        let cut = len * k / chunks;
        if cut > prev {
            out.push(Chunk { start: prev, end: cut });
            prev = cut;
        }
    }
    out
}

/// Smallest `i` in `0..offsets.len()` with `offsets[i] + i * vcost >=
/// target`. The summand is monotone in `i` (offsets are nondecreasing),
/// so binary search applies; this is the `partition_point` of the implied
/// weight prefix without materialising it.
fn lower_bound(offsets: &[u64], vcost: u64, target: u64) -> usize {
    let (mut lo, mut hi) = (0usize, offsets.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if offsets[mid] + mid as u64 * vcost < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Cut the weight prefix `weights` (length `len + 1`, `weights[i]` = total
/// weight of items before position `i`) into at most `max_chunks` chunks
/// of approximately equal weight. `vcost` is added per item on the fly
/// (pass 1 when `weights` holds pure edge counts, 0 when the per-item
/// cost is already folded in). Cuts land at the first position whose
/// prefix reaches `k/chunks` of the total; an item heavier than the ideal
/// chunk weight absorbs the following cut targets, so oversized items
/// yield fewer, never heavier-than-necessary, chunks.
fn cut_by_weight(weights: &[u64], vcost: u64, max_chunks: usize, min_len: usize) -> Vec<Chunk> {
    let len = weights.len() - 1;
    if len == 0 {
        return Vec::new();
    }
    let chunks = effective_chunks(len, max_chunks, min_len);
    let total = u128::from(weights[len] + len as u64 * vcost);
    let mut out = Vec::with_capacity(chunks);
    let mut prev = 0usize;
    for k in 1..chunks {
        let target = (total * k as u128 / chunks as u128) as u64;
        let cut = lower_bound(weights, vcost, target).clamp(prev, len);
        if cut > prev {
            out.push(Chunk { start: prev, end: cut });
            prev = cut;
        }
    }
    if len > prev {
        out.push(Chunk { start: prev, end: len });
    }
    out
}

/// Edge-balanced cut of the **full contiguous slot range** covered by
/// `csr`. The CSR offsets array is already the edge-weight prefix sum, so
/// this performs no O(|V|) work: each of the (at most `max_chunks`) cut
/// points is one binary search over the offsets.
///
/// Chunk positions are slot indices: `Chunk { start, end }` covers slots
/// `start..end`.
pub fn edge_balanced_range(csr: &Csr, max_chunks: usize, min_len: usize) -> Vec<Chunk> {
    cut_by_weight(csr.offsets(), 1, max_chunks, min_len)
}

/// Edge-balanced cut of an **arbitrary active list** (typically a drained,
/// sorted selection-bypass worklist). Builds the weight prefix in one
/// O(active) pass — the same order of work the caller is about to spend
/// running the vertices — then cuts exactly like
/// [`edge_balanced_range`].
///
/// Chunk positions index into `active`, not into the slot space.
pub fn edge_balanced_list(
    active: &[VertexIndex],
    degree_of: impl Fn(VertexIndex) -> u64,
    max_chunks: usize,
    min_len: usize,
) -> Vec<Chunk> {
    let mut weights = Vec::with_capacity(active.len() + 1);
    let mut acc = 0u64;
    weights.push(0);
    for &v in active {
        acc += degree_of(v) + 1;
        weights.push(acc);
    }
    cut_by_weight(&weights, 0, max_chunks, min_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_of(degrees: &[u32]) -> Csr {
        let mut edges = Vec::new();
        let n = degrees.len() as u32;
        for (v, &d) in degrees.iter().enumerate() {
            for i in 0..d {
                edges.push((v as u32, i % n));
            }
        }
        Csr::from_edges(degrees.len(), &edges, None)
    }

    fn cover_exactly(chunks: &[Chunk], len: usize) {
        assert!(chunks.iter().all(|c| !c.is_empty()), "{chunks:?}");
        assert_eq!(chunks.first().map_or(0, |c| c.start), 0);
        assert_eq!(chunks.last().map_or(len, |c| c.end), len);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap/overlap in {chunks:?}");
        }
    }

    #[test]
    fn count_balanced_covers_evenly() {
        let chunks = count_balanced(100, 4, 1);
        cover_exactly(&chunks, 100);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() == 25));
    }

    #[test]
    fn grain_caps_chunk_count() {
        assert_eq!(effective_chunks(100, 16, 30), 3);
        assert_eq!(effective_chunks(5, 16, 100), 1);
        assert_eq!(effective_chunks(0, 16, 1), 1);
        let chunks = count_balanced(100, 16, 30);
        cover_exactly(&chunks, 100);
        assert_eq!(chunks.len(), 3);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(count_balanced(0, 4, 1).is_empty());
        assert!(edge_balanced_list(&[], |_| 0, 4, 1).is_empty());
    }

    #[test]
    fn uniform_degrees_degrade_to_count_balance() {
        let csr = csr_of(&[3; 64]);
        let chunks = edge_balanced_range(&csr, 8, 1);
        cover_exactly(&chunks, 64);
        assert_eq!(chunks.len(), 8);
        assert!(chunks.iter().all(|c| c.len() == 8), "{chunks:?}");
    }

    #[test]
    fn hub_gets_isolated() {
        // Vertex 5 carries 1000 edges in a 100-vertex graph of degree-1
        // vertices: edge-balancing must cut it (nearly) alone rather than
        // leave it inside a 25-vertex chunk.
        let mut degrees = [1u32; 100];
        degrees[5] = 1000;
        let csr = csr_of(&degrees);
        let chunks = edge_balanced_range(&csr, 4, 1);
        cover_exactly(&chunks, 100);
        let hub_chunk = chunks.iter().find(|c| c.start <= 5 && 5 < c.end).unwrap();
        // Ideal weight = (1099 edges + 100 vertices) / 4 ≈ 300; the hub
        // alone weighs 1001, so its chunk must stop right after it.
        assert_eq!(hub_chunk.end, 6, "{chunks:?}");
    }

    #[test]
    fn chunk_weight_never_exceeds_ideal_plus_max_vertex() {
        let degrees: Vec<u32> = (0..200).map(|i| (i * 7919) % 50).collect();
        let csr = csr_of(&degrees);
        let weight =
            |c: &Chunk| (c.start..c.end).map(|v| u64::from(degrees[v]) + 1).sum::<u64>();
        let total: u64 = (0..200).map(|v| u64::from(degrees[v]) + 1).sum();
        let max_w = u64::from(*degrees.iter().max().unwrap()) + 1;
        for chunks in [4, 7, 16] {
            let plan = edge_balanced_range(&csr, chunks, 1);
            cover_exactly(&plan, 200);
            let ideal = total / chunks as u64;
            for c in &plan {
                assert!(
                    weight(c) <= ideal + max_w,
                    "chunk {c:?} weighs {} > ideal {ideal} + max {max_w}",
                    weight(c)
                );
            }
        }
    }

    #[test]
    fn list_variant_matches_range_variant_on_full_range() {
        let degrees: Vec<u32> = (0..77).map(|i| (i * 31) % 13).collect();
        let csr = csr_of(&degrees);
        let active: Vec<VertexIndex> = (0..77).collect();
        let by_range = edge_balanced_range(&csr, 6, 1);
        let by_list = edge_balanced_list(&active, |v| u64::from(csr.degree(v)), 6, 1);
        assert_eq!(by_range, by_list);
    }

    #[test]
    fn list_variant_balances_a_sparse_subset() {
        // Active subset where one entry is a hub.
        let degree = |v: VertexIndex| if v == 40 { 500u64 } else { 2 };
        let active: Vec<VertexIndex> = (0..100).filter(|v| v % 2 == 0).collect();
        let chunks = edge_balanced_list(&active, degree, 5, 1);
        cover_exactly(&chunks, active.len());
        let hub_pos = active.iter().position(|&v| v == 40).unwrap();
        let hub_chunk =
            chunks.iter().find(|c| c.start <= hub_pos && hub_pos < c.end).unwrap();
        // The hub's weight jump absorbs the next cut target, so a cut
        // lands immediately after it: everything *behind* the hub ends up
        // in fresh chunks instead of piling onto the heavy one.
        assert_eq!(hub_chunk.end, hub_pos + 1, "{chunks:?}");
    }

    #[test]
    fn zero_degree_vertices_still_get_split() {
        // Pure edge weights would put all 100 isolated vertices in one
        // chunk; the +1 vertex cost keeps the cut meaningful.
        let csr = csr_of(&[0; 100]);
        let chunks = edge_balanced_range(&csr, 4, 1);
        cover_exactly(&chunks, 100);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() == 25), "{chunks:?}");
    }

    #[test]
    fn single_vertex_range() {
        let csr = csr_of(&[7]);
        let chunks = edge_balanced_range(&csr, 8, 1);
        assert_eq!(chunks, vec![Chunk { start: 0, end: 1 }]);
    }
}
