//! Compressed-sparse-row adjacency storage and the [`Graph`] type.
//!
//! iPregel stores all vertices in flat arrays indexed by the addressing
//! schemes of [`crate::ids`]. Adjacency is held in CSR form: one offsets
//! array of `slots + 1` entries and one packed targets array of `u32`
//! internal indices, optionally mirrored by a parallel weights array.
//!
//! A [`Graph`] owns up to two CSRs — out-edges and in-edges — matching the
//! paper's tailor-made vertex internals (Section 6.2): applications that
//! never look at in-neighbours simply never build the in-CSR, and the
//! memory accounting reflects that.

use crate::ids::{AddressMap, VertexId, VertexIndex};

/// Edge weight type. The paper's SSSP uses unit weights; the DIMACS road
/// graphs carry 32-bit integer distances.
pub type Weight = u32;

/// One-directional adjacency in compressed-sparse-row form, indexed by
/// internal vertex slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` is the range of `v`'s edges in `targets`.
    offsets: Vec<u64>,
    /// Edge targets as internal indices, grouped by source slot.
    targets: Vec<VertexIndex>,
    /// Optional per-edge weights, parallel to `targets`.
    weights: Option<Vec<Weight>>,
}

impl Csr {
    /// Build a CSR over `slots` slots from `(source_slot, target_slot)`
    /// pairs via counting sort. `weights`, when given, must parallel `edges`.
    pub fn from_edges(
        slots: usize,
        edges: &[(VertexIndex, VertexIndex)],
        weights: Option<&[Weight]>,
    ) -> Csr {
        debug_assert!(weights.is_none_or(|w| w.len() == edges.len()));
        let mut offsets = vec![0u64; slots + 1];
        for &(src, _) in edges {
            offsets[src as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut targets = vec![0 as VertexIndex; edges.len()];
        let mut wout = weights.map(|_| vec![0 as Weight; edges.len()]);
        let mut cursor = offsets.clone();
        for (e, &(src, dst)) in edges.iter().enumerate() {
            let at = cursor[src as usize] as usize;
            targets[at] = dst;
            if let (Some(w), Some(ws)) = (&mut wout, weights) {
                w[at] = ws[e];
            }
            cursor[src as usize] += 1;
        }
        Csr { offsets, targets, weights: wout }
    }

    /// Number of slots this CSR covers.
    pub fn num_slots(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges stored.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Neighbour slots of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexIndex) -> &[VertexIndex] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Weights parallel to [`Csr::neighbors`], or `None` for unweighted
    /// graphs.
    #[inline]
    pub fn weights_of(&self, v: VertexIndex) -> Option<&[Weight]> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.weights.as_ref().map(|w| &w[lo..hi])
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexIndex) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// The raw offsets array: `slots + 1` nondecreasing entries,
    /// `offsets[v]..offsets[v + 1]` delimiting `v`'s edges. Doubles as
    /// the edge-count prefix sum the degree-aware scheduler
    /// ([`crate::schedule`]) binary-searches to cut edge-balanced chunks.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Exact heap bytes held by this CSR.
    pub fn bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexIndex>()
            + self.weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }
}

/// An immutable, static graph: an [`AddressMap`] plus adjacency.
///
/// All accessor methods take and return *internal slot indices*; translate
/// with [`Graph::index_of`] / [`Graph::id_of`] at the boundary. The paper's
/// framework requires consecutive integral identifiers and static graphs
/// (Section 3.3) — both enforced at build time by
/// [`crate::builder::GraphBuilder`].
#[derive(Debug, Clone)]
pub struct Graph {
    map: AddressMap,
    out: Option<Csr>,
    incoming: Option<Csr>,
    /// Out-degrees when the out-CSR is absent (in-only internals); PageRank
    /// needs out-degrees regardless of engine direction.
    out_degrees: Option<Vec<u32>>,
    num_edges: u64,
}

impl Graph {
    pub(crate) fn from_parts(
        map: AddressMap,
        out: Option<Csr>,
        incoming: Option<Csr>,
        out_degrees: Option<Vec<u32>>,
        num_edges: u64,
    ) -> Graph {
        Graph { map, out, incoming, out_degrees, num_edges }
    }

    /// Number of real vertices.
    pub fn num_vertices(&self) -> usize {
        self.map.num_vertices() as usize
    }

    /// Number of array slots per vertex array (= vertices + desolate waste).
    pub fn num_slots(&self) -> usize {
        self.map.slots()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// The identifier ↔ index mapping in use.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Internal slot of the vertex with external identifier `id`.
    #[inline(always)]
    pub fn index_of(&self, id: VertexId) -> VertexIndex {
        self.map.index_of(id)
    }

    /// External identifier of the vertex at `index`.
    #[inline(always)]
    pub fn id_of(&self, index: VertexIndex) -> VertexId {
        self.map.id_of(index)
    }

    /// Whether the graph retains out-adjacency.
    pub fn has_out_edges(&self) -> bool {
        self.out.is_some()
    }

    /// Whether the graph retains in-adjacency.
    pub fn has_in_edges(&self) -> bool {
        self.incoming.is_some()
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.out.as_ref().or(self.incoming.as_ref()).is_some_and(Csr::is_weighted)
    }

    /// Out-neighbour slots of `v`.
    ///
    /// # Panics
    /// If the graph was built without out-adjacency.
    #[inline]
    pub fn out_neighbors(&self, v: VertexIndex) -> &[VertexIndex] {
        self.out.as_ref().expect("graph built without out-edges").neighbors(v)
    }

    /// In-neighbour slots of `v`.
    ///
    /// # Panics
    /// If the graph was built without in-adjacency.
    #[inline]
    pub fn in_neighbors(&self, v: VertexIndex) -> &[VertexIndex] {
        self.incoming.as_ref().expect("graph built without in-edges").neighbors(v)
    }

    /// Weights parallel to [`Graph::out_neighbors`], `None` when unweighted.
    #[inline]
    pub fn out_weights(&self, v: VertexIndex) -> Option<&[Weight]> {
        self.out.as_ref().expect("graph built without out-edges").weights_of(v)
    }

    /// Out-degree of `v`; available in every neighbour mode.
    #[inline]
    pub fn out_degree(&self, v: VertexIndex) -> u32 {
        match (&self.out, &self.out_degrees) {
            (Some(csr), _) => csr.degree(v),
            (None, Some(d)) => d[v as usize],
            (None, None) => unreachable!("builder always retains out-degrees"),
        }
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    /// If the graph was built without in-adjacency.
    #[inline]
    pub fn in_degree(&self, v: VertexIndex) -> u32 {
        self.incoming.as_ref().expect("graph built without in-edges").degree(v)
    }

    /// The out-CSR, if retained.
    pub fn out_csr(&self) -> Option<&Csr> {
        self.out.as_ref()
    }

    /// The in-CSR, if retained.
    pub fn in_csr(&self) -> Option<&Csr> {
        self.incoming.as_ref()
    }

    /// Exact heap bytes held by the graph topology (CSRs, degree array).
    ///
    /// This is the "graph itself" part of Section 7.4's accounting, as
    /// opposed to the framework overhead reported by the engines.
    pub fn bytes(&self) -> usize {
        self.out.as_ref().map_or(0, Csr::bytes)
            + self.incoming.as_ref().map_or(0, Csr::bytes)
            + self.out_degrees.as_ref().map_or(0, |d| d.len() * std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sort_groups_by_source() {
        let edges = [(2u32, 0u32), (0, 1), (2, 1), (0, 2)];
        let csr = Csr::from_edges(3, &edges, None);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.num_edges(), 4);
    }

    #[test]
    fn weights_stay_parallel_to_targets() {
        let edges = [(0u32, 1u32), (1, 0), (0, 2)];
        let w = [10, 20, 30];
        let csr = Csr::from_edges(3, &edges, Some(&w));
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.weights_of(0).unwrap(), &[10, 30]);
        assert_eq!(csr.weights_of(1).unwrap(), &[20]);
        assert!(csr.is_weighted());
    }

    #[test]
    fn empty_slots_have_empty_ranges() {
        let csr = Csr::from_edges(4, &[], None);
        for v in 0..4 {
            assert_eq!(csr.neighbors(v), &[] as &[u32]);
        }
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn bytes_counts_all_arrays() {
        let edges = [(0u32, 1u32); 8];
        let unweighted = Csr::from_edges(2, &edges, None);
        let weighted = Csr::from_edges(2, &edges, Some(&[1; 8]));
        assert_eq!(weighted.bytes() - unweighted.bytes(), 8 * 4);
    }
}
