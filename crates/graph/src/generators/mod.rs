//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on four downloaded datasets (Wikipedia, USA roads,
//! Twitter MPI, Friendster) and on synthetic graphs *proportional to
//! Twitter* for the memory study of Section 7.4.2. This module provides:
//!
//! * general-purpose generators — R-MAT ([`rmat`]), Erdős–Rényi
//!   ([`erdos_renyi`]), a road-network-like sparse grid ([`grid`]),
//!   small worlds ([`watts_strogatz`]), preferential attachment
//!   ([`barabasi`]), and small classic shapes for tests ([`classic`]);
//! * [`analogs`] — named, seeded stand-ins for each paper dataset with
//!   the same edge/vertex ratio and degree character, scaled down by a
//!   divisor so the whole evaluation runs on a laptop.
//!
//! Every generator is seeded and reproducible: the same `(parameters,
//! seed)` always produces the same graph.

pub mod analogs;
pub mod barabasi;
pub mod classic;
pub mod erdos_renyi;
pub mod grid;
pub mod rmat;
pub mod watts_strogatz;

pub use analogs::{DatasetSpec, FRIENDSTER, TWITTER_MPI, USA_ROADS, WIKIPEDIA};
pub use barabasi::barabasi_albert_edges;
pub use erdos_renyi::erdos_renyi_edges;
pub use grid::grid_road_edges;
pub use rmat::{rmat_edges, RmatParams};
pub use watts_strogatz::watts_strogatz_edges;
