//! Erdős–Rényi G(n, m) generator: `m` directed edges drawn uniformly.
//!
//! Used by the test suite and the selection-bypass ablation as a
//! degree-homogeneous counterpoint to R-MAT's skew.

use crate::rng::{RngExt, SeedableRng, StdRng};

/// `m` uniform directed edges over vertices `0..n` (self-loops allowed,
/// parallel edges allowed — the builder stores graphs verbatim).
pub fn erdos_renyi_edges(n: u32, m: u64, seed: u64) -> Vec<(u32, u32)> {
    assert!(n > 0, "erdos_renyi needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| (rng.random_range(0..n), rng.random_range(0..n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_count_and_range() {
        let e = erdos_renyi_edges(100, 1000, 5);
        assert_eq!(e.len(), 1000);
        assert!(e.iter().all(|&(s, d)| s < 100 && d < 100));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(erdos_renyi_edges(50, 200, 1), erdos_renyi_edges(50, 200, 1));
        assert_ne!(erdos_renyi_edges(50, 200, 1), erdos_renyi_edges(50, 200, 2));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let n = 1000u32;
        let e = erdos_renyi_edges(n, 100 * n as u64, 11);
        let mut deg = vec![0u32; n as usize];
        for &(s, _) in &e {
            deg[s as usize] += 1;
        }
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max < 3.0 * 100.0, "uniform degrees should stay near 100, max {max}");
    }
}
