//! Road-network-like sparse grid generator.
//!
//! The USA road graph matters to the paper for two properties the
//! Wikipedia graph lacks: very low density (average out-degree ≈ 2.4) and
//! a huge diameter, which slows message propagation, multiplies
//! supersteps, and is what lets selection bypass win by ×1400 on SSSP
//! (Section 7.2). This generator reproduces both properties on a 2-D
//! lattice:
//!
//! * a serpentine Hamiltonian path guarantees connectivity and a diameter
//!   of Θ(rows × cols);
//! * remaining lattice edges are sampled to hit a target average
//!   out-degree (default 2.44, the USA road figure);
//! * every kept undirected edge becomes two weighted arcs, as in the
//!   DIMACS distance graphs.

use crate::rng::{RngExt, SeedableRng, StdRng};

/// Weighted arcs of a `rows × cols` road-like grid over 0-based vertices
/// (`vertex = r * cols + c`), with average out-degree ≈ `target_out_degree`
/// and uniform weights in `1..=max_weight`.
pub fn grid_road_edges(
    rows: u32,
    cols: u32,
    target_out_degree: f64,
    max_weight: u32,
    seed: u64,
) -> Vec<(u32, u32, u32)> {
    assert!(rows > 0 && cols > 0, "grid needs at least one cell");
    assert!(max_weight >= 1, "weights start at 1");
    let n = u64::from(rows) * u64::from(cols);
    assert!(n <= u64::from(u32::MAX), "grid exceeds u32 vertex space");
    let mut rng = StdRng::seed_from_u64(seed);
    let vid = |r: u32, c: u32| r * cols + c;
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    let add_undirected = |edges: &mut Vec<(u32, u32, u32)>, a: u32, b: u32, w: u32| {
        edges.push((a, b, w));
        edges.push((b, a, w));
    };

    // 1. Serpentine backbone: (r,0)…(r,cols-1) then down, alternating
    //    direction per row — a Hamiltonian path, so the graph is connected
    //    and its diameter is on the order of n.
    for r in 0..rows {
        for c in 0..cols.saturating_sub(1) {
            let w = rng.random_range(1..=max_weight);
            add_undirected(&mut edges, vid(r, c), vid(r, c + 1), w);
        }
        if r + 1 < rows {
            let c = if r % 2 == 0 { cols - 1 } else { 0 };
            let w = rng.random_range(1..=max_weight);
            add_undirected(&mut edges, vid(r, c), vid(r + 1, c), w);
        }
    }

    // 2. Sample the remaining vertical lattice edges to reach the target
    //    degree. The backbone contributes ~2 out-arcs per vertex; each
    //    extra undirected edge contributes 2/n more on average.
    let backbone_out_deg = edges.len() as f64 / n as f64;
    let deficit = (target_out_degree - backbone_out_deg).max(0.0);
    let candidates = u64::from(rows.saturating_sub(1)) * u64::from(cols) - u64::from(rows.saturating_sub(1));
    let p = if candidates == 0 { 0.0 } else { (deficit * n as f64 / 2.0 / candidates as f64).min(1.0) };
    if p > 0.0 {
        for r in 0..rows.saturating_sub(1) {
            for c in 0..cols {
                // Skip the verticals the backbone already placed.
                let backbone_col = if r % 2 == 0 { cols - 1 } else { 0 };
                if c == backbone_col {
                    continue;
                }
                if rng.random::<f64>() < p {
                    let w = rng.random_range(1..=max_weight);
                    add_undirected(&mut edges, vid(r, c), vid(r + 1, c), w);
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn reaches_all(n: u32, edges: &[(u32, u32, u32)]) -> bool {
        let mut adj = vec![Vec::new(); n as usize];
        for &(a, b, _) in edges {
            adj[a as usize].push(b);
        }
        let mut seen = vec![false; n as usize];
        let mut q = VecDeque::from([0u32]);
        seen[0] = true;
        while let Some(v) = q.pop_front() {
            for &u in &adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    q.push_back(u);
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn grid_is_connected() {
        let edges = grid_road_edges(20, 30, 2.44, 100, 13);
        assert!(reaches_all(600, &edges));
    }

    #[test]
    fn hits_target_degree_approximately() {
        let edges = grid_road_edges(100, 100, 2.44, 1000, 21);
        let avg = edges.len() as f64 / 10_000.0;
        assert!((avg - 2.44).abs() < 0.25, "avg out-degree {avg} not ≈ 2.44");
    }

    #[test]
    fn arcs_are_symmetric_with_equal_weights() {
        let edges = grid_road_edges(5, 5, 3.0, 50, 2);
        for chunk in edges.chunks(2) {
            let (a, b) = (chunk[0], chunk[1]);
            assert_eq!((a.0, a.1, a.2), (b.1, b.0, b.2));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(grid_road_edges(10, 10, 2.44, 10, 4), grid_road_edges(10, 10, 2.44, 10, 4));
        assert_ne!(grid_road_edges(10, 10, 2.44, 10, 4), grid_road_edges(10, 10, 2.44, 10, 5));
    }

    #[test]
    fn single_row_is_a_path() {
        let edges = grid_road_edges(1, 4, 2.0, 1, 0);
        assert_eq!(edges.len(), 6); // 3 undirected path edges → 6 arcs
        assert!(reaches_all(4, &edges));
    }

    #[test]
    fn weights_respect_bounds() {
        let edges = grid_road_edges(8, 8, 2.44, 7, 9);
        assert!(edges.iter().all(|&(_, _, w)| (1..=7).contains(&w)));
    }
}
