//! Named synthetic stand-ins for the paper's datasets.
//!
//! The paper downloads Wikipedia (dbpedia-link) and Twitter/Friendster
//! from KONECT and the USA road network from DIMACS — tens of millions of
//! vertices and up to 2.6 billion edges. Those downloads are not available
//! here, so each dataset gets a generated *analog* that preserves the
//! properties the paper's analysis actually depends on:
//!
//! * the |E|/|V| ratio (graph density drives pull-combiner cost, §6.2);
//! * the degree character — heavy-tailed R-MAT for the social/web graphs,
//!   near-uniform sparse grid for the road network;
//! * the huge diameter of the road graph (drives superstep counts and the
//!   selection-bypass gap, §7.2);
//! * 1-based contiguous identifiers, so the desolate-memory addressing
//!   path is exercised exactly as in Section 7.1.3.
//!
//! Graphs are scaled down by a caller-chosen divisor; the specs retain the
//! paper-scale vertex/edge counts so Tables 1–2 and the memory projections
//! can be reproduced at full scale analytically.

use crate::builder::{GraphBuilder, NeighborMode};
use crate::csr::Graph;
use crate::generators::grid::grid_road_edges;
use crate::generators::rmat::{rmat_edges, RmatParams};

/// Degree/diameter character of a dataset, selecting its generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalogKind {
    /// Heavy-tailed degrees, small diameter (R-MAT).
    Social,
    /// Near-uniform low degree, huge diameter (sparse grid, weighted).
    Road,
}

/// A paper dataset: its published size (Tables 1 and 2) plus the generator
/// that produces its scaled analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper's tables.
    pub name: &'static str,
    /// Paper-scale vertex count.
    pub vertices: u64,
    /// Paper-scale edge count.
    pub edges: u64,
    /// Generator family.
    pub kind: AnalogKind,
}

/// Wikipedia / dbpedia-link (Table 1).
pub const WIKIPEDIA: DatasetSpec =
    DatasetSpec { name: "Wikipedia", vertices: 18_268_992, edges: 172_183_984, kind: AnalogKind::Social };

/// USA road network (Table 1).
pub const USA_ROADS: DatasetSpec =
    DatasetSpec { name: "USA Road network", vertices: 23_947_347, edges: 58_333_344, kind: AnalogKind::Road };

/// Twitter (MPI) (Table 2).
pub const TWITTER_MPI: DatasetSpec =
    DatasetSpec { name: "Twitter (MPI)", vertices: 52_579_682, edges: 1_963_263_821, kind: AnalogKind::Social };

/// Friendster (Table 2).
pub const FRIENDSTER: DatasetSpec =
    DatasetSpec { name: "Friendster", vertices: 68_349_466, edges: 2_586_147_869, kind: AnalogKind::Social };

impl DatasetSpec {
    /// Average out-degree at paper scale (preserved by the analogs).
    pub fn avg_out_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Vertex/edge counts after dividing by `divisor` (at least 2 vertices).
    pub fn scaled_counts(&self, divisor: u64) -> (u32, u64) {
        assert!(divisor >= 1);
        let n = (self.vertices / divisor).max(2);
        let m = (self.edges / divisor).max(1);
        (n as u32, m)
    }

    /// Build the scaled analog graph with **1-based identifiers** (like the
    /// KONECT/DIMACS originals), triggering desolate-memory addressing.
    pub fn analog_graph(&self, divisor: u64, seed: u64, mode: NeighborMode) -> Graph {
        let (n, m) = self.scaled_counts(divisor);
        match self.kind {
            AnalogKind::Social => {
                let edges = rmat_edges(n, m, RmatParams::GRAPH500, seed);
                let mut b = GraphBuilder::with_capacity(mode, edges.len()).declare_id_range(1, n);
                for (s, d) in edges {
                    b.add_edge(s + 1, d + 1);
                }
                b.build().expect("generated analog must build")
            }
            AnalogKind::Road => {
                // Pick grid dimensions with rows*cols ≈ n; the generator
                // hits the dataset's average out-degree.
                let rows = (f64::from(n).sqrt().floor() as u32).max(1);
                let cols = n / rows;
                let real_n = rows * cols;
                let target = self.avg_out_degree();
                let edges = grid_road_edges(rows, cols, target, 1000, seed);
                let mut b =
                    GraphBuilder::with_capacity(mode, edges.len()).declare_id_range(1, real_n);
                for (s, d, w) in edges {
                    b.add_weighted_edge(s + 1, d + 1, w);
                }
                b.build().expect("generated analog must build")
            }
        }
    }

    /// Analog of the paper's "synthetic graph described as X%": a graph
    /// with `pct`% of this dataset's vertices and edges (then scaled by
    /// `divisor`), used by the Figure 9 memory sweep.
    pub fn percent_analog(&self, pct: u32, divisor: u64, seed: u64, mode: NeighborMode) -> Graph {
        assert!(pct >= 1, "percent analog needs pct ≥ 1");
        let scaled = DatasetSpec {
            name: self.name,
            vertices: self.vertices * u64::from(pct) / 100,
            edges: self.edges * u64::from(pct) / 100,
            kind: self.kind,
        };
        scaled.analog_graph(divisor, seed, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AddressingMode;

    #[test]
    fn table1_and_table2_sizes_match_paper() {
        assert_eq!(WIKIPEDIA.vertices, 18_268_992);
        assert_eq!(WIKIPEDIA.edges, 172_183_984);
        assert_eq!(USA_ROADS.vertices, 23_947_347);
        assert_eq!(USA_ROADS.edges, 58_333_344);
        assert_eq!(TWITTER_MPI.vertices, 52_579_682);
        assert_eq!(TWITTER_MPI.edges, 1_963_263_821);
        assert_eq!(FRIENDSTER.vertices, 68_349_466);
        assert_eq!(FRIENDSTER.edges, 2_586_147_869);
    }

    #[test]
    fn analog_preserves_edge_vertex_ratio() {
        let g = WIKIPEDIA.analog_graph(2000, 1, NeighborMode::OutOnly);
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((ratio - WIKIPEDIA.avg_out_degree()).abs() / WIKIPEDIA.avg_out_degree() < 0.05);
    }

    #[test]
    fn road_analog_is_sparse_and_weighted() {
        let g = USA_ROADS.analog_graph(2000, 1, NeighborMode::OutOnly);
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((ratio - 2.44).abs() < 0.3, "road analog density {ratio}");
        assert!(g.is_weighted());
    }

    #[test]
    fn analogs_are_one_based_with_desolate_memory() {
        let g = WIKIPEDIA.analog_graph(5000, 1, NeighborMode::OutOnly);
        assert_eq!(g.address_map().base(), 1);
        assert_eq!(g.address_map().mode(), AddressingMode::DesolateMemory);
        assert_eq!(g.num_slots(), g.num_vertices() + 1);
    }

    #[test]
    fn percent_analog_scales_linearly() {
        let half = TWITTER_MPI.percent_analog(50, 20_000, 1, NeighborMode::OutOnly);
        let full = TWITTER_MPI.percent_analog(100, 20_000, 1, NeighborMode::OutOnly);
        let ratio = full.num_edges() as f64 / half.num_edges() as f64;
        assert!((ratio - 2.0).abs() < 0.05, "edge ratio {ratio}");
    }

    #[test]
    fn analogs_are_deterministic() {
        let a = WIKIPEDIA.analog_graph(5000, 9, NeighborMode::OutOnly);
        let b = WIKIPEDIA.analog_graph(5000, 9, NeighborMode::OutOnly);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.out_neighbors(1), b.out_neighbors(1));
    }
}
