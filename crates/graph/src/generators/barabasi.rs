//! Barabási–Albert preferential-attachment generator.
//!
//! Grows a graph one vertex at a time, each newcomer attaching to `m`
//! existing vertices with probability proportional to their current
//! degree — the classic mechanism behind power-law social networks, and
//! an independent check that the framework's behaviour on the R-MAT
//! analogs is about skew, not about R-MAT specifically.

use crate::rng::{RngExt, SeedableRng, StdRng};

/// Undirected preferential-attachment edges over `0..n` with `m`
/// attachments per new vertex (each edge returned once).
pub fn barabasi_albert_edges(n: u32, m: u32, seed: u64) -> Vec<(u32, u32)> {
    assert!(m >= 1, "each newcomer needs at least one attachment");
    assert!(n > m, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(((n - m) as usize) * (m as usize));
    // Repeated-endpoints trick: sampling a uniform element of this list
    // is sampling proportional to degree.
    let mut endpoints: Vec<u32> = Vec::new();

    // Seed clique over the first m+1 vertices.
    for i in 0..=m {
        for j in (i + 1)..=m {
            edges.push((i, j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }

    for v in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m as usize);
        while chosen.len() < m as usize {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_is_clique_plus_m_per_newcomer() {
        let (n, m) = (100u32, 3u32);
        let e = barabasi_albert_edges(n, m, 1);
        let clique = (m as usize) * (m as usize + 1) / 2;
        assert_eq!(e.len(), clique + ((n - m - 1) as usize) * m as usize);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let n = 5000u32;
        let e = barabasi_albert_edges(n, 2, 9);
        let mut deg = vec![0u32; n as usize];
        for &(u, v) in &e {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let avg = 2.0 * e.len() as f64 / n as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 10.0 * avg, "max degree {max} vs avg {avg}");
    }

    #[test]
    fn no_self_loops_or_duplicate_attachments() {
        let e = barabasi_albert_edges(200, 4, 5);
        assert!(e.iter().all(|&(u, v)| u != v));
        // A newcomer's m attachments are distinct.
        let mut per_vertex: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for &(u, v) in &e {
            per_vertex.entry(u.max(v)).or_default().push(u.min(v));
        }
        for (v, mut ts) in per_vertex {
            let before = ts.len();
            ts.sort_unstable();
            ts.dedup();
            assert_eq!(ts.len(), before, "vertex {v} attached twice to a target");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert_edges(60, 2, 4), barabasi_albert_edges(60, 2, 4));
        assert_ne!(barabasi_albert_edges(60, 2, 4), barabasi_albert_edges(60, 2, 5));
    }
}
