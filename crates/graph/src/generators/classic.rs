//! Small deterministic graph shapes used throughout the test suites.

/// Directed path `0 → 1 → … → n-1`.
pub fn path_edges(n: u32) -> Vec<(u32, u32)> {
    (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect()
}

/// Directed cycle `0 → 1 → … → n-1 → 0`.
pub fn cycle_edges(n: u32) -> Vec<(u32, u32)> {
    assert!(n >= 1);
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Star with centre 0 broadcasting to `1..n`.
pub fn star_edges(n: u32) -> Vec<(u32, u32)> {
    (1..n).map(|i| (0, i)).collect()
}

/// Complete directed graph on `n` vertices (no self-loops).
pub fn complete_edges(n: u32) -> Vec<(u32, u32)> {
    let mut e = Vec::with_capacity((n as usize) * (n as usize - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                e.push((i, j));
            }
        }
    }
    e
}

/// Complete binary tree with root 0, edges parent → child, `n` vertices.
pub fn binary_tree_edges(n: u32) -> Vec<(u32, u32)> {
    let mut e = Vec::new();
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                e.push((i, c));
            }
        }
    }
    e
}

/// Make every directed edge bidirectional (deduplicating nothing).
pub fn symmetrize(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in edges {
        out.push((a, b));
        out.push((b, a));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_expected_sizes() {
        assert_eq!(path_edges(5).len(), 4);
        assert_eq!(cycle_edges(5).len(), 5);
        assert_eq!(star_edges(5).len(), 4);
        assert_eq!(complete_edges(4).len(), 12);
        assert_eq!(binary_tree_edges(7).len(), 6);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(path_edges(1).is_empty());
        assert!(path_edges(0).is_empty());
        assert_eq!(cycle_edges(1), vec![(0, 0)]);
        assert!(star_edges(1).is_empty());
        assert!(binary_tree_edges(1).is_empty());
    }

    #[test]
    fn symmetrize_doubles() {
        let s = symmetrize(&path_edges(3));
        assert_eq!(s, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }
}
