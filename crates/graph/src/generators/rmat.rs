//! Recursive-matrix (R-MAT) scale-free graph generator.
//!
//! R-MAT drops each edge into one quadrant of the adjacency matrix
//! recursively with probabilities `(a, b, c, d)`; with the Graph500
//! defaults it yields the heavy-tailed degree distribution characteristic
//! of web and social graphs — the regime of the paper's Wikipedia and
//! Twitter datasets.

use crate::rng::{RngExt, SeedableRng, StdRng};

/// Quadrant probabilities of the recursive matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters (a=0.57, b=c=0.19, d=0.05).
    pub const GRAPH500: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19 };

    /// The implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate `m` directed edges over vertices `0..n` (0-based identifiers).
///
/// `n` need not be a power of two: samples falling outside `0..n` are
/// rejected and redrawn, preserving the skew within range. Self-loops and
/// parallel edges are kept, as in Graph500 and as the paper's static-graph
/// storage allows.
pub fn rmat_edges(n: u32, m: u64, params: RmatParams, seed: u64) -> Vec<(u32, u32)> {
    assert!(n > 0, "rmat needs at least one vertex");
    assert!(params.d() >= -1e-9, "rmat probabilities exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = 32 - (n - 1).leading_zeros().min(31);
    let side = 1u64 << levels;
    let mut edges = Vec::with_capacity(m as usize);
    while (edges.len() as u64) < m {
        let (mut row, mut col) = (0u64, 0u64);
        let mut half = side >> 1;
        while half > 0 {
            let r: f64 = rng.random();
            if r < params.a {
                // top-left: nothing to add
            } else if r < params.a + params.b {
                col += half;
            } else if r < params.a + params.b + params.c {
                row += half;
            } else {
                row += half;
                col += half;
            }
            half >>= 1;
        }
        if row < u64::from(n) && col < u64::from(n) {
            edges.push((row as u32, col as u32));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_edge_count_in_range() {
        let edges = rmat_edges(1000, 5000, RmatParams::GRAPH500, 42);
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(s, d)| s < 1000 && d < 1000));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = rmat_edges(512, 2048, RmatParams::GRAPH500, 7);
        let b = rmat_edges(512, 2048, RmatParams::GRAPH500, 7);
        let c = rmat_edges(512, 2048, RmatParams::GRAPH500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn non_power_of_two_sizes_work() {
        let edges = rmat_edges(1000, 3000, RmatParams::GRAPH500, 1);
        assert!(edges.iter().all(|&(s, d)| s < 1000 && d < 1000));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // With Graph500 parameters, the max out-degree should far exceed
        // the average — that skew is what makes the wiki analog wiki-like.
        let n = 4096u32;
        let m = 16 * n as u64;
        let edges = rmat_edges(n, m, RmatParams::GRAPH500, 99);
        let mut deg = vec![0u32; n as usize];
        for &(s, _) in &edges {
            deg[s as usize] += 1;
        }
        let avg = m as f64 / n as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 10.0 * avg, "max {max} not ≫ avg {avg}");
    }

    #[test]
    fn single_vertex_graph_self_loops() {
        let edges = rmat_edges(1, 4, RmatParams::GRAPH500, 3);
        assert_eq!(edges, vec![(0, 0); 4]);
    }
}
