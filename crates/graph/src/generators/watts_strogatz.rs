//! Watts–Strogatz small-world generator.
//!
//! A ring lattice with random rewiring: high clustering with a diameter
//! that collapses as the rewiring probability `beta` rises. The
//! selection-bypass ablation uses it to sweep *diameter at fixed degree*
//! — the exact axis the paper's Wikipedia-vs-USA contrast varies.

use crate::rng::{RngExt, SeedableRng, StdRng};

/// Undirected small-world edges (each returned once; symmetrise for a
/// directed graph) over vertices `0..n`, each connected to `k` nearest
/// ring neighbours, rewired with probability `beta`.
pub fn watts_strogatz_edges(n: u32, k: u32, beta: f64, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 3, "ring needs at least 3 vertices");
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(u64::from(k) < u64::from(n), "k must be < n");
    assert!((0.0..=1.0).contains(&beta), "beta is a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity((n as usize) * (k as usize) / 2);
    for v in 0..n {
        for j in 1..=k / 2 {
            let neighbor = (v + j) % n;
            if rng.random::<f64>() < beta {
                // Rewire the far endpoint to a uniform non-self target.
                loop {
                    let t = rng.random_range(0..n);
                    if t != v {
                        edges.push((v, t));
                        break;
                    }
                }
            } else {
                edges.push((v, neighbor));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrewired_ring_is_regular() {
        let e = watts_strogatz_edges(10, 4, 0.0, 1);
        assert_eq!(e.len(), 20);
        // Without rewiring every edge spans ring distance 1 or 2.
        for (u, v) in e {
            let d = (v + 10 - u) % 10;
            assert!(d == 1 || d == 2, "({u},{v})");
        }
    }

    #[test]
    fn full_rewiring_breaks_the_lattice() {
        let e = watts_strogatz_edges(1000, 4, 1.0, 2);
        let lattice_like =
            e.iter().filter(|&&(u, v)| (v + 1000 - u) % 1000 <= 2).count();
        assert!(lattice_like < e.len() / 10, "{lattice_like} lattice edges survived");
    }

    #[test]
    fn no_self_loops() {
        for beta in [0.0, 0.5, 1.0] {
            assert!(watts_strogatz_edges(50, 6, beta, 3).iter().all(|&(u, v)| u != v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(watts_strogatz_edges(30, 4, 0.3, 7), watts_strogatz_edges(30, 4, 0.3, 7));
        assert_ne!(watts_strogatz_edges(30, 4, 0.3, 7), watts_strogatz_edges(30, 4, 0.3, 8));
    }
}
