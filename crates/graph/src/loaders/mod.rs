//! File-format loaders for the graph collections used in the paper.
//!
//! The paper evaluates on graphs downloaded from KONECT (Wikipedia/dbpedia,
//! Twitter MPI, Friendster) and from the 9th DIMACS implementation
//! challenge (USA road network). Each loader parses from any
//! [`std::io::BufRead`], so files, gzip streams piped through an external
//! process, and in-memory fixtures all work the same way.
//!
//! A compact binary format ([`binary`]) is also provided so the benchmark
//! harness can cache generated graphs between runs.

pub mod binary;
pub mod dimacs;
pub mod edge_list;
pub mod konect;
pub mod matrix_market;
pub mod wire;
pub mod writers;

pub use binary::{read_binary, write_binary};
pub use dimacs::load_dimacs_gr;
pub use edge_list::load_edge_list;
pub use konect::load_konect;
pub use matrix_market::load_matrix_market;
pub use writers::{write_dimacs_gr, write_edge_list};
