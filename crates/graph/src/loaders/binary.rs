//! A compact binary graph cache format (`IPGB`).
//!
//! Generating the synthetic stand-ins for the paper's datasets is
//! deterministic but not free; the benchmark harness caches them on disk
//! in this little-endian format:
//!
//! ```text
//! magic   4 bytes  "IPGB"
//! version u32      1
//! flags   u32      bit 0: weighted
//! base    u32      smallest external identifier
//! n       u32      number of vertices
//! m       u64      number of edges
//! edges   m × (u32 src, u32 dst)           external identifiers
//! weights m × u32                          only when weighted
//! ```

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::builder::{GraphBuilder, NeighborMode};
use crate::csr::Graph;
use crate::error::GraphError;

const MAGIC: &[u8; 4] = b"IPGB";
const VERSION: u32 = 1;
const FLAG_WEIGHTED: u32 = 1;

/// Serialise `edges` (external ids) with optional weights.
///
/// The writer takes raw edges rather than a [`Graph`] so a cached file
/// round-trips bit-exactly regardless of neighbour mode or addressing.
pub fn write_binary<W: Write>(
    mut w: W,
    base: u32,
    num_vertices: u32,
    edges: &[(u32, u32)],
    weights: Option<&[u32]>,
) -> Result<(), GraphError> {
    if let Some(ws) = weights {
        if ws.len() != edges.len() {
            return Err(GraphError::MixedWeightedness);
        }
    }
    let mut buf = BytesMut::with_capacity(28 + edges.len() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(if weights.is_some() { FLAG_WEIGHTED } else { 0 });
    buf.put_u32_le(base);
    buf.put_u32_le(num_vertices);
    buf.put_u64_le(edges.len() as u64);
    w.write_all(&buf)?;
    // Stream edges in chunks to bound peak memory on billion-edge graphs.
    let mut chunk = BytesMut::with_capacity(8 << 20);
    for &(s, d) in edges {
        chunk.put_u32_le(s);
        chunk.put_u32_le(d);
        if chunk.len() >= (8 << 20) - 8 {
            w.write_all(&chunk)?;
            chunk.clear();
        }
    }
    w.write_all(&chunk)?;
    chunk.clear();
    if let Some(ws) = weights {
        for &x in ws {
            chunk.put_u32_le(x);
            if chunk.len() >= (8 << 20) - 4 {
                w.write_all(&chunk)?;
                chunk.clear();
            }
        }
        w.write_all(&chunk)?;
    }
    Ok(())
}

/// Deserialise an `IPGB` stream into a [`Graph`].
pub fn read_binary<R: Read>(mut r: R, mode: NeighborMode) -> Result<Graph, GraphError> {
    let mut header = [0u8; 28];
    r.read_exact(&mut header).map_err(|_| GraphError::BadBinary("truncated header".into()))?;
    let mut h = Bytes::copy_from_slice(&header);
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::BadBinary(format!("bad magic {magic:?}")));
    }
    let version = h.get_u32_le();
    if version != VERSION {
        return Err(GraphError::BadBinary(format!("unsupported version {version}")));
    }
    let flags = h.get_u32_le();
    let weighted = flags & FLAG_WEIGHTED != 0;
    let base = h.get_u32_le();
    let n = h.get_u32_le();
    let m = h.get_u64_le();
    if m > usize::MAX as u64 / 8 {
        return Err(GraphError::BadBinary(format!("implausible edge count {m}")));
    }

    let mut edge_bytes = vec![0u8; (m as usize) * 8];
    r.read_exact(&mut edge_bytes).map_err(|_| GraphError::BadBinary("truncated edges".into()))?;
    let mut weight_bytes = Vec::new();
    if weighted {
        weight_bytes.resize((m as usize) * 4, 0);
        r.read_exact(&mut weight_bytes)
            .map_err(|_| GraphError::BadBinary("truncated weights".into()))?;
    }

    let mut b = GraphBuilder::with_capacity(mode, m as usize).declare_id_range(base, n);
    let mut eb = &edge_bytes[..];
    let mut wb = &weight_bytes[..];
    for _ in 0..m {
        let s = eb.get_u32_le();
        let d = eb.get_u32_le();
        if weighted {
            b.add_weighted_edge(s, d, wb.get_u32_le());
        } else {
            b.add_edge(s, d);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_unweighted() {
        let edges = vec![(1u32, 2u32), (2, 3), (3, 1), (1, 3)];
        let mut file = Vec::new();
        write_binary(&mut file, 1, 3, &edges, None).unwrap();
        let g = read_binary(&file[..], NeighborMode::Both).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(g.index_of(1)), &[g.index_of(2), g.index_of(3)]);
    }

    #[test]
    fn round_trips_weighted() {
        let edges = vec![(0u32, 1u32), (1, 0)];
        let weights = vec![11, 22];
        let mut file = Vec::new();
        write_binary(&mut file, 0, 2, &edges, Some(&weights)).unwrap();
        let g = read_binary(&file[..], NeighborMode::OutOnly).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(0).unwrap(), &[11]);
        assert_eq!(g.out_weights(1).unwrap(), &[22]);
    }

    #[test]
    fn rejects_bad_magic() {
        let r = read_binary(&b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"[..], NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::BadBinary(_))));
    }

    #[test]
    fn rejects_truncation() {
        let edges = vec![(0u32, 1u32); 16];
        let mut file = Vec::new();
        write_binary(&mut file, 0, 2, &edges, None).unwrap();
        file.truncate(file.len() - 5);
        let r = read_binary(&file[..], NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::BadBinary(_))));
    }

    #[test]
    fn weight_length_mismatch_is_rejected() {
        let r = write_binary(Vec::new(), 0, 2, &[(0, 1), (1, 0)], Some(&[7]));
        assert!(matches!(r, Err(GraphError::MixedWeightedness)));
    }
}
