//! A compact binary graph cache format (`IPGB`).
//!
//! Generating the synthetic stand-ins for the paper's datasets is
//! deterministic but not free; the benchmark harness caches them on disk
//! in this little-endian format:
//!
//! ```text
//! magic    4 bytes  "IPGB"
//! version  u32      2 (v1 files, without the checksum, still load)
//! flags    u32      bit 0: weighted
//! base     u32      smallest external identifier
//! n        u32      number of vertices
//! m        u64      number of edges
//! edges    m × (u32 src, u32 dst)           external identifiers
//! weights  m × u32                          only when weighted
//! checksum u64      FNV-1a 64 of everything above (v2 only)
//! ```
//!
//! The trailing checksum (shared with the checkpoint format, see
//! [`crate::checksum`]) distinguishes a *corrupt* cache — bit rot, a
//! torn write — from a malformed one: validation failures after a
//! structurally sound header surface as [`GraphError::Corrupt`], telling
//! the caller to regenerate the cache rather than fix their input.
//! Reads are streamed in bounded chunks, so a hostile edge count cannot
//! force a proportional allocation before the payload proves itself.

use std::io::{Read, Write};

use super::wire::{GetLe, PutLe};
use crate::builder::{GraphBuilder, NeighborMode};
use crate::checksum::Fnv64;
use crate::csr::Graph;
use crate::error::GraphError;

// format-region(ipgb, v2): begin — the graph cache wire format. A
// layout change here must bump VERSION *and* the marker version, then
// re-bless with `cargo run -p ipregel-lint -- --bless-formats`.
const MAGIC: &[u8; 4] = b"IPGB";
/// Current (checksummed) format version.
const VERSION: u32 = 2;
/// The original checksum-free version, still accepted on read.
const VERSION_UNCHECKSUMMED: u32 = 1;
const FLAG_WEIGHTED: u32 = 1;
/// Streaming chunk size; a multiple of 8 so edge records never straddle
/// chunk boundaries.
const CHUNK: usize = 8 << 20;

/// Serialise `edges` (external ids) with optional weights.
///
/// The writer takes raw edges rather than a [`Graph`] so a cached file
/// round-trips bit-exactly regardless of neighbour mode or addressing.
pub fn write_binary<W: Write>(
    mut w: W,
    base: u32,
    num_vertices: u32,
    edges: &[(u32, u32)],
    weights: Option<&[u32]>,
) -> Result<(), GraphError> {
    if let Some(ws) = weights {
        if ws.len() != edges.len() {
            return Err(GraphError::MixedWeightedness);
        }
    }
    let mut hash = Fnv64::new();
    let mut buf = Vec::with_capacity(28);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(if weights.is_some() { FLAG_WEIGHTED } else { 0 });
    buf.put_u32_le(base);
    buf.put_u32_le(num_vertices);
    buf.put_u64_le(edges.len() as u64);
    hash.update(&buf);
    w.write_all(&buf)?;
    // Stream edges in chunks to bound peak memory on billion-edge graphs.
    let mut chunk = Vec::with_capacity(CHUNK);
    for &(s, d) in edges {
        chunk.put_u32_le(s);
        chunk.put_u32_le(d);
        if chunk.len() >= CHUNK - 8 {
            hash.update(&chunk);
            w.write_all(&chunk)?;
            chunk.clear();
        }
    }
    hash.update(&chunk);
    w.write_all(&chunk)?;
    chunk.clear();
    if let Some(ws) = weights {
        for &x in ws {
            chunk.put_u32_le(x);
            if chunk.len() >= CHUNK - 4 {
                hash.update(&chunk);
                w.write_all(&chunk)?;
                chunk.clear();
            }
        }
        hash.update(&chunk);
        w.write_all(&chunk)?;
    }
    w.write_all(&hash.finish().to_le_bytes())?;
    Ok(())
}
// format-region(ipgb): end

/// Deserialise an `IPGB` stream into a [`Graph`].
///
/// Accepts both format versions; for v2 the payload is validated
/// against its trailing checksum and any mismatch — including a single
/// flipped bit anywhere in the file — is reported as
/// [`GraphError::Corrupt`] (FNV-1a's state transition per input byte is
/// a bijection, so a lone byte change always alters the digest).
pub fn read_binary<R: Read>(mut r: R, mode: NeighborMode) -> Result<Graph, GraphError> {
    let mut header = [0u8; 28];
    r.read_exact(&mut header).map_err(|_| GraphError::BadBinary("truncated header".into()))?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::BadBinary(format!("bad magic {magic:?}")));
    }
    let version = h.get_u32_le();
    if version != VERSION && version != VERSION_UNCHECKSUMMED {
        return Err(GraphError::BadBinary(format!("unsupported version {version}")));
    }
    let checksummed = version == VERSION;
    let flags = h.get_u32_le();
    let weighted = flags & FLAG_WEIGHTED != 0;
    let base = h.get_u32_le();
    let n = h.get_u32_le();
    let m = h.get_u64_le();
    if m > usize::MAX as u64 / 8 {
        return Err(GraphError::BadBinary(format!("implausible edge count {m}")));
    }
    let mut hash = Fnv64::new();
    hash.update(&header);

    // `m` is untrusted until the payload actually arrives: cap the
    // builder's up-front reservation and let growth amortise past it.
    let mut b =
        GraphBuilder::with_capacity(mode, (m as usize).min(1 << 20)).declare_id_range(base, n);
    let mut buf = vec![0u8; CHUNK.min((m as usize) * 8)];

    // Weighted files put all weights after all edges, so edges are
    // buffered (8 B each, same as their wire size) until their weights
    // stream past; unweighted edges go straight into the builder.
    let mut pending: Vec<(u32, u32)> = Vec::with_capacity(if weighted {
        (m as usize).min(1 << 20)
    } else {
        0
    });
    let mut remaining = (m as usize) * 8;
    while remaining > 0 {
        let take = remaining.min(CHUNK);
        let chunk = &mut buf[..take];
        r.read_exact(chunk).map_err(|_| GraphError::BadBinary("truncated edges".into()))?;
        hash.update(chunk);
        let mut eb = &chunk[..];
        while eb.len() >= 8 {
            let s = eb.get_u32_le();
            let d = eb.get_u32_le();
            if weighted {
                pending.push((s, d));
            } else {
                b.add_edge(s, d);
            }
        }
        remaining -= take;
    }
    if weighted {
        let mut i = 0usize;
        let mut remaining = (m as usize) * 4;
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            let chunk = &mut buf[..take];
            r.read_exact(chunk).map_err(|_| GraphError::BadBinary("truncated weights".into()))?;
            hash.update(chunk);
            let mut wb = &chunk[..];
            while wb.len() >= 4 {
                let (s, d) = pending[i];
                b.add_weighted_edge(s, d, wb.get_u32_le());
                i += 1;
            }
            remaining -= take;
        }
    }

    if checksummed {
        let mut tail = [0u8; 8];
        r.read_exact(&mut tail).map_err(|_| GraphError::BadBinary("truncated checksum".into()))?;
        let stored = u64::from_le_bytes(tail);
        let computed = hash.finish();
        if stored != computed {
            return Err(GraphError::Corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            )));
        }
        // Nothing may follow the checksum; bytes here mean the header's
        // edge count disagrees with the file (e.g. a corrupted `m` that
        // happened to shrink the payload).
        let mut probe = [0u8; 1];
        match r.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => return Err(GraphError::Corrupt("trailing bytes after checksum".into())),
            Err(e) => return Err(GraphError::Io(e)),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_unweighted() {
        let edges = vec![(1u32, 2u32), (2, 3), (3, 1), (1, 3)];
        let mut file = Vec::new();
        write_binary(&mut file, 1, 3, &edges, None).unwrap();
        let g = read_binary(&file[..], NeighborMode::Both).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(g.index_of(1)), &[g.index_of(2), g.index_of(3)]);
    }

    #[test]
    fn round_trips_weighted() {
        let edges = vec![(0u32, 1u32), (1, 0)];
        let weights = vec![11, 22];
        let mut file = Vec::new();
        write_binary(&mut file, 0, 2, &edges, Some(&weights)).unwrap();
        let g = read_binary(&file[..], NeighborMode::OutOnly).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(0).unwrap(), &[11]);
        assert_eq!(g.out_weights(1).unwrap(), &[22]);
    }

    #[test]
    fn rejects_bad_magic() {
        let r = read_binary(&b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"[..], NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::BadBinary(_))));
    }

    #[test]
    fn rejects_truncation() {
        let edges = vec![(0u32, 1u32); 16];
        let mut file = Vec::new();
        write_binary(&mut file, 0, 2, &edges, None).unwrap();
        for cut in [5, 8, 9, file.len() - 28] {
            let r = read_binary(&file[..file.len() - cut], NeighborMode::OutOnly);
            assert!(
                matches!(r, Err(GraphError::BadBinary(_))),
                "cut of {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn weight_length_mismatch_is_rejected() {
        let r = write_binary(Vec::new(), 0, 2, &[(0, 1), (1, 0)], Some(&[7]));
        assert!(matches!(r, Err(GraphError::MixedWeightedness)));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let mut file = Vec::new();
        write_binary(&mut file, 0, 3, &edges, Some(&[5, 6, 7])).unwrap();
        for i in 0..file.len() {
            let mut mutated = file.clone();
            mutated[i] ^= 0x20;
            assert!(
                read_binary(&mutated[..], NeighborMode::OutOnly).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn payload_flip_reports_corrupt_not_malformed() {
        let mut file = Vec::new();
        write_binary(&mut file, 0, 2, &[(0u32, 1u32)], None).unwrap();
        file[30] ^= 0xff; // inside the edge payload
        let r = read_binary(&file[..], NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::Corrupt(_))), "{r:?}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut file = Vec::new();
        write_binary(&mut file, 0, 2, &[(0u32, 1u32)], None).unwrap();
        file.push(0xaa);
        let r = read_binary(&file[..], NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::Corrupt(_))), "{r:?}");
    }

    #[test]
    fn version_1_files_without_checksum_still_load() {
        // Hand-rolled v1 image: header (version 1) + two edges, no tail.
        let mut file = Vec::new();
        file.extend_from_slice(b"IPGB");
        file.extend_from_slice(&1u32.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes()); // unweighted
        file.extend_from_slice(&0u32.to_le_bytes()); // base
        file.extend_from_slice(&2u32.to_le_bytes()); // n
        file.extend_from_slice(&2u64.to_le_bytes()); // m
        for &(s, d) in &[(0u32, 1u32), (1, 0)] {
            file.extend_from_slice(&s.to_le_bytes());
            file.extend_from_slice(&d.to_le_bytes());
        }
        let g = read_binary(&file[..], NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn hostile_edge_count_fails_without_matching_allocation() {
        // A header claiming 2^40 edges must fail on the missing payload,
        // not by reserving terabytes first.
        let mut file = Vec::new();
        file.extend_from_slice(b"IPGB");
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&(1u64 << 40).to_le_bytes());
        let r = read_binary(&file[..], NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::BadBinary(_))), "{r:?}");
    }
}
