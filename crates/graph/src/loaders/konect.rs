//! The KONECT (Koblenz Network Collection) TSV format.
//!
//! KONECT files start with `%`-prefixed metadata lines; the first data
//! column pair is `src dst`, optionally followed by a weight/multiplicity
//! and a timestamp, both of which iPregel ignores (static, unweighted
//! processing of Wikipedia/Twitter/Friendster). Identifiers are 1-based.

use std::io::BufRead;

use crate::builder::{GraphBuilder, NeighborMode};
use crate::csr::Graph;
use crate::error::GraphError;

/// Parse a KONECT `out.*` stream into an unweighted [`Graph`].
///
/// Weight and timestamp columns are ignored, matching how the paper's
/// applications treat these datasets (PageRank/Hashmin are unweighted and
/// its SSSP assumes unit weights).
pub fn load_konect<R: BufRead>(reader: R, mode: NeighborMode) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(mode);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let src = parse_id(it.next(), lineno + 1, "source id")?;
        let dst = parse_id(it.next(), lineno + 1, "target id")?;
        b.add_edge(src, dst);
    }
    b.build()
}

fn parse_id(tok: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad {what} {tok:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AddressingMode;
    use std::io::Cursor;

    const SAMPLE: &str = "\
% asym unweighted
% 4 3 3
1 2
2 3	1	1167609600
3 1
";

    #[test]
    fn skips_metadata_and_extra_columns() {
        let g = load_konect(Cursor::new(SAMPLE), NeighborMode::Both).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
    }

    #[test]
    fn konect_graphs_use_desolate_memory() {
        let g = load_konect(Cursor::new(SAMPLE), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.address_map().mode(), AddressingMode::DesolateMemory);
    }

    #[test]
    fn bad_id_reports_line() {
        let r = load_konect(Cursor::new("1 2\n1 -3\n"), NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::Parse { line: 2, .. })));
    }
}
