//! Little-endian wire-format helpers for the binary loaders, replacing
//! the `bytes` crate's `Buf`/`BufMut` pair with the handful of methods
//! the `IPGB` codec uses.
//!
//! [`PutLe`] appends to a `Vec<u8>`; [`GetLe`] consumes from the front
//! of a `&[u8]` by advancing the slice itself (`let mut b = &buf[..];
//! b.get_u32_le()`), the same calling convention `bytes::Buf` gave the
//! reader loops. Reads past the end panic — callers bound their loops
//! by `len()` first, as the codec always did.

/// Append little-endian values to a growable byte buffer.
pub trait PutLe {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32);
    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64);
}

impl PutLe for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Consume little-endian values from the front of a byte slice.
pub trait GetLe {
    /// Read a `u32` and advance.
    fn get_u32_le(&mut self) -> u32;
    /// Read a `u64` and advance.
    fn get_u64_le(&mut self) -> u64;
    /// Fill `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl GetLe for &[u8] {
    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4-byte split"))
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8-byte split"))
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        *self = tail;
        dst.copy_from_slice(head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_round_trip() {
        let mut buf = Vec::new();
        buf.put_slice(b"IPGB");
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        let mut r = &buf[..];
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"IPGB");
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic]
    fn short_reads_panic() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
