//! Matrix Market (`.mtx`) coordinate-format loader.
//!
//! The SuiteSparse collection — a common source of benchmark graphs —
//! distributes adjacency matrices in this format. Supported header:
//! `%%MatrixMarket matrix coordinate <real|integer|pattern>
//! <general|symmetric>`; `symmetric` entries are mirrored (off-diagonal
//! only), `pattern` means unweighted, and real weights are rounded to
//! the integral `Weight` type (negative or fractional weights are
//! rejected — shortest-path semantics need non-negative integers).
//! Identifiers are 1-based, as in DIMACS.

use std::io::BufRead;

use crate::builder::{GraphBuilder, NeighborMode};
use crate::csr::Graph;
use crate::error::GraphError;

/// Parse a Matrix Market coordinate stream into a [`Graph`].
pub fn load_matrix_market<R: BufRead>(reader: R, mode: NeighborMode) -> Result<Graph, GraphError> {
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (_, header) = lines
        .next()
        .ok_or_else(|| GraphError::Parse { line: 1, message: "empty file".into() })?;
    let header = header?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || !h[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(GraphError::Parse { line: 1, message: format!("bad header {header:?}") });
    }
    if !h[1].eq_ignore_ascii_case("matrix") || !h[2].eq_ignore_ascii_case("coordinate") {
        return Err(GraphError::Parse {
            line: 1,
            message: "only `matrix coordinate` files are supported".into(),
        });
    }
    let weighted = match h[3].to_ascii_lowercase().as_str() {
        "pattern" => false,
        "real" | "integer" => true,
        other => {
            return Err(GraphError::Parse {
                line: 1,
                message: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetric = match h[4].to_ascii_lowercase().as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(GraphError::Parse {
                line: 1,
                message: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // Size line (after % comments), then entries.
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        match &mut builder {
            None => {
                let rows = parse_u32(it.next(), lineno + 1, "rows")?;
                let cols = parse_u32(it.next(), lineno + 1, "cols")?;
                let nnz = parse_u32(it.next(), lineno + 1, "nnz")?;
                if rows != cols {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: format!("adjacency matrix must be square, got {rows}x{cols}"),
                    });
                }
                // The declared entry count is untrusted input: cap the
                // up-front reservation and let growth amortise past it.
                let mut b = GraphBuilder::with_capacity(mode, (nnz as usize).min(1 << 20));
                b = b.declare_id_range(1, rows);
                builder = Some(b);
            }
            Some(b) => {
                let row = parse_u32(it.next(), lineno + 1, "row")?;
                let col = parse_u32(it.next(), lineno + 1, "col")?;
                if weighted {
                    let raw = it.next().ok_or_else(|| GraphError::Parse {
                        line: lineno + 1,
                        message: "missing value".into(),
                    })?;
                    let value: f64 = raw.parse().map_err(|e| GraphError::Parse {
                        line: lineno + 1,
                        message: format!("bad value {raw:?}: {e}"),
                    })?;
                    if value < 0.0 || value.fract() != 0.0 || value > f64::from(u32::MAX) {
                        return Err(GraphError::Parse {
                            line: lineno + 1,
                            message: format!(
                                "weight {value} is not a non-negative integer (shortest-path \
                                 weights must be)"
                            ),
                        });
                    }
                    b.add_weighted_edge(row, col, value as u32);
                    if symmetric && row != col {
                        b.add_weighted_edge(col, row, value as u32);
                    }
                } else {
                    b.add_edge(row, col);
                    if symmetric && row != col {
                        b.add_edge(col, row);
                    }
                }
            }
        }
    }
    builder.ok_or(GraphError::EmptyGraph)?.build()
}

fn parse_u32(tok: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad {what} {tok:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_pattern_general() {
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 3\n1 2\n2 3\n3 1\n";
        let g = load_matrix_market(Cursor::new(mtx), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
    }

    #[test]
    fn symmetric_entries_are_mirrored() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
        let g = load_matrix_market(Cursor::new(mtx), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_edges(), 4);
        let v1 = g.index_of(1);
        assert_eq!(g.out_neighbors(v1), &[g.index_of(2)]);
    }

    #[test]
    fn diagonal_of_symmetric_is_not_doubled() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n";
        let g = load_matrix_market(Cursor::new(mtx), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_edges(), 3); // self-loop once + mirrored pair
    }

    #[test]
    fn integer_weights_load() {
        let mtx = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 2 7\n2 1 9\n";
        let g = load_matrix_market(Cursor::new(mtx), NeighborMode::OutOnly).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(g.index_of(1)).unwrap(), &[7]);
    }

    #[test]
    fn real_weights_must_be_integral_nonnegative() {
        let fractional = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 0.5\n";
        assert!(matches!(
            load_matrix_market(Cursor::new(fractional), NeighborMode::OutOnly),
            Err(GraphError::Parse { .. })
        ));
        let negative = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 -3\n";
        assert!(matches!(
            load_matrix_market(Cursor::new(negative), NeighborMode::OutOnly),
            Err(GraphError::Parse { .. })
        ));
        let integral = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3\n";
        assert!(load_matrix_market(Cursor::new(integral), NeighborMode::OutOnly).is_ok());
    }

    #[test]
    fn non_square_is_rejected() {
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n3 2 1\n1 2\n";
        assert!(matches!(
            load_matrix_market(Cursor::new(mtx), NeighborMode::OutOnly),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(load_matrix_market(Cursor::new("nope\n1 1 0\n"), NeighborMode::OutOnly).is_err());
        let arr = "%%MatrixMarket matrix array real general\n";
        assert!(load_matrix_market(Cursor::new(arr), NeighborMode::OutOnly).is_err());
    }
}
