//! The 9th DIMACS implementation challenge `.gr` format.
//!
//! The paper's USA road network comes from this collection
//! (Section 7.1.3). The format is line-oriented:
//!
//! ```text
//! c  comment
//! p sp <num_vertices> <num_arcs>
//! a  <src> <dst> <weight>
//! ```
//!
//! Identifiers are 1-based, which is exactly the situation the paper's
//! *desolate memory* addressing targets; the loader therefore declares the
//! 1-based range from the `p` header and leaves the addressing choice to
//! the builder policy (desolate by default).

use std::io::BufRead;

use crate::builder::{GraphBuilder, NeighborMode};
use crate::csr::Graph;
use crate::error::GraphError;

/// Parse a DIMACS `.gr` stream into a weighted [`Graph`].
pub fn load_dimacs_gr<R: BufRead>(reader: R, mode: NeighborMode) -> Result<Graph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let mut it = t.split_whitespace();
        match it.next() {
            Some("p") => {
                let kind = it.next().unwrap_or("");
                if kind != "sp" {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: format!("unsupported problem kind {kind:?}, expected \"sp\""),
                    });
                }
                let n = parse_num(it.next(), lineno + 1, "vertex count")?;
                let m = parse_num(it.next(), lineno + 1, "arc count")?;
                // The declared arc count is untrusted input: cap the
                // up-front reservation and let growth amortise past it.
                let mut b = GraphBuilder::with_capacity(mode, (m as usize).min(1 << 20));
                b = b.declare_id_range(1, n);
                builder = Some(b);
            }
            Some("a") => {
                let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: "arc line before \"p sp\" header".to_string(),
                })?;
                let src = parse_num(it.next(), lineno + 1, "arc source")?;
                let dst = parse_num(it.next(), lineno + 1, "arc target")?;
                let w = parse_num(it.next(), lineno + 1, "arc weight")?;
                b.add_weighted_edge(src, dst, w);
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("unknown record type {other:?}"),
                })
            }
            None => unreachable!("blank lines filtered above"),
        }
    }
    builder.ok_or(GraphError::EmptyGraph)?.build()
}

fn parse_num(tok: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad {what} {tok:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AddressingMode;
    use std::io::Cursor;

    const SAMPLE: &str = "\
c 9th DIMACS Implementation Challenge sample
p sp 4 5
a 1 2 10
a 2 3 20
a 3 4 30
a 4 1 40
a 1 3 50
";

    #[test]
    fn parses_header_and_arcs() {
        let g = load_dimacs_gr(Cursor::new(SAMPLE), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!(g.is_weighted());
        let v1 = g.index_of(1);
        assert_eq!(g.out_neighbors(v1).len(), 2);
    }

    #[test]
    fn one_based_ids_get_desolate_memory() {
        // Section 7.1.3: both datasets "are made of contiguous indexes
        // starting at 1, and are processed in iPregel using offset mapping
        // with desolate memory".
        let g = load_dimacs_gr(Cursor::new(SAMPLE), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.address_map().mode(), AddressingMode::DesolateMemory);
        assert_eq!(g.num_slots(), 5);
    }

    #[test]
    fn arc_before_header_is_an_error() {
        let r = load_dimacs_gr(Cursor::new("a 1 2 3\n"), NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::Parse { line: 1, .. })));
    }

    #[test]
    fn isolated_vertices_from_header_are_kept() {
        let text = "p sp 10 1\na 1 2 5\n";
        let g = load_dimacs_gr(Cursor::new(text), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn wrong_problem_kind_is_rejected() {
        let r = load_dimacs_gr(Cursor::new("p max 3 3\n"), NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::Parse { .. })));
    }
}
