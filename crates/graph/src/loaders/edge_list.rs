//! Plain whitespace-separated edge lists (the SNAP collection format).
//!
//! Each non-comment line is `src dst` or `src dst weight`. Lines starting
//! with `#`, `%` or `//` are comments. Mixing weighted and unweighted
//! lines is an error.

use std::io::BufRead;

use crate::builder::{GraphBuilder, NeighborMode};
use crate::csr::Graph;
use crate::error::GraphError;

/// Parse an edge-list stream into a [`Graph`].
pub fn load_edge_list<R: BufRead>(reader: R, mode: NeighborMode) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(mode);
    let mut weighted: Option<bool> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') || t.starts_with("//") {
            continue;
        }
        let mut it = t.split_whitespace();
        let src = parse_id(it.next(), lineno + 1, "source id")?;
        let dst = parse_id(it.next(), lineno + 1, "target id")?;
        match it.next() {
            Some(w) => {
                if weighted == Some(false) {
                    return Err(GraphError::MixedWeightedness);
                }
                weighted = Some(true);
                let w = w.parse::<u32>().map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad weight {w:?}: {e}"),
                })?;
                b.add_weighted_edge(src, dst, w);
            }
            None => {
                if weighted == Some(true) {
                    return Err(GraphError::MixedWeightedness);
                }
                weighted = Some(false);
                b.add_edge(src, dst);
            }
        }
    }
    b.build()
}

fn parse_id(tok: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad {what} {tok:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP header\n% konect-style comment\n\n0 1\n1 2\n// trailing comment\n2 0\n";
        let g = load_edge_list(Cursor::new(text), NeighborMode::OutOnly).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parses_weights() {
        let g = load_edge_list(Cursor::new("0 1 7\n1 0 9\n"), NeighborMode::OutOnly).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(0).unwrap(), &[7]);
    }

    #[test]
    fn rejects_mixed_weightedness() {
        let r = load_edge_list(Cursor::new("0 1 7\n1 0\n"), NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::MixedWeightedness)));
    }

    #[test]
    fn reports_line_numbers_on_garbage() {
        let r = load_edge_list(Cursor::new("0 1\nx y\n"), NeighborMode::OutOnly);
        match r {
            Err(GraphError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_empty_graph_error() {
        let r = load_edge_list(Cursor::new("# only comments\n"), NeighborMode::OutOnly);
        assert!(matches!(r, Err(GraphError::EmptyGraph)));
    }
}
