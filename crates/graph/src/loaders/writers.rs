//! Exporters: write a [`Graph`] back out in the text formats the loaders
//! read, so cleaned/generated graphs can be shared with other tools (or
//! with the original C iPregel).

use std::io::{self, Write};

use crate::csr::Graph;

/// Write as a plain edge list (`src dst` or `src dst weight` per line),
/// in external identifiers, source-major order.
pub fn write_edge_list<W: Write>(mut w: W, g: &Graph) -> io::Result<()> {
    let map = g.address_map();
    for v in map.live_slots() {
        let neighbors = g.out_neighbors(v);
        match g.out_weights(v) {
            Some(ws) => {
                for (&u, &wt) in neighbors.iter().zip(ws) {
                    writeln!(w, "{} {} {}", map.id_of(v), map.id_of(u), wt)?;
                }
            }
            None => {
                for &u in neighbors {
                    writeln!(w, "{} {}", map.id_of(v), map.id_of(u))?;
                }
            }
        }
    }
    Ok(())
}

/// Write as DIMACS `.gr` (requires a weighted graph; unweighted edges
/// are emitted with weight 1). Identifiers are shifted to the 1-based
/// space DIMACS expects when the graph is 0-based.
pub fn write_dimacs_gr<W: Write>(mut w: W, g: &Graph) -> io::Result<()> {
    let map = g.address_map();
    let shift = u32::from(map.base() == 0);
    writeln!(w, "c written by ipregel-graph")?;
    writeln!(w, "p sp {} {}", g.num_vertices(), g.num_edges())?;
    for v in map.live_slots() {
        let neighbors = g.out_neighbors(v);
        let weights = g.out_weights(v);
        for (i, &u) in neighbors.iter().enumerate() {
            let wt = weights.map_or(1, |ws| ws[i]);
            writeln!(w, "a {} {} {}", map.id_of(v) + shift, map.id_of(u) + shift, wt)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NeighborMode};
    use crate::loaders::{load_dimacs_gr, load_edge_list};
    use std::io::Cursor;

    #[test]
    fn edge_list_round_trips() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let mut text = Vec::new();
        write_edge_list(&mut text, &g).unwrap();
        let g2 = load_edge_list(Cursor::new(text), NeighborMode::OutOnly).unwrap();
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g2.out_neighbors(0), g.out_neighbors(0));
    }

    #[test]
    fn weighted_edge_list_round_trips() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(0, 1, 5);
        b.add_weighted_edge(1, 0, 7);
        let g = b.build().unwrap();
        let mut text = Vec::new();
        write_edge_list(&mut text, &g).unwrap();
        let g2 = load_edge_list(Cursor::new(text), NeighborMode::OutOnly).unwrap();
        assert!(g2.is_weighted());
        assert_eq!(g2.out_weights(0).unwrap(), &[5]);
    }

    #[test]
    fn dimacs_round_trips_with_id_shift() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(1, 2, 20);
        let g = b.build().unwrap();
        let mut text = Vec::new();
        write_dimacs_gr(&mut text, &g).unwrap();
        let g2 = load_dimacs_gr(Cursor::new(text), NeighborMode::OutOnly).unwrap();
        assert_eq!(g2.num_vertices(), 3);
        // 0-based vertex 0 became DIMACS vertex 1.
        assert_eq!(g2.out_weights(g2.index_of(1)).unwrap(), &[10]);
    }

    #[test]
    fn one_based_graphs_are_not_double_shifted() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(1, 2, 3);
        let g = b.build().unwrap();
        let mut text = Vec::new();
        write_dimacs_gr(&mut text, &g).unwrap();
        let s = String::from_utf8(text).unwrap();
        assert!(s.contains("a 1 2 3"), "{s}");
    }

    #[test]
    fn unweighted_dimacs_export_uses_unit_weights() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let mut text = Vec::new();
        write_dimacs_gr(&mut text, &g).unwrap();
        assert!(String::from_utf8(text).unwrap().contains("a 1 2 1"));
    }
}
