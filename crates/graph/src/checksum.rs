//! FNV-1a 64-bit checksums for on-disk framing.
//!
//! Both durable formats in the workspace — the binary graph format
//! (`loaders::binary`, `IPGB` v2) and the engine checkpoint format
//! (`ipregel::recover`, `IPCK`) — trail their payload with the same
//! checksum so a short read or flipped byte is detected as corruption
//! instead of silently truncating a CSR or resuming from garbage.
//!
//! FNV-1a is not cryptographic; it defends against *accidents*
//! (truncation, bit rot, torn writes), which is the failure model here.
//! It has two properties that matter for that job: it is dependency-free
//! and streamable, and — because each step (xor a byte, multiply by an
//! odd prime) is a bijection on the 64-bit state — any single-byte
//! change in a fixed-length payload is guaranteed to change the digest.

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 hasher, for writers that emit their payload in
/// chunks and readers that validate while streaming.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64 { state: OFFSET_BASIS }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.state = h;
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Fnv64::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(&data));
    }

    #[test]
    fn single_byte_change_always_changes_digest() {
        let base: Vec<u8> = (0..64u8).collect();
        let digest = fnv1a64(&base);
        for i in 0..base.len() {
            let mut mutated = base.clone();
            mutated[i] ^= 0x01;
            assert_ne!(fnv1a64(&mutated), digest, "flip at byte {i} went undetected");
        }
    }
}
