//! Structural validators.
//!
//! Several applications carry structural preconditions — Hashmin is
//! connected components only on symmetric graphs, k-core peeling assumes
//! mutual edges, SSSP wants the source present. These checks let callers
//! verify preconditions once at load time instead of debugging wrong
//! fixpoints later.

use std::collections::HashSet;

use crate::csr::Graph;

/// Whether for every edge `u → v` the reverse `v → u` also exists
/// (multiplicities ignored).
pub fn is_symmetric(g: &Graph) -> bool {
    let map = g.address_map();
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for v in map.live_slots() {
        for &u in g.out_neighbors(v) {
            edges.insert((v, u));
        }
    }
    edges.iter().all(|&(a, b)| edges.contains(&(b, a)))
}

/// Number of self-loop edges.
pub fn count_self_loops(g: &Graph) -> u64 {
    let map = g.address_map();
    map.live_slots()
        .map(|v| g.out_neighbors(v).iter().filter(|&&u| u == v).count() as u64)
        .sum()
}

/// Number of duplicate directed edges (beyond the first occurrence).
pub fn count_duplicate_edges(g: &Graph) -> u64 {
    let map = g.address_map();
    let mut dupes = 0u64;
    let mut seen = HashSet::new();
    for v in map.live_slots() {
        seen.clear();
        for &u in g.out_neighbors(v) {
            if !seen.insert(u) {
                dupes += 1;
            }
        }
    }
    dupes
}

/// Whether the graph is weakly connected (one component after
/// symmetrisation). Isolated vertices count as their own components.
pub fn is_weakly_connected(g: &Graph) -> bool {
    let map = g.address_map();
    let n = g.num_vertices();
    if n <= 1 {
        return true;
    }
    // Union-find over symmetrised edges.
    let mut parent: Vec<u32> = (0..g.num_slots() as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for v in map.live_slots() {
        for &u in g.out_neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, u));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    let mut roots = map.live_slots().map(|v| find(&mut parent, v));
    let first = roots.next().expect("n > 1 checked");
    roots.all(|r| r == first)
}

/// Fraction of edges whose reverse also exists (1.0 = symmetric,
/// 0.0 = purely one-way). Parallel edges count once.
pub fn reciprocity(g: &Graph) -> f64 {
    let map = g.address_map();
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for v in map.live_slots() {
        for &u in g.out_neighbors(v) {
            edges.insert((v, u));
        }
    }
    if edges.is_empty() {
        return 1.0;
    }
    let mutual = edges.iter().filter(|&&(a, b)| edges.contains(&(b, a))).count();
    mutual as f64 / edges.len() as f64
}

/// A full structural report, for load-time logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Every edge has its reverse.
    pub symmetric: bool,
    /// Self-loop count.
    pub self_loops: u64,
    /// Duplicate directed edge count.
    pub duplicate_edges: u64,
    /// Weakly connected.
    pub weakly_connected: bool,
}

/// Run all validators.
pub fn validate(g: &Graph) -> ValidationReport {
    ValidationReport {
        symmetric: is_symmetric(g),
        self_loops: count_self_loops(g),
        duplicate_edges: count_duplicate_edges(g),
        weakly_connected: is_weakly_connected(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NeighborMode};

    fn build(edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn symmetric_detection() {
        assert!(is_symmetric(&build(&[(0, 1), (1, 0), (1, 2), (2, 1)])));
        assert!(!is_symmetric(&build(&[(0, 1), (1, 2), (2, 1)])));
        // Self-loops are their own reverse.
        assert!(is_symmetric(&build(&[(0, 0), (0, 1), (1, 0)])));
    }

    #[test]
    fn self_loop_counting() {
        assert_eq!(count_self_loops(&build(&[(0, 0), (1, 1), (0, 1)])), 2);
        assert_eq!(count_self_loops(&build(&[(0, 1)])), 0);
    }

    #[test]
    fn duplicate_counting() {
        assert_eq!(count_duplicate_edges(&build(&[(0, 1), (0, 1), (0, 1), (1, 0)])), 2);
        assert_eq!(count_duplicate_edges(&build(&[(0, 1), (1, 0)])), 0);
    }

    #[test]
    fn weak_connectivity() {
        assert!(is_weakly_connected(&build(&[(0, 1), (2, 1)]))); // direction-free
        assert!(!is_weakly_connected(&build(&[(0, 1), (2, 3)])));
        // Isolated vertex via declared range breaks connectivity.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, 3);
        b.add_edge(0, 1);
        assert!(!is_weakly_connected(&b.build().unwrap()));
    }

    #[test]
    fn single_vertex_is_connected() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, 1);
        b.add_edge(0, 0);
        assert!(is_weakly_connected(&b.build().unwrap()));
    }

    #[test]
    fn reciprocity_fraction() {
        assert_eq!(reciprocity(&build(&[(0, 1), (1, 0)])), 1.0);
        assert_eq!(reciprocity(&build(&[(0, 1), (1, 2)])), 0.0);
        let half = reciprocity(&build(&[(0, 1), (1, 0), (1, 2), (2, 3)]));
        assert!((half - 0.5).abs() < 1e-12);
        // Self-loops are their own reverse.
        assert_eq!(reciprocity(&build(&[(0, 0), (0, 1)])), 0.5);
    }

    #[test]
    fn full_report() {
        let r = validate(&build(&[(0, 1), (1, 0), (0, 0), (0, 1)]));
        assert_eq!(
            r,
            ValidationReport {
                symmetric: true,
                self_loops: 1,
                duplicate_edges: 1,
                weakly_connected: true
            }
        );
    }
}
