//! Property tests over the graph substrate: builder/CSR invariants,
//! addressing laws, loader/writer round-trips, transform algebra.

use std::collections::HashSet;
use std::io::Cursor;

use ipregel_graph::builder::AddressingChoice;
use ipregel_graph::loaders::{
    load_edge_list, read_binary, write_binary, write_edge_list,
};
use ipregel_graph::transform::{compact_ids, dedup_edges, remove_self_loops, reverse_edges, symmetrize};
use ipregel_graph::{AddressMap, AddressingMode, GraphBuilder, NeighborMode};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..200, 0u32..200), 1..400)
}

fn arb_based_edges() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (0u32..5000, arb_edges()).prop_map(|(base, edges)| {
        (base, edges.into_iter().map(|(u, v)| (u + base, v + base)).collect())
    })
}

fn build(edges: &[(u32, u32)], mode: NeighborMode) -> ipregel_graph::Graph {
    let mut b = GraphBuilder::new(mode);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("non-empty edge lists build")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn csr_preserves_every_edge((base, edges) in arb_based_edges()) {
        let g = build(&edges, NeighborMode::OutOnly);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        // Multiset of edges in == multiset out.
        let mut expect: Vec<(u32, u32)> = edges.clone();
        expect.sort_unstable();
        let mut got = Vec::new();
        for v in g.address_map().live_slots() {
            for &u in g.out_neighbors(v) {
                got.push((g.id_of(v), g.id_of(u)));
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        let _ = base;
    }

    #[test]
    fn in_csr_is_the_transpose((_, edges) in arb_based_edges()) {
        let g = build(&edges, NeighborMode::Both);
        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        for v in g.address_map().live_slots() {
            for &u in g.out_neighbors(v) {
                fwd.push((v, u));
            }
            for &u in g.in_neighbors(v) {
                bwd.push((u, v));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn degrees_sum_to_edge_count((_, edges) in arb_based_edges()) {
        let g = build(&edges, NeighborMode::Both);
        let out_sum: u64 = g.address_map().live_slots().map(|v| u64::from(g.out_degree(v))).sum();
        let in_sum: u64 = g.address_map().live_slots().map(|v| u64::from(g.in_degree(v))).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn addressing_round_trips(base in 0u32..1_000_000, n in 1u32..10_000) {
        for map in [
            AddressMap::offset(base, n),
            AddressMap::desolate(base.min(2048), n),
        ] {
            for id in [map.base(), map.base() + n / 2, map.base() + n - 1] {
                prop_assert_eq!(map.id_of(map.index_of(id)), id);
                prop_assert!(map.contains(id));
            }
            prop_assert!(!map.contains(map.base().wrapping_sub(1)) || map.base() == 0);
            prop_assert_eq!(map.slots(), map.num_vertices() as usize + map.wasted_slots());
        }
    }

    #[test]
    fn forced_addressing_modes_agree_on_topology((_, edges) in arb_based_edges()) {
        let modes = [
            AddressingChoice::Force(AddressingMode::Offset),
            AddressingChoice::Force(AddressingMode::DesolateMemory),
        ];
        let graphs: Vec<_> = modes
            .iter()
            .map(|&c| {
                let mut b = GraphBuilder::new(NeighborMode::OutOnly).addressing(c);
                for &(u, v) in &edges {
                    b.add_edge(u, v);
                }
                b.build().unwrap()
            })
            .collect();
        let (a, b) = (&graphs[0], &graphs[1]);
        prop_assert_eq!(a.num_vertices(), b.num_vertices());
        for slot in a.address_map().live_slots() {
            let id = a.id_of(slot);
            let na: Vec<u32> = a.out_neighbors(a.index_of(id)).iter().map(|&x| a.id_of(x)).collect();
            let nb: Vec<u32> = b.out_neighbors(b.index_of(id)).iter().map(|&x| b.id_of(x)).collect();
            prop_assert_eq!(na, nb, "vertex {}", id);
        }
    }

    #[test]
    fn binary_format_round_trips((base, edges) in arb_based_edges()) {
        let max = edges.iter().map(|&(u, v)| u.max(v)).max().unwrap();
        let n = max - base + 1;
        let mut file = Vec::new();
        write_binary(&mut file, base, n, &edges, None).unwrap();
        let g = read_binary(&file[..], NeighborMode::OutOnly).unwrap();
        let direct = build(&edges, NeighborMode::OutOnly);
        prop_assert_eq!(g.num_edges(), direct.num_edges());
        for slot in direct.address_map().live_slots() {
            let id = direct.id_of(slot);
            let a: Vec<u32> = direct.out_neighbors(slot).iter().map(|&x| direct.id_of(x)).collect();
            let b: Vec<u32> = g.out_neighbors(g.index_of(id)).iter().map(|&x| g.id_of(x)).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn text_writer_round_trips((_, edges) in arb_based_edges()) {
        let g = build(&edges, NeighborMode::OutOnly);
        let mut text = Vec::new();
        write_edge_list(&mut text, &g).unwrap();
        let g2 = load_edge_list(Cursor::new(text), NeighborMode::OutOnly).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn symmetrize_doubles_and_contains_reverses(edges in arb_edges()) {
        let mut s = edges.clone();
        symmetrize(&mut s);
        prop_assert_eq!(s.len(), edges.len() * 2);
        let set: HashSet<(u32, u32)> = s.iter().copied().collect();
        for (u, v) in edges {
            prop_assert!(set.contains(&(u, v)) && set.contains(&(v, u)));
        }
    }

    #[test]
    fn reverse_is_an_involution(edges in arb_edges()) {
        let mut r = edges.clone();
        reverse_edges(&mut r);
        reverse_edges(&mut r);
        prop_assert_eq!(r, edges);
    }

    #[test]
    fn dedup_is_idempotent_and_loses_no_distinct_edge(edges in arb_edges()) {
        let mut once = edges.clone();
        dedup_edges(&mut once);
        let mut twice = once.clone();
        dedup_edges(&mut twice);
        prop_assert_eq!(&once, &twice);
        let a: HashSet<_> = edges.iter().copied().collect();
        let b: HashSet<_> = once.iter().copied().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn compact_ids_is_dense_and_consistent(edges in arb_edges()) {
        let mut c = edges.clone();
        let remap = compact_ids(&mut c);
        // Dense range.
        let used: HashSet<u32> = c.iter().flat_map(|&(u, v)| [u, v]).collect();
        prop_assert_eq!(used.len(), remap.len());
        prop_assert!(used.iter().all(|&x| (x as usize) < remap.len()));
        // Structure preserved under the map.
        for (&(u0, v0), &(u1, v1)) in edges.iter().zip(&c) {
            prop_assert_eq!(remap[&u0], u1);
            prop_assert_eq!(remap[&v0], v1);
        }
    }

    #[test]
    fn self_loop_removal_only_removes_self_loops(edges in arb_edges()) {
        let mut cleaned = edges.clone();
        remove_self_loops(&mut cleaned);
        prop_assert!(cleaned.iter().all(|&(u, v)| u != v));
        let removed = edges.len() - cleaned.len();
        let loops = edges.iter().filter(|&&(u, v)| u == v).count();
        prop_assert_eq!(removed, loops);
    }
}
