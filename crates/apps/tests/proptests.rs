//! Property tests: every application against its sequential oracle on
//! randomised graphs, across engine versions.

use ipregel::{run, CombinerKind, RunConfig, Version};
use ipregel_apps::kcore::kcore_peeling;
use ipregel_apps::maxvalue::maxvalue_fixpoint;
use ipregel_apps::reachability::reachability_oracle;
use ipregel_apps::widest_path::widest_path_oracle;
use ipregel_apps::{
    reference, ConvergingPageRank, DegreeCentrality, KCore, MaxValue, MultiSourceReachability,
    WidestPath,
};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};
use proptest::prelude::*;

/// Random directed graph on up to 50 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..50, prop::collection::vec((0u32..50, 0u32..50), 1..200)).prop_map(|(n, raw)| {
        let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, n);
        let mut any = false;
        for (u, v) in raw {
            if u < n && v < n {
                b.add_edge(u, v);
                any = true;
            }
        }
        if !any {
            b.add_edge(0, n - 1);
        }
        b.build().expect("arb graph builds")
    })
}

/// Random *symmetric* graph (for k-core).
fn arb_sym_graph() -> impl Strategy<Value = Graph> {
    (2u32..40, prop::collection::vec((0u32..40, 0u32..40), 1..120)).prop_map(|(n, raw)| {
        let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, n);
        let mut any = false;
        for (u, v) in raw {
            if u < n && v < n && u != v {
                b.add_edge(u, v);
                b.add_edge(v, u);
                any = true;
            }
        }
        if !any {
            b.add_edge(0, 1);
            b.add_edge(1, 0);
        }
        b.build().expect("arb sym graph builds")
    })
}

fn spin_bypass() -> Version {
    Version { combiner: CombinerKind::Spinlock, selection_bypass: true }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn maxvalue_matches_fixpoint(g in arb_graph()) {
        let expected = maxvalue_fixpoint(&g);
        for v in Version::paper_versions() {
            let out = run(&g, &MaxValue, v, &RunConfig::default());
            prop_assert_eq!(&out.values, &expected, "{}", v.label());
        }
    }

    #[test]
    fn kcore_matches_peeling(g in arb_sym_graph(), k in 0u32..6) {
        let expected = kcore_peeling(&g, k);
        let out = run(&g, &KCore { k }, spin_bypass(), &RunConfig::default());
        for slot in g.address_map().live_slots() {
            prop_assert_eq!(out.values[slot as usize].alive, expected[slot as usize], "slot {}", slot);
        }
    }

    #[test]
    fn widest_path_matches_oracle(
        n in 2u32..40,
        raw in prop::collection::vec((0u32..40, 0u32..40, 1u32..50), 1..120),
    ) {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, n);
        let mut any = false;
        for (u, v, w) in raw {
            if u < n && v < n {
                b.add_weighted_edge(u, v, w);
                any = true;
            }
        }
        prop_assume!(any);
        let g = b.build().unwrap();
        let expected = widest_path_oracle(&g, 0);
        for bypass in [false, true] {
            let out = run(
                &g,
                &WidestPath { source: 0 },
                Version { combiner: CombinerKind::Spinlock, selection_bypass: bypass },
                &RunConfig::default(),
            );
            prop_assert_eq!(&out.values, &expected, "bypass={}", bypass);
        }
    }

    #[test]
    fn reachability_matches_bfs_oracle(g in arb_graph(), picks in prop::collection::vec(0u32..50, 1..8)) {
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = picks.into_iter().map(|p| p % n).collect();
        let q = MultiSourceReachability::new(sources.clone());
        let expected = reachability_oracle(&g, &sources);
        let out = run(&g, &q, spin_bypass(), &RunConfig::default());
        prop_assert_eq!(&out.values, &expected);
    }

    #[test]
    fn degree_centrality_matches_graph_counts(g in arb_graph()) {
        let out = run(&g, &DegreeCentrality, spin_bypass(), &RunConfig::default());
        for slot in g.address_map().live_slots() {
            let d = &out.values[slot as usize];
            prop_assert_eq!(d.out_degree, g.out_degree(slot));
            prop_assert_eq!(d.in_degree, g.in_degree(slot));
        }
    }

    #[test]
    fn converging_pagerank_approaches_power_iteration(g in arb_graph()) {
        let pr = ConvergingPageRank { damping: 0.85, tolerance: 1e-11, max_rounds: 400 };
        let out = run(
            &g,
            &pr,
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        let expected = reference::pagerank_power(&g, 400, 0.85);
        for slot in g.address_map().live_slots() {
            let got = out.values[slot as usize].0;
            let want = expected[slot as usize];
            prop_assert!((got - want).abs() < 1e-8, "slot {}: {} vs {}", slot, got, want);
        }
    }
}
