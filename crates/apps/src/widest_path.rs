//! Single-source widest path (maximum-bottleneck path) — extension.
//!
//! The width of a path is its minimum edge weight; the widest path
//! maximises that bottleneck (network throughput planning, maximum-flow
//! lower bounds). Vertex-centric shape: messages carry achievable
//! widths, the combiner keeps the **max** — a max-of-min recursion that
//! exercises a combiner family the paper's three applications don't
//! (min for SSSP/Hashmin, sum for PageRank).
//!
//! Point-to-point sends with per-edge weights: push combiners only.

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Single-source widest path.
#[derive(Debug, Clone)]
pub struct WidestPath {
    /// External identifier of the source.
    pub source: VertexId,
}

impl WidestPath {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Uses weighted `send`: **not** pull-compatible.
    pub const BROADCAST_ONLY: bool = false;
}

impl VertexProgram for WidestPath {
    type Value = u32; // best bottleneck width from the source; 0 = unreached
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        0
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        let mut best = if ctx.id() == self.source { u32::MAX } else { 0 };
        while let Some(m) = ctx.next_message() {
            best = best.max(m);
        }
        if best > *value {
            *value = best;
            let width = *value;
            let mut sends: Vec<(VertexId, u32)> = Vec::new();
            ctx.for_each_out_edge(&mut |to, w| sends.push((to, width.min(w))));
            for (to, offered) in sends {
                ctx.send(to, offered);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new > *old {
            *old = new;
        }
    }
}

/// Sequential oracle: widest-path widths by a max-heap Dijkstra variant.
/// Indexed by slot; the source gets `u32::MAX`, unreached vertices 0.
pub fn widest_path_oracle(g: &ipregel_graph::Graph, source: VertexId) -> Vec<u32> {
    let mut width = vec![0u32; g.num_slots()];
    let s = g.index_of(source);
    width[s as usize] = u32::MAX;
    let mut heap = std::collections::BinaryHeap::from([(u32::MAX, s)]);
    while let Some((w, v)) = heap.pop() {
        if w < width[v as usize] {
            continue;
        }
        let neighbors = g.out_neighbors(v);
        let weights = g.out_weights(v);
        for (i, &u) in neighbors.iter().enumerate() {
            let ew = weights.map_or(1, |ws| ws[i]);
            let cand = w.min(ew);
            if cand > width[u as usize] {
                width[u as usize] = cand;
                heap.push((cand, u));
            }
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    #[test]
    fn picks_the_wider_bottleneck() {
        // 0→1→3 bottleneck 5; 0→2→3 bottleneck 8.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(0, 1, 5);
        b.add_weighted_edge(1, 3, 20);
        b.add_weighted_edge(0, 2, 8);
        b.add_weighted_edge(2, 3, 9);
        let g = b.build().unwrap();
        for bypass in [false, true] {
            let out = run(
                &g,
                &WidestPath { source: 0 },
                Version { combiner: CombinerKind::Spinlock, selection_bypass: bypass },
                &RunConfig::default(),
            );
            assert_eq!(*out.value_of(3), 8, "bypass={bypass}");
            assert_eq!(*out.value_of(0), u32::MAX);
            assert_eq!(*out.value_of(1), 5);
        }
    }

    #[test]
    fn matches_oracle_on_a_grid() {
        use ipregel_graph::generators::grid::grid_road_edges;
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v, w) in grid_road_edges(12, 12, 2.8, 50, 4) {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build().unwrap();
        let expected = widest_path_oracle(&g, 0);
        let out = run(
            &g,
            &WidestPath { source: 0 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(out.values, expected);
    }

    #[test]
    fn unreachable_vertices_stay_zero() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(0, 1, 3);
        b.add_weighted_edge(2, 3, 4);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &WidestPath { source: 0 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(2), 0);
        assert_eq!(*out.value_of(3), 0);
    }
}
