//! Breadth-first search levels (extension application).
//!
//! Equivalent to unit-weight SSSP in its result, but written in the
//! "first touch wins" style: a vertex acts only on its first activation,
//! making the number of vertex executions exactly |reachable| + dupes.
//! Halts every superstep (bypass-compatible), broadcast-only
//! (pull-compatible) — a fourth data point for the version sweep.

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Unvisited marker.
pub const UNVISITED: u32 = u32::MAX;

/// BFS level computation from `source`.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// External identifier of the root.
    pub source: VertexId,
}

impl Bfs {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for Bfs {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        UNVISITED
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        if *value == UNVISITED {
            let level = if ctx.id() == self.source && ctx.is_first_superstep() {
                Some(0)
            } else {
                ctx.next_message()
            };
            if let Some(l) = level {
                *value = l;
                ctx.broadcast(l + 1);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    #[test]
    fn levels_on_a_binary_tree() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 0..7u32 {
            for c in [2 * i + 1, 2 * i + 2] {
                if c < 7 {
                    b.add_edge(i, c);
                }
            }
        }
        let g = b.build().unwrap();
        for v in Version::paper_versions() {
            let out = run(&g, &Bfs { source: 0 }, v, &RunConfig::default());
            assert_eq!(*out.value_of(0), 0, "{}", v.label());
            assert_eq!(*out.value_of(1), 1);
            assert_eq!(*out.value_of(2), 1);
            assert_eq!(*out.value_of(6), 2);
        }
    }

    #[test]
    fn unreachable_stays_unvisited() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(2, 0); // 2 can reach 0 but not vice versa
        let g = b.build().unwrap();
        let out = run(
            &g,
            &Bfs { source: 0 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(2), UNVISITED);
    }

    #[test]
    fn bfs_superstep_count_tracks_eccentricity() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 0..10u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build().unwrap();
        let out = run(
            &g,
            &Bfs { source: 0 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(10), 10);
        // 11 frontier supersteps (levels 0..=10) + the empty-worklist stop.
        assert!(out.stats.num_supersteps() >= 11);
    }
}
