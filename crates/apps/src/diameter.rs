//! Pseudo-diameter estimation by double sweep.
//!
//! Two BFS runs: from an arbitrary start, find a farthest vertex; BFS
//! again from there — the second eccentricity is a strong lower bound on
//! the diameter (exact on trees). The diameter is the graph property the
//! paper's Section 7.2 analysis leans on ("a slower propagation of
//! messages, thus a high number of supersteps"), so the suite exposes it
//! as a first-class measurement built from the BFS application.

use ipregel::engine::RunError;
use ipregel::{try_run, RunConfig, Version};
use ipregel_graph::{Graph, VertexId};

use crate::bfs::{Bfs, UNVISITED};

/// Result of a double-sweep estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiameterEstimate {
    /// Lower bound on the diameter (exact for trees).
    pub pseudo_diameter: u32,
    /// Endpoint found by the first sweep.
    pub far_vertex: VertexId,
    /// Endpoint of the estimated-longest shortest path.
    pub opposite_vertex: VertexId,
}

/// Run the double sweep from `start` using the given engine version.
///
/// Returns `None` when `start` reaches no other vertex. On directed
/// graphs the estimate concerns directed eccentricities (symmetrise
/// first for the undirected diameter).
///
/// # Panics
/// On any [`RunError`] from the underlying BFS runs — fault-tolerant
/// callers use [`try_pseudo_diameter`].
pub fn pseudo_diameter(
    g: &Graph,
    start: VertexId,
    version: Version,
    config: &RunConfig,
) -> Option<DiameterEstimate> {
    try_pseudo_diameter(g, start, version, config)
        .unwrap_or_else(|e| panic!("pseudo_diameter: {e}"))
}

/// Fallible [`pseudo_diameter`]: engine failures (a panicking vertex, a
/// missed deadline — the sweep runs two BFS passes under one
/// [`RunConfig::deadline`] budget each) surface as [`RunError`].
pub fn try_pseudo_diameter(
    g: &Graph,
    start: VertexId,
    version: Version,
    config: &RunConfig,
) -> Result<Option<DiameterEstimate>, RunError> {
    let first = try_run(g, &Bfs { source: start }, version, config)?;
    let Some((far_vertex, _)) = first
        .iter()
        .filter(|(_, &l)| l != UNVISITED)
        .max_by_key(|&(id, &l)| (l, std::cmp::Reverse(id)))
    else {
        return Ok(None);
    };
    let second = try_run(g, &Bfs { source: far_vertex }, version, config)?;
    let Some((opposite_vertex, &ecc)) = second
        .iter()
        .filter(|(_, &l)| l != UNVISITED)
        .max_by_key(|&(id, &l)| (l, std::cmp::Reverse(id)))
    else {
        return Ok(None);
    };
    if ecc == 0 {
        return Ok(None); // start reaches nothing beyond itself
    }
    Ok(Some(DiameterEstimate { pseudo_diameter: ecc, far_vertex, opposite_vertex }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::CombinerKind;
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn version() -> Version {
        Version { combiner: CombinerKind::Spinlock, selection_bypass: true }
    }

    fn sym(edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for &(u, v) in edges {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        b.build().unwrap()
    }

    #[test]
    fn exact_on_a_path() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        // Start mid-path: first sweep finds an end, second the other end.
        let est = pseudo_diameter(&g, 2, version(), &RunConfig::default()).unwrap();
        assert_eq!(est.pseudo_diameter, 4);
        let ends = [est.far_vertex, est.opposite_vertex];
        assert!(ends.contains(&0) && ends.contains(&4));
    }

    #[test]
    fn exact_on_a_tree() {
        //      0
        //    /   \
        //   1     2
        //  / \     \
        // 3   4     5 — 6
        let g = sym(&[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)]);
        let est = pseudo_diameter(&g, 0, version(), &RunConfig::default()).unwrap();
        assert_eq!(est.pseudo_diameter, 5); // 3/4 … 6
    }

    #[test]
    fn lower_bounds_a_cycle() {
        let n = 12u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = sym(&edges);
        let est = pseudo_diameter(&g, 0, version(), &RunConfig::default()).unwrap();
        assert_eq!(est.pseudo_diameter, n / 2); // exact here too
    }

    #[test]
    fn isolated_start_yields_none() {
        let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, 4);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        let g = b.build().unwrap();
        assert_eq!(pseudo_diameter(&g, 0, version(), &RunConfig::default()), None);
    }

    #[test]
    fn grid_estimate_matches_manhattan_diameter() {
        use ipregel_graph::generators::grid::grid_road_edges;
        let (rows, cols) = (9u32, 7u32);
        let mut b = GraphBuilder::new(NeighborMode::Both);
        // Dense grid (target degree 4): diameter = (rows-1)+(cols-1).
        for (u, v, _) in grid_road_edges(rows, cols, 4.0, 1, 3) {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let est = pseudo_diameter(&g, 0, version(), &RunConfig::default()).unwrap();
        assert!(est.pseudo_diameter >= rows + cols - 2);
    }
}
