//! Personalised PageRank (extension): random walks that teleport back to
//! a *source* vertex instead of to the uniform distribution — the
//! standard "importance relative to me" measure used for recommendation
//! and local community scoring.
//!
//! Identical communication shape to Figure 6's PageRank (broadcast-only,
//! sum combiner, never halts until the round cap), so it runs on all
//! three combiner versions including the race-free pull engine.

use ipregel::{Context, VertexProgram};
use ipregel_graph::{Graph, VertexId};

/// Fixed-iteration personalised PageRank.
#[derive(Debug, Clone)]
pub struct PersonalizedPageRank {
    /// The teleport target ("me").
    pub source: VertexId,
    /// Walk continuation probability (damping).
    pub damping: f64,
    /// Number of update supersteps.
    pub rounds: usize,
}

impl PersonalizedPageRank {
    /// All vertices stay active: bypass unsound (like PageRank).
    pub const BYPASS_COMPATIBLE: bool = false;
    /// Broadcast-only: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for PersonalizedPageRank {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, _id: VertexId) -> f64 {
        0.0
    }

    fn compute<C: Context<Message = f64>>(&self, value: &mut f64, ctx: &mut C) {
        let teleport = if ctx.id() == self.source { 1.0 - self.damping } else { 0.0 };
        if ctx.is_first_superstep() {
            // All walk mass starts at the source.
            *value = if ctx.id() == self.source { 1.0 } else { 0.0 };
        } else {
            let mut sum = 0.0;
            while let Some(m) = ctx.next_message() {
                sum += m;
            }
            *value = teleport + self.damping * sum;
        }
        if ctx.superstep() < self.rounds {
            let deg = ctx.out_degree();
            if deg > 0 {
                ctx.broadcast(*value / f64::from(deg));
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(old: &mut f64, new: f64) {
        *old += new;
    }
}

/// Sequential oracle with the exact superstep semantics above.
pub fn ppr_power(g: &Graph, source: VertexId, damping: f64, rounds: usize) -> Vec<f64> {
    let map = g.address_map();
    let slots = g.num_slots();
    let src = g.index_of(source) as usize;
    let mut rank = vec![0.0f64; slots];
    rank[src] = 1.0;
    for _ in 0..rounds {
        let mut incoming = vec![0.0f64; slots];
        for v in map.live_slots() {
            let deg = g.out_degree(v);
            if deg > 0 {
                let share = rank[v as usize] / f64::from(deg);
                for &u in g.out_neighbors(v) {
                    incoming[u as usize] += share;
                }
            }
        }
        for v in map.live_slots() {
            let teleport = if v as usize == src { 1.0 - damping } else { 0.0 };
            rank[v as usize] = teleport + damping * incoming[v as usize];
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_rel_diff;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 3), (3, 1), (3, 4), (4, 3)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_oracle_on_all_combiners() {
        let g = graph();
        let p = PersonalizedPageRank { source: 0, damping: 0.85, rounds: 25 };
        let expected = ppr_power(&g, 0, 0.85, 25);
        for combiner in [CombinerKind::Mutex, CombinerKind::Spinlock, CombinerKind::Broadcast] {
            let out = run(&g, &p, Version { combiner, selection_bypass: false }, &RunConfig::default());
            let diff = max_rel_diff(&g, &out.values, &expected);
            assert!(diff < 1e-9, "{combiner:?} diverged by {diff}");
        }
    }

    #[test]
    fn source_holds_the_most_mass() {
        let g = graph();
        let p = PersonalizedPageRank { source: 0, damping: 0.85, rounds: 30 };
        let out = run(
            &g,
            &p,
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        // Proximity to the source dominates: the source and its direct
        // successor hold more mass than the most distant vertex.
        let far = *out.value_of(4);
        assert!(*out.value_of(0) > far, "source vs far");
        assert!(*out.value_of(1) > far, "neighbour vs far");
        // And the teleport keeps the source well above the global-uniform
        // level 1/n.
        assert!(*out.value_of(0) > 0.2);
    }

    #[test]
    fn mass_stays_near_the_walk_semantics() {
        // Total mass ≤ 1 + teleport replenishment bound; strictly positive
        // only on vertices reachable from the source.
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 3); // unreachable from 0
        b.add_edge(3, 2);
        let g = b.build().unwrap();
        let p = PersonalizedPageRank { source: 0, damping: 0.85, rounds: 20 };
        let out = run(
            &g,
            &p,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(2), 0.0);
        assert_eq!(*out.value_of(3), 0.0);
        assert!(*out.value_of(0) > 0.0 && *out.value_of(1) > 0.0);
    }
}
