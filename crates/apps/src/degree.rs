//! Degree centrality: out-degree is free (the framework knows it); the
//! in-degree is computed the vertex-centric way — every vertex broadcasts
//! a count of 1 at superstep 0 and sums its inbox at superstep 1.
//!
//! Two supersteps, sum combiner, broadcast-only: a minimal exercise of
//! the combiner path that also doubles as documentation for how cheap
//! global structural queries look in the model.

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Per-vertex degree summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Degrees {
    /// Number of out-edges.
    pub out_degree: u32,
    /// Number of in-edges (counting parallel edges).
    pub in_degree: u32,
}

/// In/out degree computation.
#[derive(Debug, Clone, Default)]
pub struct DegreeCentrality;

impl DegreeCentrality {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for DegreeCentrality {
    type Value = Degrees;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> Degrees {
        Degrees::default()
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut Degrees, ctx: &mut C) {
        if ctx.is_first_superstep() {
            value.out_degree = ctx.out_degree();
            ctx.broadcast(1);
        } else {
            let mut count = 0;
            while let Some(m) = ctx.next_message() {
                count += m;
            }
            value.in_degree = count;
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        *old += new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    #[test]
    fn star_degrees_on_all_versions() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 1..6u32 {
            b.add_edge(0, i);
        }
        let g = b.build().unwrap();
        for v in Version::paper_versions() {
            let out = run(&g, &DegreeCentrality, v, &RunConfig::default());
            assert_eq!(*out.value_of(0), Degrees { out_degree: 5, in_degree: 0 }, "{}", v.label());
            for leaf in 1..6 {
                assert_eq!(*out.value_of(leaf), Degrees { out_degree: 0, in_degree: 1 });
            }
        }
    }

    #[test]
    fn parallel_edges_are_counted() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &DegreeCentrality,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(1), Degrees { out_degree: 1, in_degree: 2 });
    }

    #[test]
    fn completes_in_two_supersteps() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &DegreeCentrality,
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(out.stats.num_supersteps(), 2);
    }
}
