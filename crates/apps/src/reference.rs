//! Sequential reference implementations.
//!
//! Each vertex-centric application has an independent, textbook
//! sequential counterpart here. The test suites run every engine version
//! against these oracles on randomised graphs — if an engine, mailbox, or
//! worklist is wrong, the mismatch surfaces immediately.

use std::collections::{BinaryHeap, VecDeque};

use ipregel_graph::Graph;

/// BFS levels (= unit-weight shortest distances) from `source` (external
/// id); `u32::MAX` marks unreachable vertices. Indexed by slot.
pub fn bfs_levels(g: &Graph, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_slots()];
    let s = g.index_of(source);
    dist[s as usize] = 0;
    let mut q = VecDeque::from([s]);
    while let Some(v) = q.pop_front() {
        let d = dist[v as usize];
        for &u in g.out_neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Dijkstra distances from `source` using edge weights (1 when the graph
/// is unweighted); `u32::MAX` marks unreachable. Indexed by slot.
pub fn dijkstra(g: &Graph, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_slots()];
    let s = g.index_of(source);
    dist[s as usize] = 0;
    // Max-heap of (Reverse(distance), vertex).
    let mut heap = BinaryHeap::from([(std::cmp::Reverse(0u32), s)]);
    while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let neighbors = g.out_neighbors(v);
        let weights = g.out_weights(v);
        for (i, &u) in neighbors.iter().enumerate() {
            let w = weights.map_or(1, |ws| ws[i]);
            let nd = d.saturating_add(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push((std::cmp::Reverse(nd), u));
            }
        }
    }
    dist
}

/// Min-label fixpoint: `label(v)` = the smallest external id `u` such
/// that `v` is reachable from `u` by a directed path (including `v`
/// itself). On a symmetric graph this is connected components — exactly
/// what Hashmin converges to. Indexed by slot; desolate slots keep
/// `u32::MAX`.
pub fn minlabel_fixpoint(g: &Graph) -> Vec<u32> {
    let map = g.address_map();
    let mut label = vec![u32::MAX; g.num_slots()];
    for v in map.live_slots() {
        label[v as usize] = map.id_of(v);
    }
    // Worklist relaxation: propagate labels along out-edges.
    let mut queue: VecDeque<u32> = map.live_slots().collect();
    let mut queued = vec![true; g.num_slots()];
    while let Some(v) = queue.pop_front() {
        queued[v as usize] = false;
        let l = label[v as usize];
        for &u in g.out_neighbors(v) {
            if l < label[u as usize] {
                label[u as usize] = l;
                if !queued[u as usize] {
                    queued[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    label
}

/// Connected components of the *symmetrised* graph via union-find,
/// labelled by minimum external id. Indexed by slot.
pub fn components_union_find(g: &Graph) -> Vec<u32> {
    let map = g.address_map();
    let slots = g.num_slots();
    let mut parent: Vec<u32> = (0..slots as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for v in map.live_slots() {
        for &u in g.out_neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, u));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    // Label every slot with the min external id of its root class.
    let mut min_id = vec![u32::MAX; slots];
    for v in map.live_slots() {
        let r = find(&mut parent, v) as usize;
        min_id[r] = min_id[r].min(map.id_of(v));
    }
    let mut label = vec![u32::MAX; slots];
    for v in map.live_slots() {
        let r = find(&mut parent, v) as usize;
        label[v as usize] = min_id[r];
    }
    label
}

/// Power-iteration PageRank with the exact semantics of the paper's
/// Figure 6 (fixed iteration count, sinks leak mass, damping 0.85 by
/// default). Indexed by slot.
pub fn pagerank_power(g: &Graph, rounds: usize, damping: f64) -> Vec<f64> {
    let map = g.address_map();
    let n = g.num_vertices() as f64;
    let slots = g.num_slots();
    let mut rank = vec![0.0f64; slots];
    for v in map.live_slots() {
        rank[v as usize] = 1.0 / n;
    }
    for _ in 0..rounds {
        let mut incoming = vec![0.0f64; slots];
        for v in map.live_slots() {
            let deg = g.out_degree(v);
            if deg > 0 {
                let share = rank[v as usize] / f64::from(deg);
                for &u in g.out_neighbors(v) {
                    incoming[u as usize] += share;
                }
            }
        }
        for v in map.live_slots() {
            rank[v as usize] = (1.0 - damping) / n + damping * incoming[v as usize];
        }
    }
    rank
}

/// Maximum relative difference between two rank vectors over live slots
/// (for comparing engine output against [`pagerank_power`]; parallel
/// summation reorders float additions, so exact equality is not
/// expected).
pub fn max_rel_diff(g: &Graph, a: &[f64], b: &[f64]) -> f64 {
    g.address_map()
        .live_slots()
        .map(|v| {
            let (x, y) = (a[v as usize], b[v as usize]);
            let scale = x.abs().max(y.abs()).max(1e-300);
            (x - y).abs() / scale
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn diamond() -> Graph {
        // 0→1→3, 0→2→3 with weights making the 2-branch cheaper.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(1, 3, 10);
        b.add_weighted_edge(0, 2, 1);
        b.add_weighted_edge(2, 3, 1);
        b.build().unwrap()
    }

    #[test]
    fn bfs_counts_hops() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build().unwrap();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 1]);
    }

    #[test]
    fn dijkstra_takes_cheap_branch() {
        let g = diamond();
        assert_eq!(dijkstra(&g, 0), vec![0, 10, 1, 2]);
    }

    #[test]
    fn dijkstra_on_unweighted_equals_bfs() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        assert_eq!(dijkstra(&g, 0), bfs_levels(&g, 0));
    }

    #[test]
    fn minlabel_respects_direction() {
        // 0→1 but 2 is only reachable from 3 (3→2): label(2) = 2? No — 3→2
        // means 2 hears 3's label but 3 > 2, so label(2) stays 2; label(3)=3.
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        b.add_edge(3, 2);
        let g = b.build().unwrap();
        assert_eq!(minlabel_fixpoint(&g), vec![0, 0, 2, 3]);
    }

    #[test]
    fn union_find_matches_minlabel_on_symmetric_graphs() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for (u, v) in [(0, 1), (1, 0), (2, 3), (3, 2), (3, 4), (4, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        assert_eq!(components_union_find(&g), minlabel_fixpoint(&g));
    }

    #[test]
    fn pagerank_power_is_uniform_on_cycle() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        for i in 0..4u32 {
            b.add_edge(i, (i + 1) % 4);
        }
        let g = b.build().unwrap();
        let r = pagerank_power(&g, 20, 0.85);
        for rank in r.iter().take(4) {
            assert!((rank - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn max_rel_diff_detects_divergence() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(max_rel_diff(&g, &[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_rel_diff(&g, &[1.0, 2.0], &[1.0, 3.0]) > 0.3);
    }
}
