//! Hashmin: connected components by minimum-label propagation.
//!
//! Each vertex adopts the smallest vertex identifier it has heard of and
//! re-broadcasts on improvement; at fixpoint every vertex of a
//! (strongly-communicating) component holds the component's minimum id.
//! On a symmetric graph this is exactly connected components.
//!
//! Active-vertex profile (Section 7.1.4): starts with *all* vertices
//! active, then decreases to none — between PageRank's "always all" and
//! SSSP's "always few". Vertices vote to halt every superstep, so
//! Hashmin is selection-bypass compatible; it is also broadcast-only,
//! so pull-combiner compatible.

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Min-label connected components.
#[derive(Debug, Clone, Default)]
pub struct Hashmin;

impl Hashmin {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for Hashmin {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        u32::MAX
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        // Like Figure 5's SSSP with "source distance" replaced by the
        // vertex's own identifier.
        let mut reference = ctx.id();
        while let Some(m) = ctx.next_message() {
            reference = reference.min(m);
        }
        if reference < *value {
            *value = reference;
            ctx.broadcast(*value);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn sym(edges: &[(u32, u32)]) -> ipregel_graph::Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for &(u, v) in edges {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        b.build().unwrap()
    }

    #[test]
    fn two_components_get_two_labels_all_versions() {
        let g = sym(&[(0, 1), (1, 2), (3, 4)]);
        for v in Version::paper_versions() {
            let out = run(&g, &Hashmin, v, &RunConfig::default());
            assert_eq!(*out.value_of(0), 0, "{}", v.label());
            assert_eq!(*out.value_of(1), 0);
            assert_eq!(*out.value_of(2), 0);
            assert_eq!(*out.value_of(3), 3);
            assert_eq!(*out.value_of(4), 3);
        }
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let mut b = GraphBuilder::new(NeighborMode::Both).declare_id_range(0, 5);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(0), 0);
        assert_eq!(*out.value_of(3), 3);
        assert_eq!(*out.value_of(4), 4);
        assert_eq!(*out.value_of(1), 1);
        assert_eq!(*out.value_of(2), 1);
    }

    #[test]
    fn long_chain_needs_many_supersteps() {
        // Label 0 walks down the chain one superstep per hop — the low
        // density effect Section 7.2 blames for the USA-graph surge.
        let n = 50u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = sym(&edges);
        let out = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            &RunConfig::default(),
        );
        for id in 0..n {
            assert_eq!(*out.value_of(id), 0);
        }
        assert!(out.stats.num_supersteps() as u32 >= n - 1);
    }

    #[test]
    fn active_count_decreases_over_time() {
        // Section 7.1.4: Hashmin's actives decrease from all to none.
        let edges: Vec<_> = (0..40u32).map(|i| (i, (i + 1) % 40)).collect();
        let g = sym(&edges);
        let out = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        let first = out.stats.supersteps.first().unwrap().active;
        let last = out.stats.supersteps.last().unwrap().active;
        assert_eq!(first, 40);
        assert!(last < first);
    }
}
