//! PageRank, transliterated from the paper's Figure 6.
//!
//! ```c
//! void IP_compute(struct IP_vertex_t* me) {
//!     if (IP_is_first_superstep())
//!         me->val = 1.0 / IP_get_vertices_count();
//!     else {
//!         sum = Σ messages;
//!         me->val = 0.15 / IP_get_vertices_count() + 0.85 * sum;
//!     }
//!     if (IP_get_superstep() < ROUND)
//!         IP_broadcast(me, me->val / me->out_neighbours_count);
//!     else
//!         IP_vote_to_halt(me);
//! }
//! ```
//!
//! Every vertex stays active for all `rounds` supersteps, so the
//! selection bypass is *not applicable* (Section 4's note) — the harness
//! only runs PageRank on the three non-bypass versions, as Figure 7 does.

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Fixed-iteration PageRank (the paper runs `ROUND = 30`).
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Number of rank-update supersteps (`ROUND`).
    pub rounds: usize,
    /// Damping factor (0.85 in the paper's Figure 6).
    pub damping: f64,
}

impl PageRank {
    /// The paper's configuration: 30 iterations, damping 0.85.
    pub fn paper() -> Self {
        PageRank { rounds: 30, damping: 0.85 }
    }

    /// PageRank keeps every vertex active; bypass would be unsound.
    pub const BYPASS_COMPATIBLE: bool = false;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, _id: VertexId) -> f64 {
        0.0
    }

    fn compute<C: Context<Message = f64>>(&self, value: &mut f64, ctx: &mut C) {
        let n = ctx.num_vertices() as f64;
        if ctx.is_first_superstep() {
            *value = 1.0 / n;
        } else {
            let mut sum = 0.0;
            while let Some(m) = ctx.next_message() {
                sum += m;
            }
            *value = (1.0 - self.damping) / n + self.damping * sum;
        }
        if ctx.superstep() < self.rounds {
            let deg = ctx.out_degree();
            if deg > 0 {
                ctx.broadcast(*value / f64::from(deg));
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(old: &mut f64, new: f64) {
        *old += new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn cycle(n: u32) -> ipregel_graph::Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.build().unwrap()
    }

    #[test]
    fn uniform_on_a_cycle() {
        // On a directed cycle every vertex has rank 1/n at every iteration.
        let g = cycle(8);
        let pr = PageRank { rounds: 10, damping: 0.85 };
        let out = run(&g, &pr, Version { combiner: CombinerKind::Spinlock, selection_bypass: false }, &RunConfig::default());
        for (_, &rank) in out.iter() {
            assert!((rank - 0.125).abs() < 1e-12, "rank {rank}");
        }
        // ROUND supersteps of updates + 1 halting superstep.
        assert_eq!(out.stats.num_supersteps(), 11);
    }

    #[test]
    fn ranks_sum_to_at_most_one_with_sinks() {
        // Sinks leak rank under Figure 6 semantics (no redistribution):
        // total must stay ≤ 1 and > 0.
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3); // 3 is a sink
        let g = b.build().unwrap();
        let out = run(
            &g,
            &PageRank { rounds: 15, damping: 0.85 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        let total: f64 = out.iter().map(|(_, &v)| v).sum();
        assert!(total > 0.0 && total <= 1.0 + 1e-12, "total {total}");
    }

    #[test]
    fn star_centre_receives_most_rank() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 1..10u32 {
            b.add_edge(i, 0);
            b.add_edge(0, i);
        }
        let g = b.build().unwrap();
        let out = run(
            &g,
            &PageRank::paper(),
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        let centre = *out.value_of(0);
        for id in 1..10 {
            assert!(centre > *out.value_of(id));
        }
    }
}
