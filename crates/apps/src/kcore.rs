//! k-core decomposition by iterative peeling.
//!
//! A vertex is in the k-core if it survives repeatedly deleting all
//! vertices of (undirected) degree < k. Vertex-centric formulation: each
//! vertex tracks how many of its neighbours have been removed; when its
//! remaining degree falls below `k`, it removes itself and notifies its
//! neighbours (a sum-combined count, so simultaneous removals collapse
//! into one message). Vertices halt every superstep and reactivate on
//! notification — bypass-compatible, broadcast-only.
//!
//! Expects a symmetric graph (as does the sequential peeling oracle).

use ipregel::{Context, VertexProgram};
use ipregel_graph::{Graph, VertexId};

/// Per-vertex peeling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreState {
    /// Still part of the candidate k-core.
    pub alive: bool,
    /// Neighbours removed so far.
    pub lost: u32,
}

/// k-core membership: after the run, `alive` marks the k-core.
#[derive(Debug, Clone)]
pub struct KCore {
    /// The core order `k`.
    pub k: u32,
}

impl KCore {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for KCore {
    type Value = CoreState;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> CoreState {
        CoreState { alive: true, lost: 0 }
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut CoreState, ctx: &mut C) {
        if value.alive {
            while let Some(m) = ctx.next_message() {
                value.lost += m;
            }
            let remaining = ctx.out_degree().saturating_sub(value.lost);
            if remaining < self.k {
                value.alive = false;
                ctx.broadcast(1);
            }
        } else {
            // Already peeled: drain and ignore.
            while ctx.next_message().is_some() {}
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        *old += new;
    }
}

/// Sequential peeling oracle: `true` per slot iff the vertex is in the
/// k-core of the (symmetric) graph.
pub fn kcore_peeling(g: &Graph, k: u32) -> Vec<bool> {
    let map = g.address_map();
    let slots = g.num_slots();
    let mut degree = vec![0u32; slots];
    let mut alive = vec![false; slots];
    for v in map.live_slots() {
        degree[v as usize] = g.out_degree(v);
        alive[v as usize] = true;
    }
    let mut queue: Vec<u32> =
        map.live_slots().filter(|&v| degree[v as usize] < k).collect();
    while let Some(v) = queue.pop() {
        if !alive[v as usize] {
            continue;
        }
        alive[v as usize] = false;
        for &u in g.out_neighbors(v) {
            if alive[u as usize] {
                degree[u as usize] -= 1;
                if degree[u as usize] < k {
                    queue.push(u);
                }
            }
        }
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn sym(edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for &(u, v) in edges {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        b.build().unwrap()
    }

    /// Triangle {0,1,2} plus a tail 2–3–4.
    fn triangle_with_tail() -> Graph {
        sym(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn two_core_is_the_triangle() {
        let g = triangle_with_tail();
        for v in Version::paper_versions() {
            let out = run(&g, &KCore { k: 2 }, v, &RunConfig::default());
            for id in 0..3 {
                assert!(out.value_of(id).alive, "{} vertex {id}", v.label());
            }
            assert!(!out.value_of(3).alive);
            assert!(!out.value_of(4).alive);
        }
    }

    #[test]
    fn matches_peeling_oracle_on_a_mesh() {
        // 4×4 grid, k = 2 and 3.
        let mut edges = Vec::new();
        for r in 0..4u32 {
            for c in 0..4u32 {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 4 {
                    edges.push((v, v + 4));
                }
            }
        }
        let g = sym(&edges);
        for k in [2, 3] {
            let expected = kcore_peeling(&g, k);
            let out = run(
                &g,
                &KCore { k },
                Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
                &RunConfig::default(),
            );
            for slot in g.address_map().live_slots() {
                assert_eq!(
                    out.values[slot as usize].alive, expected[slot as usize],
                    "k={k} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn zero_core_keeps_everyone() {
        let g = triangle_with_tail();
        let out = run(
            &g,
            &KCore { k: 0 },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        assert!(out.iter().all(|(_, s)| s.alive));
    }

    #[test]
    fn huge_k_removes_everyone() {
        let g = triangle_with_tail();
        let out = run(
            &g,
            &KCore { k: 100 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            &RunConfig::default(),
        );
        assert!(out.iter().all(|(_, s)| !s.alive));
    }

    #[test]
    fn cascading_removal_takes_multiple_supersteps() {
        // A path: the 2-core is empty but peeling cascades inward from
        // the endpoints one layer per superstep.
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let out = run(
            &g,
            &KCore { k: 2 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert!(out.iter().all(|(_, s)| !s.alive));
        assert!(out.stats.num_supersteps() >= 3, "cascade must take supersteps");
    }
}
