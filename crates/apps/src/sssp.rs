//! Single-source shortest path, transliterated from the paper's Figure 5.
//!
//! The paper's SSSP assumes unit edge weights ("all edge weights are
//! equal to 1", footnote 1) and broadcasts `val + 1`; [`Sssp`] follows it
//! exactly. [`WeightedSssp`] is the natural extension for the DIMACS
//! distance graphs, relaxing each out-edge with its real weight through
//! point-to-point sends — push engines only.
//!
//! Every vertex votes to halt at the end of every superstep, so SSSP is
//! selection-bypass compatible — and with the USA road graph's low
//! density and tiny active set it is the paper's best case for the
//! bypass (×1400 in Figure 7).

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Infinite distance (the paper's `UINT_MAX`).
pub const INFINITY: u32 = u32::MAX;

/// Unit-weight SSSP (Figure 5).
#[derive(Debug, Clone)]
pub struct Sssp {
    /// External identifier of the source vertex (the paper uses id 2).
    pub source: VertexId,
}

impl Sssp {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for Sssp {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        INFINITY
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        let mut reference = if ctx.id() == self.source { 0 } else { INFINITY };
        while let Some(m) = ctx.next_message() {
            reference = reference.min(m);
        }
        if reference < *value {
            *value = reference;
            ctx.broadcast(*value + 1);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

/// Weighted SSSP (extension): relaxes real edge weights via
/// point-to-point sends, so it requires a push version (the pull
/// combiner is broadcast-only).
#[derive(Debug, Clone)]
pub struct WeightedSssp {
    /// External identifier of the source vertex.
    pub source: VertexId,
}

impl WeightedSssp {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Uses `send`, not broadcast: **not** pull-compatible.
    pub const BROADCAST_ONLY: bool = false;
}

impl VertexProgram for WeightedSssp {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> u32 {
        INFINITY
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut u32, ctx: &mut C) {
        let mut reference = if ctx.id() == self.source { 0 } else { INFINITY };
        while let Some(m) = ctx.next_message() {
            reference = reference.min(m);
        }
        if reference < *value {
            *value = reference;
            let base = *value;
            let mut sends: Vec<(VertexId, u32)> = Vec::new();
            ctx.for_each_out_edge(&mut |to, w| sends.push((to, base.saturating_add(w))));
            for (to, dist) in sends {
                ctx.send(to, dist);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        if new < *old {
            *old = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn all_versions() -> Vec<Version> {
        Version::paper_versions().to_vec()
    }

    #[test]
    fn unit_sssp_on_a_path_all_versions() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 0..5u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build().unwrap();
        for v in all_versions() {
            let out = run(&g, &Sssp { source: 0 }, v, &RunConfig::default());
            for id in 0..6u32 {
                assert_eq!(*out.value_of(id), id, "version {}", v.label());
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(2, 3); // disconnected from source 0
        let g = b.build().unwrap();
        let out = run(
            &g,
            &Sssp { source: 0 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(1), 1);
        assert_eq!(*out.value_of(2), INFINITY);
        assert_eq!(*out.value_of(3), INFINITY);
    }

    #[test]
    fn sssp_takes_shortcuts() {
        // 0→1→2→3 but also 0→3 directly.
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(0, 3);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &Sssp { source: 0 },
            Version { combiner: CombinerKind::Broadcast, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(3), 1);
    }

    #[test]
    fn weighted_sssp_prefers_cheap_detour() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_weighted_edge(0, 2, 10);
        b.add_weighted_edge(0, 1, 1);
        b.add_weighted_edge(1, 2, 2);
        let g = b.build().unwrap();
        for bypass in [false, true] {
            let out = run(
                &g,
                &WeightedSssp { source: 0 },
                Version { combiner: CombinerKind::Spinlock, selection_bypass: bypass },
                &RunConfig::default(),
            );
            assert_eq!(*out.value_of(2), 3, "bypass={bypass}");
            assert_eq!(*out.value_of(1), 1);
        }
    }

    #[test]
    fn weighted_sssp_on_unweighted_graph_uses_unit_weights() {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &WeightedSssp { source: 0 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(2), 2);
    }

    #[test]
    fn source_distance_is_zero_even_with_incoming_edges() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        let out = run(
            &g,
            &Sssp { source: 0 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(*out.value_of(0), 0);
        assert_eq!(*out.value_of(1), 1);
    }
}
