//! Two-colouring / bipartiteness check (extension).
//!
//! Colours spread outward from a seed: a vertex adopts the opposite
//! parity of its first-colouring message and re-broadcasts. Messages are
//! parity *sets* (bit 0 = "a neighbour has colour 0", bit 1 = colour 1),
//! OR-combined — so a vertex that hears both parities at once, or a
//! parity equal to its own, has witnessed an odd cycle. On a symmetric
//! connected graph the run decides bipartiteness of the component.
//!
//! Halts every superstep (bypass-compatible), broadcast-only
//! (pull-compatible), OR combiner (a third algebra after min/sum).

use ipregel::{Context, VertexProgram};
use ipregel_graph::{Graph, VertexId};

/// Per-vertex colouring state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColorState {
    /// Assigned colour (0 or 1); `None` until reached.
    pub color: Option<u8>,
    /// Whether this vertex witnessed an odd-cycle conflict.
    pub conflict: bool,
}

/// Bipartiteness check from a seed vertex.
#[derive(Debug, Clone)]
pub struct Bipartiteness {
    /// Seed vertex (colour 0).
    pub seed: VertexId,
}

impl Bipartiteness {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

/// Message: bitset of neighbour colours seen (bit c = colour c present).
impl VertexProgram for Bipartiteness {
    type Value = ColorState;
    type Message = u32;

    fn initial_value(&self, _id: VertexId) -> ColorState {
        ColorState::default()
    }

    fn compute<C: Context<Message = u32>>(&self, value: &mut ColorState, ctx: &mut C) {
        let mut seen = 0u32;
        while let Some(m) = ctx.next_message() {
            seen |= m;
        }
        if ctx.is_first_superstep() && ctx.id() == self.seed {
            value.color = Some(0);
            ctx.broadcast(0b01);
        } else if value.color.is_none() && seen != 0 {
            // Adopt the opposite of a neighbouring colour; if both
            // parities arrived simultaneously, an odd cycle exists.
            if seen == 0b11 {
                value.conflict = true;
            }
            let color = if seen & 0b01 != 0 { 1u8 } else { 0u8 };
            value.color = Some(color);
            ctx.broadcast(1 << color);
        } else if let Some(c) = value.color {
            // Already coloured: any same-parity message is a conflict.
            if seen & (1 << c) != 0 {
                value.conflict = true;
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u32, new: u32) {
        *old |= new;
    }
}

/// Oracle: BFS two-colouring; returns `(colors, is_bipartite)` for the
/// seed's weakly-symmetric component (expects a symmetric graph).
pub fn bipartite_oracle(g: &Graph, seed: VertexId) -> (Vec<Option<u8>>, bool) {
    let mut color = vec![None; g.num_slots()];
    let s = g.index_of(seed);
    color[s as usize] = Some(0u8);
    let mut queue = std::collections::VecDeque::from([s]);
    let mut ok = true;
    while let Some(v) = queue.pop_front() {
        let c = color[v as usize].expect("queued implies coloured");
        for &u in g.out_neighbors(v) {
            match color[u as usize] {
                None => {
                    color[u as usize] = Some(1 - c);
                    queue.push_back(u);
                }
                Some(cu) if cu == c => ok = false,
                Some(_) => {}
            }
        }
    }
    (color, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn sym(edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for &(u, v) in edges {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        b.build().unwrap()
    }

    fn any_conflict(out: &ipregel::RunOutput<ColorState>) -> bool {
        out.iter().any(|(_, s)| s.conflict)
    }

    #[test]
    fn even_cycle_is_bipartite_on_all_versions() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for v in Version::paper_versions() {
            let out = run(&g, &Bipartiteness { seed: 0 }, v, &RunConfig::default());
            assert!(!any_conflict(&out), "{}", v.label());
            assert_eq!(out.value_of(0).color, Some(0));
            assert_eq!(out.value_of(1).color, Some(1));
            assert_eq!(out.value_of(2).color, Some(0));
            assert_eq!(out.value_of(3).color, Some(1));
        }
    }

    #[test]
    fn odd_cycle_raises_a_conflict() {
        let g = sym(&[(0, 1), (1, 2), (2, 0)]);
        for v in Version::paper_versions() {
            let out = run(&g, &Bipartiteness { seed: 0 }, v, &RunConfig::default());
            assert!(any_conflict(&out), "{}", v.label());
        }
    }

    #[test]
    fn colors_match_bfs_parity_on_a_tree() {
        let g = sym(&[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let (expected, ok) = bipartite_oracle(&g, 0);
        assert!(ok);
        let out = run(
            &g,
            &Bipartiteness { seed: 0 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        for slot in g.address_map().live_slots() {
            assert_eq!(out.values[slot as usize].color, expected[slot as usize], "slot {slot}");
            assert!(!out.values[slot as usize].conflict);
        }
    }

    #[test]
    fn unreached_vertices_stay_uncoloured() {
        let g = sym(&[(0, 1), (2, 3)]);
        let out = run(
            &g,
            &Bipartiteness { seed: 0 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(out.value_of(2).color, None);
        assert_eq!(out.value_of(3).color, None);
    }

    #[test]
    fn oracle_flags_odd_cycles() {
        let (_, ok) = bipartite_oracle(&sym(&[(0, 1), (1, 2), (2, 0)]), 0);
        assert!(!ok);
        let (_, ok) = bipartite_oracle(&sym(&[(0, 1), (1, 2), (2, 3), (3, 0)]), 0);
        assert!(ok);
    }
}
